//! Points in the two-dimensional Euclidean plane.

use crate::{GeomResult, GeometryError};

/// Identifier of a point within its relation.
///
/// The paper treats relations as sets of points; downstream code (joins,
/// result pairs/triplets) needs a stable identity to report results, so every
/// [`Point`] carries an id that is unique *within its relation*.
pub type PointId = u64;

/// A point in the two-dimensional Euclidean plane, tagged with an identifier.
///
/// Coordinates are `f64`; the paper's algorithms use plain Euclidean distance
/// (Section 1: "For simplicity, we use the Euclidean distance").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Identifier, unique within the relation this point belongs to.
    pub id: PointId,
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a new point, validating that the coordinates are finite.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NonFiniteCoordinate`] if either coordinate is
    /// NaN or infinite.
    pub fn try_new(id: PointId, x: f64, y: f64) -> GeomResult<Self> {
        for value in [x, y] {
            if !value.is_finite() {
                return Err(GeometryError::NonFiniteCoordinate { value });
            }
        }
        Ok(Self { id, x, y })
    }

    /// Creates a new point without validation.
    ///
    /// Use [`Point::try_new`] when the coordinates come from untrusted input.
    #[inline]
    pub const fn new(id: PointId, x: f64, y: f64) -> Self {
        Self { id, x, y }
    }

    /// Creates an anonymous point (id 0). Useful for pure geometric queries
    /// such as block centers or focal points that are not part of a relation.
    #[inline]
    pub const fn anonymous(x: f64, y: f64) -> Self {
        Self { id: 0, x, y }
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Returns the coordinates as a tuple.
    #[inline]
    pub const fn coords(&self) -> (f64, f64) {
        (self.x, self.y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}({:.3}, {:.3})", self.id, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_accepts_finite_coordinates() {
        let p = Point::try_new(7, 1.5, -2.25).unwrap();
        assert_eq!(p.id, 7);
        assert_eq!(p.coords(), (1.5, -2.25));
    }

    #[test]
    fn try_new_rejects_nan_and_infinity() {
        assert!(Point::try_new(0, f64::NAN, 0.0).is_err());
        assert!(Point::try_new(0, 0.0, f64::INFINITY).is_err());
        assert!(Point::try_new(0, f64::NEG_INFINITY, 0.0).is_err());
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(1, 0.0, 0.0);
        let b = Point::new(2, 3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        // Symmetry.
        assert_eq!(b.distance(&a), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(1, 2.5, -7.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn display_includes_id_and_coords() {
        let p = Point::new(3, 1.0, 2.0);
        let s = p.to_string();
        assert!(s.contains("p3"));
        assert!(s.contains("1.000"));
    }
}
