//! Point-level filter predicates.
//!
//! The paper's "mixed predicate" scenarios combine a kNN predicate with
//! ordinary attribute filters ("the k nearest *open* sites inside a region").
//! This module supplies the filter half: a small, closed tree of tests over a
//! point's id and coordinates that every layer above (logical plan, optimizer,
//! physical operators, the filtered kNN kernel) can share without callbacks.
//!
//! Two evaluation entry points exist:
//!
//! * [`Predicate::matches`] — one point at a time, used by residual
//!   (post-kNN) filtering of result rows;
//! * [`Predicate::eval_block`] — a whole SoA block column at once into a
//!   reusable boolean mask, used by the predicate-aware block scan so the
//!   kNN hot path stays batched and allocation-free.
//!
//! The [`std::fmt::Display`] impl prints the concrete syntax the query parser
//! accepts, so predicates round-trip through parse → print → parse.

use crate::{euclidean_sq, Point, PointId, Rect};

/// A boolean filter over a single point, evaluated on `(id, x, y)`.
///
/// Leaves test either the point's location (rectangle / circle containment)
/// or its identifier (set membership / inclusive range); interior nodes are
/// the usual AND / OR / NOT combinators. The tree is `Clone + PartialEq` so
/// logical plans carrying predicates stay comparable in tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true — the neutral residual left after kNN extraction.
    True,
    /// Always false — e.g. a contradiction detected by the rewriter.
    False,
    /// Point lies inside the closed rectangle.
    InRect(Rect),
    /// Point lies inside the closed disk of `radius` around `center`.
    InCircle {
        /// Disk center.
        center: Point,
        /// Disk radius (must be finite and non-negative).
        radius: f64,
    },
    /// Point id is a member of the (sorted, deduplicated) set.
    IdIn(Vec<PointId>),
    /// Point id lies in the inclusive range `[lo, hi]`.
    IdRange {
        /// Lower bound, inclusive.
        lo: PointId,
        /// Upper bound, inclusive.
        hi: PointId,
    },
    /// Every sub-predicate holds.
    And(Vec<Predicate>),
    /// At least one sub-predicate holds.
    Or(Vec<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Builds an id-set predicate, sorting and deduplicating the ids.
    pub fn id_in(mut ids: Vec<PointId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Predicate::IdIn(ids)
    }

    /// Conjunction of `self` and `other`, flattening nested ANDs and
    /// dropping `True` operands.
    pub fn and(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Evaluates the predicate on a single point given as `(id, x, y)`.
    #[inline]
    pub fn matches(&self, id: PointId, x: f64, y: f64) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::InRect(r) => x >= r.min_x && x <= r.max_x && y >= r.min_y && y <= r.max_y,
            Predicate::InCircle { center, radius } => {
                euclidean_sq(center, &Point::anonymous(x, y)) <= radius * radius
            }
            Predicate::IdIn(ids) => ids.binary_search(&id).is_ok(),
            Predicate::IdRange { lo, hi } => id >= *lo && id <= *hi,
            Predicate::And(ps) => ps.iter().all(|p| p.matches(id, x, y)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(id, x, y)),
            Predicate::Not(p) => !p.matches(id, x, y),
        }
    }

    /// Evaluates the predicate on a whole point.
    #[inline]
    pub fn matches_point(&self, p: &Point) -> bool {
        self.matches(p.id, p.x, p.y)
    }

    /// Evaluates the predicate over SoA block columns into `mask`.
    ///
    /// `mask` is cleared and resized to the column length; `mask[i]` is set
    /// iff `(ids[i], xs[i], ys[i])` matches. Leaves run as tight column
    /// loops so the common single-leaf filters stay branch-predictable;
    /// combinators recurse with a scratch mask only where required (OR/NOT),
    /// which the caller amortizes by reusing the same buffers every block.
    pub fn eval_block(&self, ids: &[PointId], xs: &[f64], ys: &[f64], mask: &mut Vec<bool>) {
        mask.clear();
        mask.resize(ids.len(), true);
        self.apply_block(ids, xs, ys, mask);
    }

    /// ANDs this predicate into an existing mask (`mask[i] &= matches(i)`).
    fn apply_block(&self, ids: &[PointId], xs: &[f64], ys: &[f64], mask: &mut [bool]) {
        match self {
            Predicate::True => {}
            Predicate::False => mask.fill(false),
            Predicate::InRect(r) => {
                for i in 0..ids.len() {
                    mask[i] &= xs[i] >= r.min_x
                        && xs[i] <= r.max_x
                        && ys[i] >= r.min_y
                        && ys[i] <= r.max_y;
                }
            }
            Predicate::InCircle { center, radius } => {
                let r_sq = radius * radius;
                for i in 0..ids.len() {
                    let dx = xs[i] - center.x;
                    let dy = ys[i] - center.y;
                    mask[i] &= dx * dx + dy * dy <= r_sq;
                }
            }
            Predicate::IdIn(set) => {
                for i in 0..ids.len() {
                    mask[i] &= set.binary_search(&ids[i]).is_ok();
                }
            }
            Predicate::IdRange { lo, hi } => {
                for i in 0..ids.len() {
                    mask[i] &= ids[i] >= *lo && ids[i] <= *hi;
                }
            }
            Predicate::And(ps) => {
                for p in ps {
                    p.apply_block(ids, xs, ys, mask);
                }
            }
            Predicate::Or(_) | Predicate::Not(_) => {
                // Disjunctions and negations don't distribute over the
                // AND-mask; fall back to the scalar test per lane.
                for i in 0..ids.len() {
                    mask[i] = mask[i] && self.matches(ids[i], xs[i], ys[i]);
                }
            }
        }
    }
}

impl std::fmt::Display for Predicate {
    /// Prints the parser's concrete syntax (round-trips through the query
    /// language): `INSIDE(RECT(..))`, `INSIDE(CIRCLE(..))`, `ID IN (..)`,
    /// `ID BETWEEN a AND b`, `TRUE`, `FALSE`, and parenthesized AND/OR/NOT.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::False => write!(f, "FALSE"),
            Predicate::InRect(r) => write!(
                f,
                "INSIDE(RECT({}, {}, {}, {}))",
                r.min_x, r.min_y, r.max_x, r.max_y
            ),
            Predicate::InCircle { center, radius } => {
                write!(f, "INSIDE(CIRCLE({}, {}, {radius}))", center.x, center.y)
            }
            Predicate::IdIn(ids) => {
                write!(f, "ID IN (")?;
                for (i, id) in ids.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{id}")?;
                }
                write!(f, ")")
            }
            Predicate::IdRange { lo, hi } => write!(f, "ID BETWEEN {lo} AND {hi}"),
            Predicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(p) => write!(f, "(NOT {p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect_pred() -> Predicate {
        Predicate::InRect(Rect::new(0.0, 0.0, 10.0, 10.0))
    }

    #[test]
    fn leaves_match_expected_points() {
        let r = rect_pred();
        assert!(r.matches(1, 5.0, 5.0));
        assert!(r.matches(1, 10.0, 10.0), "rect containment is closed");
        assert!(!r.matches(1, 10.1, 5.0));

        let c = Predicate::InCircle {
            center: Point::anonymous(0.0, 0.0),
            radius: 5.0,
        };
        assert!(c.matches(1, 3.0, 4.0), "on the boundary is inside");
        assert!(!c.matches(1, 3.1, 4.0));

        let ids = Predicate::id_in(vec![7, 3, 3, 9]);
        assert_eq!(ids, Predicate::IdIn(vec![3, 7, 9]));
        assert!(ids.matches(7, 0.0, 0.0));
        assert!(!ids.matches(8, 0.0, 0.0));

        let range = Predicate::IdRange { lo: 10, hi: 20 };
        assert!(range.matches(10, 0.0, 0.0) && range.matches(20, 0.0, 0.0));
        assert!(!range.matches(9, 0.0, 0.0) && !range.matches(21, 0.0, 0.0));
    }

    #[test]
    fn combinators_follow_boolean_semantics() {
        let p = Predicate::And(vec![rect_pred(), Predicate::IdRange { lo: 0, hi: 5 }]);
        assert!(p.matches(3, 5.0, 5.0));
        assert!(!p.matches(9, 5.0, 5.0));
        assert!(!p.matches(3, 50.0, 5.0));

        let q = Predicate::Or(vec![
            Predicate::IdIn(vec![42]),
            Predicate::InRect(Rect::new(100.0, 100.0, 101.0, 101.0)),
        ]);
        assert!(q.matches(42, 0.0, 0.0));
        assert!(q.matches(1, 100.5, 100.5));
        assert!(!q.matches(1, 0.0, 0.0));

        let n = Predicate::Not(Box::new(rect_pred()));
        assert!(!n.matches(1, 5.0, 5.0));
        assert!(n.matches(1, 50.0, 5.0));

        assert!(Predicate::True.matches(0, 0.0, 0.0));
        assert!(!Predicate::False.matches(0, 0.0, 0.0));
    }

    #[test]
    fn and_builder_flattens_and_drops_true() {
        let a = rect_pred();
        assert_eq!(a.clone().and(Predicate::True), a);
        assert_eq!(Predicate::True.and(a.clone()), a);
        let b = Predicate::IdRange { lo: 0, hi: 9 };
        let c = Predicate::IdIn(vec![1]);
        let combined = a.clone().and(b.clone()).and(c.clone());
        assert_eq!(combined, Predicate::And(vec![a, b, c]));
    }

    #[test]
    fn eval_block_agrees_with_scalar_matches() {
        let preds = [
            Predicate::True,
            Predicate::False,
            rect_pred(),
            Predicate::InCircle {
                center: Point::anonymous(5.0, 5.0),
                radius: 3.0,
            },
            Predicate::id_in(vec![2, 4, 6]),
            Predicate::IdRange { lo: 3, hi: 7 },
            Predicate::And(vec![rect_pred(), Predicate::IdRange { lo: 0, hi: 4 }]),
            Predicate::Or(vec![
                Predicate::IdIn(vec![0]),
                Predicate::Not(Box::new(rect_pred())),
            ]),
        ];
        let ids: Vec<PointId> = (0..16).collect();
        let xs: Vec<f64> = (0..16).map(|i| i as f64 * 0.9).collect();
        let ys: Vec<f64> = (0..16).map(|i| 14.0 - i as f64).collect();
        let mut mask = Vec::new();
        for p in &preds {
            p.eval_block(&ids, &xs, &ys, &mut mask);
            assert_eq!(mask.len(), ids.len());
            for i in 0..ids.len() {
                assert_eq!(
                    mask[i],
                    p.matches(ids[i], xs[i], ys[i]),
                    "mask lane {i} disagrees with scalar matches for {p}"
                );
            }
        }
    }

    #[test]
    fn display_is_concrete_syntax() {
        let p = Predicate::And(vec![
            Predicate::InRect(Rect::new(0.0, 0.0, 10.0, 10.0)),
            Predicate::IdRange { lo: 1, hi: 5 },
        ]);
        assert_eq!(
            p.to_string(),
            "(INSIDE(RECT(0, 0, 10, 10)) AND ID BETWEEN 1 AND 5)"
        );
        assert_eq!(Predicate::id_in(vec![3, 1]).to_string(), "ID IN (1, 3)");
        assert_eq!(
            Predicate::Not(Box::new(Predicate::True)).to_string(),
            "(NOT TRUE)"
        );
    }
}
