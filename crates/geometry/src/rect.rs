//! Axis-aligned rectangles, used as the geometric footprint of index blocks.

use crate::{GeomResult, GeometryError, Point};

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// In the paper, hierarchical indexes (grid, quadtree, R-tree) partition the
/// space into *blocks*; each block's spatial footprint is a rectangle. All the
/// per-block quantities used by the algorithms — center, diagonal length,
/// MINDIST/MAXDIST from a query point — are derived from this type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Smallest x coordinate.
    pub min_x: f64,
    /// Smallest y coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners,
    /// validating the inputs.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::InvertedRect`] if `min > max` on either axis
    /// and [`GeometryError::NonFiniteCoordinate`] for NaN/infinite inputs.
    pub fn try_new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> GeomResult<Self> {
        for value in [min_x, min_y, max_x, max_y] {
            if !value.is_finite() {
                return Err(GeometryError::NonFiniteCoordinate { value });
            }
        }
        if min_x > max_x || min_y > max_y {
            return Err(GeometryError::InvertedRect {
                min: (min_x, min_y),
                max: (max_x, max_y),
            });
        }
        Ok(Self {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    /// Creates a rectangle without validation (debug-asserted).
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted rect");
        Self {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The smallest rectangle enclosing a non-empty set of points.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyPointSet`] for an empty slice.
    pub fn bounding(points: &[Point]) -> GeomResult<Self> {
        let first = points.first().ok_or(GeometryError::EmptyPointSet)?;
        let mut rect = Self::new(first.x, first.y, first.x, first.y);
        for p in &points[1..] {
            rect.min_x = rect.min_x.min(p.x);
            rect.min_y = rect.min_y.min(p.y);
            rect.max_x = rect.max_x.max(p.x);
            rect.max_y = rect.max_y.max(p.y);
        }
        Ok(rect)
    }

    /// Width of the rectangle (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center of the rectangle.
    ///
    /// Theorem 1 of the paper proves the center is the reference location that
    /// minimises the Block-Marking search threshold, which is why the
    /// preprocessing phase computes the neighborhood of the block *center*.
    #[inline]
    pub fn center(&self) -> Point {
        Point::anonymous(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// Length of the rectangle's diagonal (`d` in Procedure 3).
    #[inline]
    pub fn diagonal(&self) -> f64 {
        let w = self.width();
        let h = self.height();
        (w * w + h * h).sqrt()
    }

    /// Whether the point lies inside the rectangle (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether this rectangle intersects another (boundary touching counts).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Whether `other` is fully contained in this rectangle.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min_x <= other.min_x
            && self.min_y <= other.min_y
            && self.max_x >= other.max_x
            && self.max_y >= other.max_y
    }

    /// The smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Expands the rectangle by `margin` on every side.
    #[inline]
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// The four corners of the rectangle, counter-clockwise from the
    /// lower-left corner.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::anonymous(self.min_x, self.min_y),
            Point::anonymous(self.max_x, self.min_y),
            Point::anonymous(self.max_x, self.max_y),
            Point::anonymous(self.min_x, self.max_y),
        ]
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.3},{:.3}]x[{:.3},{:.3}]",
            self.min_x, self.max_x, self.min_y, self.max_y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn try_new_validates() {
        assert!(Rect::try_new(0.0, 0.0, 1.0, 1.0).is_ok());
        assert!(matches!(
            Rect::try_new(2.0, 0.0, 1.0, 1.0),
            Err(GeometryError::InvertedRect { .. })
        ));
        assert!(matches!(
            Rect::try_new(f64::NAN, 0.0, 1.0, 1.0),
            Err(GeometryError::NonFiniteCoordinate { .. })
        ));
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = vec![
            Point::new(1, 1.0, 5.0),
            Point::new(2, -2.0, 3.0),
            Point::new(3, 4.0, -1.0),
        ];
        let r = Rect::bounding(&pts).unwrap();
        assert_eq!(r, Rect::new(-2.0, -1.0, 4.0, 5.0));
        assert!(Rect::bounding(&[]).is_err());
    }

    #[test]
    fn dimensions_and_center() {
        let r = Rect::new(0.0, 0.0, 4.0, 3.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 3.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.diagonal(), 5.0);
        let c = r.center();
        assert_eq!((c.x, c.y), (2.0, 1.5));
    }

    #[test]
    fn containment_is_boundary_inclusive() {
        let r = unit();
        assert!(r.contains(&Point::anonymous(0.0, 0.0)));
        assert!(r.contains(&Point::anonymous(1.0, 1.0)));
        assert!(r.contains(&Point::anonymous(0.5, 0.5)));
        assert!(!r.contains(&Point::anonymous(1.0001, 0.5)));
    }

    #[test]
    fn intersection_and_union() {
        let a = unit();
        let b = Rect::new(0.5, 0.5, 2.0, 2.0);
        let c = Rect::new(3.0, 3.0, 4.0, 4.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching boundaries intersect.
        let d = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&d));
        assert_eq!(a.union(&c), Rect::new(0.0, 0.0, 4.0, 4.0));
    }

    #[test]
    fn contains_rect_and_expand() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert_eq!(inner.expanded(2.0), Rect::new(0.0, 0.0, 5.0, 5.0));
    }

    #[test]
    fn corners_are_ccw() {
        let r = Rect::new(0.0, 0.0, 2.0, 1.0);
        let c = r.corners();
        assert_eq!((c[0].x, c[0].y), (0.0, 0.0));
        assert_eq!((c[1].x, c[1].y), (2.0, 0.0));
        assert_eq!((c[2].x, c[2].y), (2.0, 1.0));
        assert_eq!((c[3].x, c[3].y), (0.0, 1.0));
    }
}
