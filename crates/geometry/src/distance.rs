//! Distance metrics: Euclidean, MINDIST, and MAXDIST.
//!
//! MINDIST and MAXDIST between a point `p` and a block `b` are the minimum and
//! maximum possible distance between `p` and *any* point inside `b`
//! (Roussopoulos, Kelley, Vincent — SIGMOD 1995; Section 2 of the paper). The
//! paper's algorithms scan blocks in MINDIST or MAXDIST order from a query
//! point, and use MAXDIST to decide whether a block is *completely included*
//! within a search threshold.

use crate::{Point, Rect};

/// Squared Euclidean distance between two points.
#[inline]
pub fn euclidean_sq(a: &Point, b: &Point) -> f64 {
    a.distance_sq(b)
}

/// Euclidean distance between two points.
#[inline]
pub fn euclidean(a: &Point, b: &Point) -> f64 {
    a.distance(b)
}

/// Squared MINDIST between a point and a rectangle.
///
/// Zero when the point lies inside (or on the boundary of) the rectangle;
/// otherwise the squared distance to the closest point of the rectangle.
#[inline]
pub fn mindist_sq(p: &Point, r: &Rect) -> f64 {
    let dx = axis_gap(p.x, r.min_x, r.max_x);
    let dy = axis_gap(p.y, r.min_y, r.max_y);
    dx * dx + dy * dy
}

/// MINDIST between a point and a rectangle.
#[inline]
pub fn mindist(p: &Point, r: &Rect) -> f64 {
    mindist_sq(p, r).sqrt()
}

/// Squared MAXDIST between a point and a rectangle: the squared distance from
/// the point to the farthest corner of the rectangle.
#[inline]
pub fn maxdist_sq(p: &Point, r: &Rect) -> f64 {
    let dx = (p.x - r.min_x).abs().max((p.x - r.max_x).abs());
    let dy = (p.y - r.min_y).abs().max((p.y - r.max_y).abs());
    dx * dx + dy * dy
}

/// MAXDIST between a point and a rectangle.
#[inline]
pub fn maxdist(p: &Point, r: &Rect) -> f64 {
    maxdist_sq(p, r).sqrt()
}

/// Distance from coordinate `v` to the interval `[lo, hi]` (0 when inside).
#[inline]
fn axis_gap(v: f64, lo: f64, hi: f64) -> f64 {
    if v < lo {
        lo - v
    } else if v > hi {
        v - hi
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Rect {
        Rect::new(2.0, 2.0, 4.0, 6.0)
    }

    #[test]
    fn mindist_is_zero_inside_and_on_boundary() {
        let r = block();
        assert_eq!(mindist(&Point::anonymous(3.0, 4.0), &r), 0.0);
        assert_eq!(mindist(&Point::anonymous(2.0, 2.0), &r), 0.0);
        assert_eq!(mindist(&Point::anonymous(4.0, 6.0), &r), 0.0);
    }

    #[test]
    fn mindist_outside_is_distance_to_nearest_edge_or_corner() {
        let r = block();
        // Directly left of the rectangle: nearest point is on the left edge.
        assert_eq!(mindist(&Point::anonymous(0.0, 4.0), &r), 2.0);
        // Below-left: nearest point is the (2,2) corner, distance sqrt(2).
        let d = mindist(&Point::anonymous(1.0, 1.0), &r);
        assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn maxdist_is_distance_to_farthest_corner() {
        let r = block();
        // From the center, the farthest corner is any corner: dx=1, dy=2.
        let d = maxdist(&Point::anonymous(3.0, 4.0), &r);
        assert!((d - (1.0f64 + 4.0).sqrt()).abs() < 1e-12);
        // From far left, the farthest corner is (4, 6) or (4, 2).
        let d = maxdist(&Point::anonymous(0.0, 2.0), &r);
        assert!((d - (16.0f64 + 16.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mindist_never_exceeds_maxdist() {
        let r = block();
        for (x, y) in [(0.0, 0.0), (3.0, 4.0), (10.0, -3.0), (2.0, 6.0)] {
            let p = Point::anonymous(x, y);
            assert!(mindist(&p, &r) <= maxdist(&p, &r) + 1e-12);
        }
    }

    #[test]
    fn squared_variants_are_consistent() {
        let r = block();
        let p = Point::anonymous(-1.0, 8.0);
        assert!((mindist_sq(&p, &r).sqrt() - mindist(&p, &r)).abs() < 1e-12);
        assert!((maxdist_sq(&p, &r).sqrt() - maxdist(&p, &r)).abs() < 1e-12);
    }

    #[test]
    fn point_inside_block_bounds_hold_for_contained_points() {
        // MINDIST <= d(p, q) <= MAXDIST for any q inside the block.
        let r = block();
        let p = Point::anonymous(9.0, 9.0);
        for (qx, qy) in [(2.0, 2.0), (3.3, 5.1), (4.0, 6.0), (2.5, 4.4)] {
            let q = Point::anonymous(qx, qy);
            assert!(r.contains(&q));
            let d = euclidean(&p, &q);
            assert!(mindist(&p, &r) <= d + 1e-12);
            assert!(d <= maxdist(&p, &r) + 1e-12);
        }
    }
}
