//! Distance metrics: Euclidean, MINDIST, and MAXDIST.
//!
//! MINDIST and MAXDIST between a point `p` and a block `b` are the minimum and
//! maximum possible distance between `p` and *any* point inside `b`
//! (Roussopoulos, Kelley, Vincent — SIGMOD 1995; Section 2 of the paper). The
//! paper's algorithms scan blocks in MINDIST or MAXDIST order from a query
//! point, and use MAXDIST to decide whether a block is *completely included*
//! within a search threshold.

use crate::{Point, Rect};

/// Squared Euclidean distance between two points.
#[inline]
pub fn euclidean_sq(a: &Point, b: &Point) -> f64 {
    a.distance_sq(b)
}

/// Batched squared Euclidean distances from `(px, py)` to a column of points.
///
/// `xs`/`ys` are the coordinate columns of an SoA point block; `out[i]`
/// receives the squared distance to `(xs[i], ys[i])`. The loop is a straight
/// zip over the three slices — branch-free except for the trip count — so the
/// compiler can vectorize it, which is the point of storing blocks as columns
/// instead of `Vec<Point>`. Slices longer than the shortest input are left
/// untouched.
#[inline]
pub fn euclidean_sq_batch(px: f64, py: f64, xs: &[f64], ys: &[f64], out: &mut [f64]) {
    debug_assert_eq!(xs.len(), ys.len(), "coordinate columns must match");
    debug_assert_eq!(xs.len(), out.len(), "output buffer must match columns");
    for ((d, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
        let dx = x - px;
        let dy = y - py;
        *d = dx * dx + dy * dy;
    }
}

/// Euclidean distance between two points.
#[inline]
pub fn euclidean(a: &Point, b: &Point) -> f64 {
    a.distance(b)
}

/// Squared MINDIST between a point and a rectangle.
///
/// Zero when the point lies inside (or on the boundary of) the rectangle;
/// otherwise the squared distance to the closest point of the rectangle.
#[inline]
pub fn mindist_sq(p: &Point, r: &Rect) -> f64 {
    let dx = axis_gap(p.x, r.min_x, r.max_x);
    let dy = axis_gap(p.y, r.min_y, r.max_y);
    dx * dx + dy * dy
}

/// MINDIST between a point and a rectangle.
#[inline]
pub fn mindist(p: &Point, r: &Rect) -> f64 {
    mindist_sq(p, r).sqrt()
}

/// Squared MAXDIST between a point and a rectangle: the squared distance from
/// the point to the farthest corner of the rectangle.
#[inline]
pub fn maxdist_sq(p: &Point, r: &Rect) -> f64 {
    let dx = (p.x - r.min_x).abs().max((p.x - r.max_x).abs());
    let dy = (p.y - r.min_y).abs().max((p.y - r.max_y).abs());
    dx * dx + dy * dy
}

/// MAXDIST between a point and a rectangle.
#[inline]
pub fn maxdist(p: &Point, r: &Rect) -> f64 {
    maxdist_sq(p, r).sqrt()
}

/// Distance from coordinate `v` to the interval `[lo, hi]` (0 when inside).
///
/// Branchless: `max(lo - v, v - hi, 0)` — when `v` is inside the interval
/// both differences are ≤ 0 and the result clamps to 0; outside, exactly one
/// difference is positive. Compiles to two `maxsd`s instead of two compare
/// branches, so MINDIST scans over many blocks stay pipelined.
#[inline]
fn axis_gap(v: f64, lo: f64, hi: f64) -> f64 {
    (lo - v).max(v - hi).max(0.0)
}

/// Scalar/branchy reference implementations retained for the `kernel_micro`
/// ablation bench and the equivalence property tests. These are the pre-SoA
/// kernels; production code must use the batched/branchless variants above.
pub mod baseline {
    use crate::{Point, Rect};

    /// The branchy `axis_gap` the branchless clamp replaced.
    #[inline]
    pub fn axis_gap_branchy(v: f64, lo: f64, hi: f64) -> f64 {
        if v < lo {
            lo - v
        } else if v > hi {
            v - hi
        } else {
            0.0
        }
    }

    /// Squared MINDIST via the branchy axis gap.
    #[inline]
    pub fn mindist_sq_branchy(p: &Point, r: &Rect) -> f64 {
        let dx = axis_gap_branchy(p.x, r.min_x, r.max_x);
        let dy = axis_gap_branchy(p.y, r.min_y, r.max_y);
        dx * dx + dy * dy
    }

    /// Per-point squared distances over an AoS `&[Point]` block — the scan
    /// loop the columnar [`euclidean_sq_batch`](super::euclidean_sq_batch)
    /// replaced. The 24-byte row stride defeats vectorization, which is what
    /// the ablation measures.
    #[inline]
    pub fn euclidean_sq_scalar(q: &Point, points: &[Point], out: &mut [f64]) {
        for (d, p) in out.iter_mut().zip(points) {
            *d = q.distance_sq(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Rect {
        Rect::new(2.0, 2.0, 4.0, 6.0)
    }

    #[test]
    fn mindist_is_zero_inside_and_on_boundary() {
        let r = block();
        assert_eq!(mindist(&Point::anonymous(3.0, 4.0), &r), 0.0);
        assert_eq!(mindist(&Point::anonymous(2.0, 2.0), &r), 0.0);
        assert_eq!(mindist(&Point::anonymous(4.0, 6.0), &r), 0.0);
    }

    #[test]
    fn mindist_outside_is_distance_to_nearest_edge_or_corner() {
        let r = block();
        // Directly left of the rectangle: nearest point is on the left edge.
        assert_eq!(mindist(&Point::anonymous(0.0, 4.0), &r), 2.0);
        // Below-left: nearest point is the (2,2) corner, distance sqrt(2).
        let d = mindist(&Point::anonymous(1.0, 1.0), &r);
        assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn maxdist_is_distance_to_farthest_corner() {
        let r = block();
        // From the center, the farthest corner is any corner: dx=1, dy=2.
        let d = maxdist(&Point::anonymous(3.0, 4.0), &r);
        assert!((d - (1.0f64 + 4.0).sqrt()).abs() < 1e-12);
        // From far left, the farthest corner is (4, 6) or (4, 2).
        let d = maxdist(&Point::anonymous(0.0, 2.0), &r);
        assert!((d - (16.0f64 + 16.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mindist_never_exceeds_maxdist() {
        let r = block();
        for (x, y) in [(0.0, 0.0), (3.0, 4.0), (10.0, -3.0), (2.0, 6.0)] {
            let p = Point::anonymous(x, y);
            assert!(mindist(&p, &r) <= maxdist(&p, &r) + 1e-12);
        }
    }

    #[test]
    fn squared_variants_are_consistent() {
        let r = block();
        let p = Point::anonymous(-1.0, 8.0);
        assert!((mindist_sq(&p, &r).sqrt() - mindist(&p, &r)).abs() < 1e-12);
        assert!((maxdist_sq(&p, &r).sqrt() - maxdist(&p, &r)).abs() < 1e-12);
    }

    /// The branchless clamp-based `axis_gap` must agree with the branchy
    /// reference on every region: inside, outside each side, and exactly on
    /// the boundaries and corners (where `<` vs `<=` bugs would hide).
    #[test]
    fn branchless_mindist_matches_branchy_on_boundaries_and_corners() {
        let r = block(); // [2,4] x [2,6]
        let edge_values = [
            1.0, 1.999999, 2.0, 2.000001, 3.0, 4.0, 4.000001, 5.9, 6.0, 6.1, -7.0, 100.0,
        ];
        for &x in &edge_values {
            for &y in &edge_values {
                let p = Point::anonymous(x, y);
                assert_eq!(
                    mindist_sq(&p, &r),
                    baseline::mindist_sq_branchy(&p, &r),
                    "mismatch at ({x}, {y})"
                );
            }
        }
        // Degenerate rect (a single point): gap is a plain |v - c| distance.
        let degenerate = Rect::new(3.0, 3.0, 3.0, 3.0);
        for &x in &edge_values {
            let p = Point::anonymous(x, 3.0);
            assert_eq!(
                mindist_sq(&p, &degenerate),
                baseline::mindist_sq_branchy(&p, &degenerate)
            );
        }
        // Pseudo-random sweep over a wider range, including negative zeros.
        for i in 0..4096u64 {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15);
            let x = ((h % 2_000) as f64 - 1_000.0) * 0.01;
            let y = (((h >> 20) % 2_000) as f64 - 1_000.0) * 0.01;
            let p = Point::anonymous(x, y);
            assert_eq!(mindist_sq(&p, &r), baseline::mindist_sq_branchy(&p, &r));
        }
        assert_eq!(mindist_sq(&Point::anonymous(-0.0, 3.0), &r), 4.0);
    }

    /// The batched column kernel computes exactly the same squared distances
    /// as the per-point scalar loop (identical expression, identical results).
    #[test]
    fn batched_distances_equal_scalar_distances() {
        let q = Point::anonymous(3.7, -1.2);
        let points: Vec<Point> = (0..257)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x2545F4914F6CDD1D);
                Point::new(
                    i as u64,
                    (h % 1000) as f64 * 0.07 - 30.0,
                    ((h >> 24) % 1000) as f64 * 0.07 - 30.0,
                )
            })
            .collect();
        let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
        let mut batched = vec![0.0; points.len()];
        let mut scalar = vec![0.0; points.len()];
        euclidean_sq_batch(q.x, q.y, &xs, &ys, &mut batched);
        baseline::euclidean_sq_scalar(&q, &points, &mut scalar);
        assert_eq!(batched, scalar, "bit-identical distances");
        for (d, p) in batched.iter().zip(&points) {
            assert_eq!(*d, q.distance_sq(p));
        }
    }

    #[test]
    fn point_inside_block_bounds_hold_for_contained_points() {
        // MINDIST <= d(p, q) <= MAXDIST for any q inside the block.
        let r = block();
        let p = Point::anonymous(9.0, 9.0);
        for (qx, qy) in [(2.0, 2.0), (3.3, 5.1), (4.0, 6.0), (2.5, 4.4)] {
            let q = Point::anonymous(qx, qy);
            assert!(r.contains(&q));
            let d = euclidean(&p, &q);
            assert!(mindist(&p, &r) <= d + 1e-12);
            assert!(d <= maxdist(&p, &r) + 1e-12);
        }
    }
}
