//! # twoknn-geometry
//!
//! Two-dimensional geometry kernel used by the `two-knn` workspace, the Rust
//! reproduction of *"Spatial Queries with Two kNN Predicates"* (Aly, Aref,
//! Ouzzani — VLDB 2012).
//!
//! The paper's algorithms (Section 2, *Preliminaries*) only need a handful of
//! geometric primitives:
//!
//! * points in the Euclidean plane ([`Point`]),
//! * axis-aligned rectangles representing index *blocks* ([`Rect`]),
//! * the Euclidean point-to-point distance,
//! * the **MINDIST** and **MAXDIST** metrics between a point and a block
//!   (Roussopoulos, Kelley, Vincent — SIGMOD 1995), which bound the distance
//!   between the point and *any* point inside the block.
//!
//! All distances are exposed both in squared form (cheap, used for ordering)
//! and in Euclidean form (used where the paper adds distances together, e.g.
//! the Block-Marking search threshold `r + d + f_farthest`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod distance;
mod point;
mod predicate;
mod rect;

pub use distance::{
    baseline, euclidean, euclidean_sq, euclidean_sq_batch, maxdist, maxdist_sq, mindist, mindist_sq,
};
pub use point::{Point, PointId};
pub use predicate::Predicate;
pub use rect::Rect;

/// Result alias used across the workspace geometry layer.
pub type GeomResult<T> = Result<T, GeometryError>;

/// Errors produced when constructing geometric objects from invalid inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// The offending value.
        value: f64,
    },
    /// A rectangle was specified with `min > max` on some axis.
    InvertedRect {
        /// Lower corner supplied by the caller.
        min: (f64, f64),
        /// Upper corner supplied by the caller.
        max: (f64, f64),
    },
    /// An empty point set was supplied where at least one point is required.
    EmptyPointSet,
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::NonFiniteCoordinate { value } => {
                write!(f, "non-finite coordinate: {value}")
            }
            GeometryError::InvertedRect { min, max } => {
                write!(f, "inverted rectangle: min {min:?} exceeds max {max:?}")
            }
            GeometryError::EmptyPointSet => write!(f, "empty point set"),
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GeometryError::NonFiniteCoordinate { value: f64::NAN };
        assert!(e.to_string().contains("non-finite"));
        let e = GeometryError::InvertedRect {
            min: (1.0, 1.0),
            max: (0.0, 0.0),
        };
        assert!(e.to_string().contains("inverted"));
        assert!(GeometryError::EmptyPointSet.to_string().contains("empty"));
    }
}
