//! Property-based tests of the geometry kernel.

use proptest::prelude::*;
use twoknn_geometry::{euclidean, maxdist, mindist, Point, Rect};

fn rect() -> impl Strategy<Value = Rect> {
    (
        -500.0f64..500.0,
        -500.0f64..500.0,
        0.0f64..300.0,
        0.0f64..300.0,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn point() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::anonymous(x, y))
}

proptest! {
    /// The Euclidean distance is symmetric and satisfies the triangle
    /// inequality.
    #[test]
    fn distance_is_a_metric(a in point(), b in point(), c in point()) {
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
        prop_assert!(a.distance(&a) == 0.0);
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    /// MINDIST of a point inside a rectangle is zero; MAXDIST equals the
    /// distance to the farthest corner.
    #[test]
    fn mindist_zero_inside_and_maxdist_is_corner_distance(r in rect(), fx in 0.0f64..1.0, fy in 0.0f64..1.0) {
        let inside = Point::anonymous(
            r.min_x + fx * r.width(),
            r.min_y + fy * r.height(),
        );
        prop_assert_eq!(mindist(&inside, &r), 0.0);
        let far_corner = r
            .corners()
            .iter()
            .map(|c| euclidean(&inside, c))
            .fold(0.0f64, f64::max);
        prop_assert!((maxdist(&inside, &r) - far_corner).abs() < 1e-9);
    }

    /// MINDIST and MAXDIST bound the distance to any point in the rectangle;
    /// MINDIST never exceeds MAXDIST.
    #[test]
    fn mindist_maxdist_are_tight_bounds(r in rect(), p in point(), fx in 0.0f64..1.0, fy in 0.0f64..1.0) {
        let q = Point::anonymous(r.min_x + fx * r.width(), r.min_y + fy * r.height());
        let d = euclidean(&p, &q);
        prop_assert!(mindist(&p, &r) <= d + 1e-9);
        prop_assert!(d <= maxdist(&p, &r) + 1e-9);
        prop_assert!(mindist(&p, &r) <= maxdist(&p, &r) + 1e-9);
    }

    /// The bounding rectangle of a point set contains every input point, and
    /// union/contains_rect are consistent.
    #[test]
    fn bounding_union_containment(
        coords in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..50),
        other in rect(),
    ) {
        let pts: Vec<Point> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(i as u64, x, y))
            .collect();
        let bb = Rect::bounding(&pts).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(p));
        }
        let u = bb.union(&other);
        prop_assert!(u.contains_rect(&bb));
        prop_assert!(u.contains_rect(&other));
        prop_assert!(u.intersects(&bb) && u.intersects(&other));
    }

    /// Expanding a rectangle preserves containment and grows the area.
    #[test]
    fn expansion_grows(r in rect(), margin in 0.0f64..100.0) {
        let e = r.expanded(margin);
        prop_assert!(e.contains_rect(&r));
        prop_assert!(e.area() + 1e-9 >= r.area());
        prop_assert!((e.diagonal() >= r.diagonal() - 1e-9));
    }
}
