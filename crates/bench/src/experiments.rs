//! Experiment runners: one function per figure of the paper's evaluation
//! (Section 6) plus two ablations. Each runner executes the full parameter
//! sweep, verifies that the compared algorithms return identical result
//! cardinalities, and returns a [`Report`] whose rendered table has the same
//! shape as the paper's plot (same x-axis, same series).

use twoknn_core::exec::{available_threads, ExecutionMode};
use twoknn_core::joins2::{
    chained_join_intersection, chained_nested, chained_nested_cached, unchained_block_marking,
    unchained_block_marking_with_mode, unchained_conceptual, ChainedJoinQuery, UnchainedJoinQuery,
};
use twoknn_core::select_join::{
    block_marking, block_marking_with_config, block_marking_with_mode, conceptual, counting,
    BlockMarkingConfig, SelectInnerJoinQuery,
};
use twoknn_core::selects2::{two_knn_select, two_selects_conceptual, TwoSelectsQuery};
use twoknn_core::QueryOutput;
use twoknn_index::{QuadtreeIndex, StrRTree};

use crate::workloads::{self, FIG23_BASE_CLUSTERS, FIG26_K1, SELECT_JOIN_K, TWO_JOINS_K};
use crate::{time_ms, Measurement, Report, Scale};

fn record<T>(report: &mut Report, x: &str, series: &str, millis: f64, out: &QueryOutput<T>) {
    report.push(Measurement {
        x: x.to_string(),
        series: series.to_string(),
        millis,
        neighborhoods: out.metrics.neighborhoods_computed,
        rows: out.len(),
    });
}

fn assert_same_rows<T, U>(a: &QueryOutput<T>, b: &QueryOutput<U>, context: &str) {
    assert_eq!(
        a.len(),
        b.len(),
        "algorithms disagree on result cardinality in {context}"
    );
}

/// Figure 19: kNN-select on the inner relation of a kNN-join — conceptual QEP
/// vs Block-Marking, varying the outer-relation size.
pub fn fig19(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig19",
        "select-inner-of-join: conceptual QEP vs Block-Marking (BerlinMOD-like data)",
        "outer size",
    );
    let inner = workloads::berlin_relation(workloads::fig19_inner_size(scale), 101);
    let query = SelectInnerJoinQuery::new(SELECT_JOIN_K, SELECT_JOIN_K, workloads::focal_point());
    for (i, n) in workloads::fig19_outer_sizes(scale).into_iter().enumerate() {
        let outer = workloads::berlin_relation(n, 200 + i as u64);
        let x = n.to_string();
        let (t_slow, slow) = time_ms(|| conceptual(&outer, &inner, &query));
        let (t_fast, fast) = time_ms(|| block_marking(&outer, &inner, &query));
        assert_same_rows(&slow, &fast, "fig19");
        record(&mut report, &x, "conceptual", t_slow, &slow);
        record(&mut report, &x, "block-marking", t_fast, &fast);
    }
    report
}

/// Figures 20: Counting vs Block-Marking with a *small* (low-density) outer
/// relation — Counting should win.
pub fn fig20(scale: Scale) -> Report {
    counting_vs_block_marking(
        "fig20",
        "Counting vs Block-Marking, low-density outer relation",
        workloads::fig20_outer_sizes(scale),
        workloads::fig20_21_inner_size(scale),
    )
}

/// Figure 21: Counting vs Block-Marking with a *large* (high-density) outer
/// relation — Block-Marking should win.
pub fn fig21(scale: Scale) -> Report {
    counting_vs_block_marking(
        "fig21",
        "Counting vs Block-Marking, high-density outer relation",
        workloads::fig21_outer_sizes(scale),
        workloads::fig20_21_inner_size(scale),
    )
}

fn counting_vs_block_marking(
    id: &str,
    description: &str,
    outer_sizes: Vec<usize>,
    inner_size: usize,
) -> Report {
    let mut report = Report::new(id, description, "outer size");
    let inner = workloads::berlin_relation(inner_size, 111);
    let query = SelectInnerJoinQuery::new(SELECT_JOIN_K, SELECT_JOIN_K, workloads::focal_point());
    for (i, n) in outer_sizes.into_iter().enumerate() {
        let outer = workloads::berlin_relation(n, 300 + i as u64);
        let x = n.to_string();
        let (t_counting, c) = time_ms(|| counting(&outer, &inner, &query));
        let (t_marking, m) = time_ms(|| block_marking(&outer, &inner, &query));
        assert_same_rows(&c, &m, id);
        record(&mut report, &x, "counting", t_counting, &c);
        record(&mut report, &x, "block-marking", t_marking, &m);
    }
    report
}

/// Figure 22: two unchained kNN-joins with `A` clustered and `B`, `C`
/// BerlinMOD-like — conceptual QEP vs Block-Marking, varying `|C|`.
pub fn fig22(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig22",
        "unchained joins: conceptual vs Block-Marking (A clustered in a region, B/C BerlinMOD-like)",
        "|C|",
    );
    // "Points of A are generated such that they are clustered inside a
    // certain region": a couple of clusters in the north-east of the city,
    // away from the center where B and C concentrate.
    let a = workloads::clustered_relation_in_region(2, 4_000, 121);
    let b = workloads::berlin_relation(workloads::joins_b_size(scale), 122);
    let query = UnchainedJoinQuery::new(TWO_JOINS_K, TWO_JOINS_K);
    for (i, n) in workloads::fig22_c_sizes(scale).into_iter().enumerate() {
        let c = workloads::berlin_relation(n, 400 + i as u64);
        let x = n.to_string();
        let (t_slow, slow) = time_ms(|| unchained_conceptual(&a, &b, &c, &query));
        let (t_fast, fast) = time_ms(|| unchained_block_marking(&a, &b, &c, &query));
        assert_same_rows(&slow, &fast, "fig22");
        record(&mut report, &x, "conceptual", t_slow, &slow);
        record(&mut report, &x, "block-marking", t_fast, &fast);
    }
    report
}

/// Figure 23: two unchained kNN-joins with both `A` and `C` clustered —
/// starting with the lower-coverage relation's join vs starting with the
/// other, varying the difference in cluster counts.
pub fn fig23(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig23",
        "unchained joins, A and C clustered: start with (C ⋈ B) vs start with (A ⋈ B)",
        "clusters(A) - clusters(C)",
    );
    let b = workloads::berlin_relation(workloads::joins_b_size(scale), 131);
    let query = UnchainedJoinQuery::new(TWO_JOINS_K, TWO_JOINS_K);
    // C is the same relation for every sweep point; only A's cluster count
    // changes (fixed seeds keep the shared clusters in place), matching the
    // paper's "vary the difference between the number of clusters" setup.
    let c = workloads::clustered_relation_sized(FIG23_BASE_CLUSTERS, 4_000, 501);
    for d in workloads::fig23_cluster_diffs(scale) {
        let a = workloads::clustered_relation_sized(FIG23_BASE_CLUSTERS + d, 4_000, 601);
        let x = d.to_string();
        // Start with (A ⋈ B): prune C's blocks.
        let (t_start_a, start_a) = time_ms(|| unchained_block_marking(&a, &b, &c, &query));
        // Start with (C ⋈ B): prune A's blocks (the recommended order, since
        // C has fewer clusters and therefore smaller coverage).
        let (t_start_c, start_c) = time_ms(|| unchained_block_marking(&c, &b, &a, &query));
        assert_eq!(
            start_a.len(),
            start_c.len(),
            "both orders must produce the same number of triplets"
        );
        record(&mut report, &x, "start-with-(A⋈B)", t_start_a, &start_a);
        record(&mut report, &x, "start-with-(C⋈B)", t_start_c, &start_c);
    }
    report
}

/// Figure 24: two chained kNN-joins — nested QEP3 with and without the
/// neighborhood cache, varying the outer-relation size.
pub fn fig24(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig24",
        "chained joins: nested QEP3 without cache vs with cache",
        "|A|",
    );
    // B is deliberately smaller than A's neighbor demand (k_ab * |A|), so the
    // same b points recur in many neighborhoods and the cache pays off.
    let b = workloads::berlin_relation(workloads::joins_b_size(scale) / 4, 141);
    let c = workloads::berlin_relation(workloads::joins_b_size(scale) / 2, 142);
    let query = ChainedJoinQuery::new(TWO_JOINS_K, TWO_JOINS_K);
    for (i, n) in workloads::fig24_a_sizes(scale).into_iter().enumerate() {
        let a = workloads::berlin_relation(n, 700 + i as u64);
        let x = n.to_string();
        let (t_uncached, uncached) = time_ms(|| chained_nested(&a, &b, &c, &query));
        let (t_cached, cached) = time_ms(|| chained_nested_cached(&a, &b, &c, &query));
        assert_same_rows(&uncached, &cached, "fig24");
        record(&mut report, &x, "nested-join", t_uncached, &uncached);
        record(&mut report, &x, "nested-join-cached", t_cached, &cached);
    }
    report
}

/// Figure 25: two chained kNN-joins with a clustered `B` — Join-Intersection
/// QEP vs cached Nested-Join QEP, varying the number of clusters in `B`.
pub fn fig25(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig25",
        "chained joins: Join-Intersection vs cached Nested-Join (B clustered)",
        "clusters in B",
    );
    // A is small so the sweep-dependent term (expanding B points against C)
    // dominates; the Join-Intersection QEP expands *every* B point, the
    // nested QEP only the ones A actually reaches.
    let a = workloads::berlin_relation(workloads::joins_b_size(scale) / 16, 151);
    let c = workloads::berlin_relation(workloads::joins_b_size(scale), 152);
    let query = ChainedJoinQuery::new(TWO_JOINS_K, TWO_JOINS_K);
    for n_clusters in workloads::fig25_b_clusters(scale) {
        let b = workloads::clustered_relation_sized(n_clusters, 4_000, 800 + n_clusters as u64);
        let x = n_clusters.to_string();
        let (t_slow, slow) = time_ms(|| chained_join_intersection(&a, &b, &c, &query));
        let (t_fast, fast) = time_ms(|| chained_nested_cached(&a, &b, &c, &query));
        assert_same_rows(&slow, &fast, "fig25");
        record(&mut report, &x, "join-intersection", t_slow, &slow);
        record(&mut report, &x, "nested-join-cached", t_fast, &fast);
    }
    report
}

/// Figure 26: two kNN-selects — conceptual QEP vs the 2-kNN-select algorithm,
/// `k1 = 10` fixed, varying `log2(k2/k1)`.
pub fn fig26(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig26",
        "two kNN-selects: conceptual QEP vs 2-kNN-select (k1 = 10 fixed)",
        "log2(k2/k1)",
    );
    let relation = workloads::berlin_relation(workloads::fig26_relation_size(scale), 161);
    let reps = workloads::FIG26_REPETITIONS;
    let (f1, f2) = workloads::fig26_focal_points();
    for ratio_log2 in workloads::fig26_k_ratios(scale) {
        let k2 = FIG26_K1 << ratio_log2;
        let query = TwoSelectsQuery::new(FIG26_K1, f1, k2, f2);
        let x = ratio_log2.to_string();
        // Individual runs are sub-millisecond; repeat and average.
        let (t_slow_total, slow) = time_ms(|| {
            let mut last = two_selects_conceptual(&relation, &query);
            for _ in 1..reps {
                last = two_selects_conceptual(&relation, &query);
            }
            last
        });
        let (t_fast_total, fast) = time_ms(|| {
            let mut last = two_knn_select(&relation, &query);
            for _ in 1..reps {
                last = two_knn_select(&relation, &query);
            }
            last
        });
        assert_same_rows(&slow, &fast, "fig26");
        record(
            &mut report,
            &x,
            "conceptual",
            t_slow_total / reps as f64,
            &slow,
        );
        record(
            &mut report,
            &x,
            "2-kNN-select",
            t_fast_total / reps as f64,
            &fast,
        );
    }
    report
}

/// Ablation A1: the select-inner-of-join query across the three index
/// structures (grid, PR-quadtree, STR R-tree), showing that the algorithm
/// ranking is index-independent (the paper's Section 2 claim).
pub fn ablation_index(scale: Scale) -> Report {
    let mut report = Report::new(
        "ablation_index",
        "Block-Marking vs conceptual across index structures (same workload)",
        "index",
    );
    let n_outer = match scale {
        Scale::Smoke => 2_000,
        Scale::Quick => 16_000,
        Scale::Paper => 160_000,
    };
    let n_inner = workloads::fig19_inner_size(scale) / 2;
    let outer_pts =
        twoknn_datagen::berlinmod(&twoknn_datagen::BerlinModConfig::with_points(n_outer, 171));
    let inner_pts =
        twoknn_datagen::berlinmod(&twoknn_datagen::BerlinModConfig::with_points(n_inner, 172));
    let query = SelectInnerJoinQuery::new(SELECT_JOIN_K, SELECT_JOIN_K, workloads::focal_point());

    // Grid.
    {
        let outer = workloads::berlin_relation(n_outer, 171);
        let inner = workloads::berlin_relation(n_inner, 172);
        let (t_slow, slow) = time_ms(|| conceptual(&outer, &inner, &query));
        let (t_fast, fast) = time_ms(|| block_marking(&outer, &inner, &query));
        assert_same_rows(&slow, &fast, "ablation_index/grid");
        record(&mut report, "grid", "conceptual", t_slow, &slow);
        record(&mut report, "grid", "block-marking", t_fast, &fast);
    }
    // PR-quadtree.
    {
        let outer = QuadtreeIndex::build(outer_pts.clone(), 128).expect("non-empty");
        let inner = QuadtreeIndex::build(inner_pts.clone(), 128).expect("non-empty");
        let (t_slow, slow) = time_ms(|| conceptual(&outer, &inner, &query));
        let (t_fast, fast) = time_ms(|| block_marking(&outer, &inner, &query));
        assert_same_rows(&slow, &fast, "ablation_index/quadtree");
        record(&mut report, "quadtree", "conceptual", t_slow, &slow);
        record(&mut report, "quadtree", "block-marking", t_fast, &fast);
    }
    // STR R-tree. Its leaves do not tile the space, so the contour-based
    // early stop is disabled for correctness (see DESIGN.md); the per-block
    // test still prunes.
    {
        let outer = StrRTree::build(outer_pts, 128).expect("non-empty");
        let inner = StrRTree::build(inner_pts, 128).expect("non-empty");
        let cfg = BlockMarkingConfig {
            contour_pruning: false,
        };
        let (t_slow, slow) = time_ms(|| conceptual(&outer, &inner, &query));
        let (t_fast, fast) = time_ms(|| block_marking_with_config(&outer, &inner, &query, &cfg));
        assert_same_rows(&slow, &fast, "ablation_index/rtree");
        record(&mut report, "str-rtree", "conceptual", t_slow, &slow);
        record(&mut report, "str-rtree", "block-marking", t_fast, &fast);
    }
    report
}

/// Ablation A2: Block-Marking design choices — contour-based early stop
/// on/off, and Counting as a reference point, on the Figure 19 workload.
pub fn ablation_block_marking(scale: Scale) -> Report {
    let mut report = Report::new(
        "ablation_block_marking",
        "Block-Marking contour pruning on/off vs Counting",
        "outer size",
    );
    let inner = workloads::berlin_relation(workloads::fig19_inner_size(scale) / 2, 181);
    let query = SelectInnerJoinQuery::new(SELECT_JOIN_K, SELECT_JOIN_K, workloads::focal_point());
    let sizes = match scale {
        Scale::Smoke => vec![2_000, 4_000],
        Scale::Quick => vec![16_000, 32_000, 64_000],
        Scale::Paper => vec![160_000, 320_000, 640_000],
    };
    for (i, n) in sizes.into_iter().enumerate() {
        let outer = workloads::berlin_relation(n, 900 + i as u64);
        let x = n.to_string();
        let (t_contour, with_contour) = time_ms(|| block_marking(&outer, &inner, &query));
        let (t_plain, without_contour) = time_ms(|| {
            block_marking_with_config(
                &outer,
                &inner,
                &query,
                &BlockMarkingConfig {
                    contour_pruning: false,
                },
            )
        });
        let (t_counting, count_out) = time_ms(|| counting(&outer, &inner, &query));
        assert_same_rows(&with_contour, &without_contour, "ablation_block_marking");
        assert_same_rows(&with_contour, &count_out, "ablation_block_marking");
        record(&mut report, &x, "counting", t_counting, &count_out);
        record(
            &mut report,
            &x,
            "block-marking-no-contour",
            t_plain,
            &without_contour,
        );
        record(
            &mut report,
            &x,
            "block-marking-contour",
            t_contour,
            &with_contour,
        );
    }
    report
}

/// Ablation A3: serial vs multi-core execution of the hot paths
/// (Block-Marking and the unchained two-join Block-Marking). With the
/// `parallel` feature disabled the parallel mode falls back to serial and
/// both series coincide; with it enabled the speedup tracks the core count.
pub fn ablation_parallel(scale: Scale) -> Report {
    let threads = available_threads();
    let mut report = Report::new(
        "ablation_parallel",
        &format!("serial vs parallel execution ({threads} worker threads)"),
        "workload",
    );
    let parallel = ExecutionMode::Parallel { threads };
    let n_outer = match scale {
        Scale::Smoke => 2_000,
        Scale::Quick => 100_000,
        Scale::Paper => 320_000,
    };

    // Block-Marking on a large outer relation.
    {
        let outer = workloads::berlin_relation(n_outer, 191);
        let inner = workloads::berlin_relation(n_outer / 4, 192);
        let query =
            SelectInnerJoinQuery::new(SELECT_JOIN_K, SELECT_JOIN_K, workloads::focal_point());
        let cfg = BlockMarkingConfig::default();
        let (t_serial, serial) = time_ms(|| {
            block_marking_with_mode(&outer, &inner, &query, &cfg, ExecutionMode::Serial)
        });
        let (t_par, par) =
            time_ms(|| block_marking_with_mode(&outer, &inner, &query, &cfg, parallel));
        assert_same_rows(&serial, &par, "ablation_parallel/block_marking");
        record(&mut report, "block-marking", "serial", t_serial, &serial);
        record(&mut report, "block-marking", "parallel", t_par, &par);
    }

    // Unchained two-join Block-Marking.
    {
        let a = workloads::clustered_relation_sized(4, n_outer / 25, 193);
        let b = workloads::berlin_relation(n_outer / 2, 194);
        let c = workloads::berlin_relation(n_outer, 195);
        let query = UnchainedJoinQuery::new(TWO_JOINS_K, TWO_JOINS_K);
        let (t_serial, serial) = time_ms(|| {
            unchained_block_marking_with_mode(&a, &b, &c, &query, ExecutionMode::Serial)
        });
        let (t_par, par) =
            time_ms(|| unchained_block_marking_with_mode(&a, &b, &c, &query, parallel));
        assert_same_rows(&serial, &par, "ablation_parallel/unchained");
        record(&mut report, "unchained-joins", "serial", t_serial, &serial);
        record(&mut report, "unchained-joins", "parallel", t_par, &par);
    }
    report
}

/// All experiment ids, in the order they appear in the paper.
pub const ALL_IDS: &[&str] = &[
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "ablation_index",
    "ablation_block_marking",
    "ablation_parallel",
];

/// Runs one experiment by id.
pub fn run(id: &str, scale: Scale) -> Option<Report> {
    Some(match id {
        "fig19" => fig19(scale),
        "fig20" => fig20(scale),
        "fig21" => fig21(scale),
        "fig22" => fig22(scale),
        "fig23" => fig23(scale),
        "fig24" => fig24(scale),
        "fig25" => fig25(scale),
        "fig26" => fig26(scale),
        "ablation_index" => ablation_index(scale),
        "ablation_block_marking" => ablation_block_marking(scale),
        "ablation_parallel" => ablation_parallel(scale),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_rejects_unknown_ids() {
        assert!(run("fig99", Scale::Quick).is_none());
    }

    #[test]
    fn all_ids_are_runnable_names() {
        // Only check that the dispatcher knows every id; actually running the
        // sweeps is the experiments binary's job.
        for id in ALL_IDS {
            assert!(
                matches!(
                    *id,
                    "fig19"
                        | "fig20"
                        | "fig21"
                        | "fig22"
                        | "fig23"
                        | "fig24"
                        | "fig25"
                        | "fig26"
                        | "ablation_index"
                        | "ablation_block_marking"
                        | "ablation_parallel"
                ),
                "unknown id {id}"
            );
        }
    }
}
