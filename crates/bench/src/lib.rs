//! # twoknn-bench
//!
//! Benchmark harness reproducing the paper's evaluation (Section 6,
//! Figures 19–26) plus two ablations.
//!
//! The harness has two entry points:
//!
//! * the `experiments` binary (`cargo run -p twoknn-bench --release --bin
//!   experiments`) runs every figure's parameter sweep, measuring wall-clock
//!   time *and* machine-independent work metrics, and prints one table per
//!   figure in the same shape as the paper's plots;
//! * the Criterion benches (`cargo bench -p twoknn-bench`) measure individual
//!   algorithm invocations for a few representative points of each sweep.
//!
//! Dataset sizes follow the paper but are scaled down by default
//! ([`Scale::Quick`]) so a full run finishes in minutes on a laptop;
//! [`Scale::Paper`] uses the paper's sizes (up to 2.56 M points).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod micro;
pub mod workloads;

use std::time::Instant;

/// How large the benchmark datasets are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for CI smoke runs: the full sweep finishes in seconds and
    /// only checks that every experiment still runs and that the compared
    /// algorithms still agree — the timings carry no signal at this scale.
    Smoke,
    /// Reduced sizes (default): every experiment finishes in seconds to a few
    /// minutes.
    Quick,
    /// The paper's sizes (32,000 – 2,560,000 points). Expect long runs for
    /// the conceptually correct baselines.
    Paper,
}

impl Scale {
    /// Parses a scale name (`smoke` / `quick` / `paper` / `full`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" | "ci" => Some(Scale::Smoke),
            "quick" | "small" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Runs a closure and returns its wall-clock time in milliseconds along with
/// its result.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// A single measured point of an experiment series.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The x-axis value (e.g. the outer-relation size).
    pub x: String,
    /// The series (algorithm) name.
    pub series: String,
    /// Wall-clock time in milliseconds.
    pub millis: f64,
    /// Neighborhood computations performed (the dominant work term).
    pub neighborhoods: u64,
    /// Result rows produced (used to cross-check that compared algorithms
    /// returned identical cardinalities).
    pub rows: usize,
}

/// A complete experiment report: an id (figure number), a description and the
/// measurements of every (x, series) combination.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `fig19`.
    pub id: String,
    /// Human-readable description of the workload and parameters.
    pub description: String,
    /// Label of the x axis.
    pub x_label: String,
    /// The measurements, in sweep order.
    pub measurements: Vec<Measurement>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, description: &str, x_label: &str) -> Self {
        Self {
            id: id.to_string(),
            description: description.to_string(),
            x_label: x_label.to_string(),
            measurements: Vec::new(),
        }
    }

    /// Adds a measurement.
    pub fn push(&mut self, m: Measurement) {
        self.measurements.push(m);
    }

    /// Distinct series names, in first-appearance order.
    pub fn series(&self) -> Vec<String> {
        let mut names = Vec::new();
        for m in &self.measurements {
            if !names.contains(&m.series) {
                names.push(m.series.clone());
            }
        }
        names
    }

    /// Distinct x values, in first-appearance order.
    pub fn xs(&self) -> Vec<String> {
        let mut xs = Vec::new();
        for m in &self.measurements {
            if !xs.contains(&m.x) {
                xs.push(m.x.clone());
            }
        }
        xs
    }

    fn find(&self, x: &str, series: &str) -> Option<&Measurement> {
        self.measurements
            .iter()
            .find(|m| m.x == x && m.series == series)
    }

    /// Renders the report as an aligned text table: one row per x value, one
    /// time column (and one neighborhood-count column) per series, plus the
    /// speedup of the last series relative to the first.
    pub fn render(&self) -> String {
        let series = self.series();
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.id, self.description));
        out.push_str(&format!("x-axis: {}\n\n", self.x_label));

        // Header.
        out.push_str(&format!("{:>14}", self.x_label));
        for s in &series {
            out.push_str(&format!(" | {:>22}", format!("{s} ms")));
            out.push_str(&format!(" {:>12}", "knn-calls"));
        }
        if series.len() >= 2 {
            out.push_str(&format!(" | {:>9}", "speedup"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(14 + series.len() * 38 + if series.len() >= 2 { 12 } else { 0 }));
        out.push('\n');

        for x in self.xs() {
            out.push_str(&format!("{:>14}", x));
            let mut first_ms = None;
            let mut last_ms = None;
            for s in &series {
                if let Some(m) = self.find(&x, s) {
                    out.push_str(&format!(" | {:>22.2}", m.millis));
                    out.push_str(&format!(" {:>12}", m.neighborhoods));
                    if first_ms.is_none() {
                        first_ms = Some(m.millis);
                    }
                    last_ms = Some(m.millis);
                } else {
                    out.push_str(&format!(" | {:>22} {:>12}", "-", "-"));
                }
            }
            if let (Some(f), Some(l)) = (first_ms, last_ms) {
                if series.len() >= 2 && l > 0.0 {
                    out.push_str(&format!(" | {:>8.1}x", f / l));
                }
            }
            out.push('\n');
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("FULL"), Some(Scale::Paper));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("ci"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn time_ms_returns_result_and_nonnegative_time() {
        let (ms, v) = time_ms(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(ms >= 0.0);
    }

    #[test]
    fn report_rendering_includes_all_series_and_xs() {
        let mut r = Report::new("figX", "demo", "n");
        for (x, s, t) in [
            ("10", "slow", 100.0),
            ("10", "fast", 1.0),
            ("20", "slow", 200.0),
            ("20", "fast", 2.0),
        ] {
            r.push(Measurement {
                x: x.into(),
                series: s.into(),
                millis: t,
                neighborhoods: 42,
                rows: 7,
            });
        }
        assert_eq!(r.series(), vec!["slow".to_string(), "fast".to_string()]);
        assert_eq!(r.xs(), vec!["10".to_string(), "20".to_string()]);
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("slow"));
        assert!(text.contains("100.00"));
        assert!(text.contains("speedup"));
    }
}
