//! Workload construction shared by the experiment runners and the Criterion
//! benches.
//!
//! All datasets are produced by `twoknn-datagen` (the BerlinMOD substitute
//! and the clustered generator documented in `DESIGN.md`) and indexed into a
//! [`GridIndex`] sized so that the average occupied block holds roughly the
//! same number of points regardless of the dataset size — mirroring the
//! paper's fixed-granularity grid.

use twoknn_datagen::{berlinmod, clustered, uniform, BerlinModConfig, ClusterConfig};
use twoknn_geometry::{Point, Rect};
use twoknn_index::GridIndex;

use crate::Scale;

/// Target number of points per occupied grid block.
pub const TARGET_BLOCK_OCCUPANCY: usize = 64;

/// The default extent shared by every workload.
pub fn extent() -> Rect {
    twoknn_datagen::default_extent()
}

/// Builds a grid index over BerlinMOD-like data with `n` points.
pub fn berlin_relation(n: usize, seed: u64) -> GridIndex {
    let pts = berlinmod(&BerlinModConfig::with_points(n, seed));
    grid(pts)
}

/// Builds a grid index over uniformly distributed data with `n` points.
pub fn uniform_relation(n: usize, seed: u64) -> GridIndex {
    grid(uniform(n, extent(), seed))
}

/// Builds a grid index over clustered data: `num_clusters` non-overlapping
/// clusters of 4,000 points each (the paper's Figure 23 setup).
pub fn clustered_relation(num_clusters: usize, seed: u64) -> GridIndex {
    grid(clustered(&ClusterConfig::paper_default(num_clusters, seed)))
}

/// Builds a grid index over clustered data with an explicit cluster size.
pub fn clustered_relation_sized(
    num_clusters: usize,
    points_per_cluster: usize,
    seed: u64,
) -> GridIndex {
    grid(clustered(&ClusterConfig {
        num_clusters,
        points_per_cluster,
        cluster_radius: 2_000.0,
        extent: extent(),
        seed,
    }))
}

/// Builds a grid index over clustered data whose clusters are confined to a
/// specific region of the city (the paper's Figure 22 setup: "Points of A are
/// generated such that they are clustered inside a certain region").
///
/// The clusters are placed inside the north-east quarter of the extent, away
/// from the city center where the BerlinMOD-like relations concentrate.
pub fn clustered_relation_in_region(
    num_clusters: usize,
    points_per_cluster: usize,
    seed: u64,
) -> GridIndex {
    let e = extent();
    let region = Rect::new(
        e.min_x + 0.65 * e.width(),
        e.min_y + 0.65 * e.height(),
        e.min_x + 0.95 * e.width(),
        e.min_y + 0.95 * e.height(),
    );
    grid(clustered(&ClusterConfig {
        num_clusters,
        points_per_cluster,
        cluster_radius: 2_000.0,
        extent: region,
        seed,
    }))
}

fn grid(points: Vec<Point>) -> GridIndex {
    // Index over the shared extent so relations of different sizes are
    // comparable; clamp granularity to keep block occupancy near the target.
    let n = points.len().max(1);
    let cells = (((n as f64 / TARGET_BLOCK_OCCUPANCY as f64).sqrt().ceil()) as usize).clamp(8, 512);
    GridIndex::build_with_bounds(points, extent(), cells).expect("valid grid parameters")
}

/// Sizes of the outer relation for Figure 19 (conceptual vs Block-Marking).
pub fn fig19_outer_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![1_000, 2_000],
        Scale::Quick => vec![8_000, 16_000, 32_000, 64_000],
        Scale::Paper => vec![32_000, 160_000, 320_000, 640_000, 1_280_000, 2_560_000],
    }
}

/// Inner-relation size for Figure 19.
pub fn fig19_inner_size(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 4_000,
        Scale::Quick => 32_000,
        Scale::Paper => 320_000,
    }
}

/// Outer sizes for Figure 20 (low-density outer: Counting should win).
pub fn fig20_outer_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![500, 1_000],
        Scale::Quick => vec![1_000, 2_000, 4_000, 8_000],
        Scale::Paper => vec![32_000, 64_000, 128_000, 256_000],
    }
}

/// Outer sizes for Figure 21 (high-density outer: Block-Marking should win).
pub fn fig21_outer_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![4_000, 8_000],
        Scale::Quick => vec![32_000, 64_000, 128_000],
        Scale::Paper => vec![640_000, 1_280_000, 2_560_000],
    }
}

/// Inner-relation size for Figures 20 and 21.
pub fn fig20_21_inner_size(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 4_000,
        Scale::Quick => 32_000,
        Scale::Paper => 320_000,
    }
}

/// Sizes of relation `C` for Figure 22 (unchained joins, A clustered).
pub fn fig22_c_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![1_000, 2_000],
        Scale::Quick => vec![8_000, 16_000, 32_000, 64_000],
        Scale::Paper => vec![32_000, 160_000, 320_000, 640_000, 1_280_000],
    }
}

/// Size of relation `B` for Figures 22–25.
pub fn joins_b_size(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 4_000,
        Scale::Quick => 32_000,
        Scale::Paper => 320_000,
    }
}

/// Cluster-count differences for Figure 23 (A has `base + d` clusters, C has
/// `base` clusters, d = 1..=10).
pub fn fig23_cluster_diffs(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => (1..=2).collect(),
        Scale::Quick => (1..=5).collect(),
        Scale::Paper => (1..=10).collect(),
    }
}

/// Base number of clusters in relation `C` for Figure 23.
pub const FIG23_BASE_CLUSTERS: usize = 2;

/// Outer (`A`) sizes for Figure 24 (chained joins, cached vs uncached).
pub fn fig24_a_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![1_000, 2_000],
        Scale::Quick => vec![4_000, 8_000, 16_000, 32_000],
        Scale::Paper => vec![32_000, 64_000, 128_000, 256_000],
    }
}

/// Number-of-clusters sweep for relation `B` in Figure 25.
pub fn fig25_b_clusters(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![1, 2],
        Scale::Quick => vec![1, 2, 3, 4, 5, 6],
        Scale::Paper => vec![1, 2, 3, 4, 5, 6, 7, 8],
    }
}

/// Relation size for Figure 26 (two kNN-selects).
pub fn fig26_relation_size(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 16_000,
        Scale::Quick => 128_000,
        Scale::Paper => 640_000,
    }
}

/// The `log2(k2/k1)` sweep of Figure 26 (k1 = 10 fixed).
pub fn fig26_k_ratios(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Smoke => (0..=3).collect(),
        Scale::Quick => (0..=8).collect(),
        Scale::Paper => (0..=8).collect(),
    }
}

/// Number of repetitions per measured point for the (sub-millisecond)
/// two-select experiment.
pub const FIG26_REPETITIONS: usize = 20;

/// Fixed `k1` for Figure 26.
pub const FIG26_K1: usize = 10;

/// The k value used by both predicates in the join experiments (the paper
/// uses small k, e.g. 2, in its examples; the evaluation section does not fix
/// a value, so the harness uses 8 for selects-with-joins and 2 for two-join
/// queries).
pub const SELECT_JOIN_K: usize = 8;
/// k value for two-join experiments.
pub const TWO_JOINS_K: usize = 2;

/// The focal point used by select predicates: a busy location near the city
/// center.
pub fn focal_point() -> Point {
    Point::anonymous(52_000.0, 49_000.0)
}

/// A second focal point (for two-select queries), a few kilometers away from
/// [`focal_point`].
pub fn second_focal_point() -> Point {
    Point::anonymous(48_500.0, 51_500.0)
}

/// The focal-point pair of the Figure 26 experiment: two locations on the
/// (sparse) city outskirts about 1.7 km apart — the house-hunting scenario
/// where work and school sit in the same neighbourhood. Around a sparse
/// location the conceptual QEP's locality for a large `k2` must cover a huge
/// area, while the 2-kNN-select's locality is bounded by the small distance
/// between the two focal points plus the k1-neighborhood radius.
pub fn fig26_focal_points() -> (Point, Point) {
    (
        Point::anonymous(30_000.0, 68_000.0),
        Point::anonymous(31_500.0, 68_800.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_index::SpatialIndex;

    #[test]
    fn relations_are_built_over_the_shared_extent() {
        let r = berlin_relation(5_000, 1);
        assert_eq!(r.bounds(), extent());
        assert_eq!(r.num_points(), 5_000);
        let u = uniform_relation(3_000, 2);
        assert_eq!(u.num_points(), 3_000);
        let c = clustered_relation(2, 3);
        assert_eq!(c.num_points(), 8_000);
        let cs = clustered_relation_sized(3, 100, 4);
        assert_eq!(cs.num_points(), 300);
    }

    #[test]
    fn quick_scale_sweeps_are_smaller_than_paper_scale() {
        assert!(fig19_outer_sizes(Scale::Quick).last() < fig19_outer_sizes(Scale::Paper).last());
        assert!(fig26_relation_size(Scale::Quick) < fig26_relation_size(Scale::Paper));
        assert!(fig23_cluster_diffs(Scale::Quick).len() <= fig23_cluster_diffs(Scale::Paper).len());
    }

    #[test]
    fn focal_points_are_inside_the_extent() {
        assert!(extent().contains(&focal_point()));
        assert!(extent().contains(&second_focal_point()));
    }
}
