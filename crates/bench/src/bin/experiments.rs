//! The experiment driver: regenerates every figure of the paper's evaluation
//! section as a text table (wall-clock time + neighborhood computations per
//! algorithm and parameter value).
//!
//! Usage:
//!
//! ```text
//! cargo run -p twoknn-bench --release --bin experiments -- [--scale smoke|quick|paper] [--smoke] [--exp fig19,...] [--out FILE]
//! ```
//!
//! With no arguments every experiment runs at the quick scale and the report
//! is printed to stdout. `--smoke` (shorthand for `--scale smoke`) shrinks
//! every dataset so the full sweep finishes in seconds — the CI path: it
//! checks that every experiment runs and that the compared algorithms agree
//! on result cardinalities, not that the timings mean anything.

use std::io::Write;

use twoknn_bench::experiments::{run, ALL_IDS};
use twoknn_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut selected: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let value = args.get(i).map(String::as_str).unwrap_or("");
                scale = match Scale::parse(value) {
                    Some(s) => s,
                    None => {
                        eprintln!("unknown scale `{value}` (expected smoke|quick|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--smoke" => {
                scale = Scale::Smoke;
            }
            "--exp" => {
                i += 1;
                let value = args.get(i).cloned().unwrap_or_default();
                selected.extend(value.split(',').map(|s| s.trim().to_string()));
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned();
            }
            "--list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "experiments [--scale smoke|quick|paper] [--smoke] [--exp id[,id...]] [--out FILE] [--list]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`; try --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let ids: Vec<String> = if selected.is_empty() {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        selected
    };

    let mut full_report = String::new();
    full_report.push_str(&format!(
        "# two-knn experiment run (scale: {scale:?})\n\n\
         Reproduction of the evaluation of \"Spatial Queries with Two kNN Predicates\"\n\
         (Aly, Aref, Ouzzani — VLDB 2012). Times are wall-clock milliseconds on this\n\
         machine; `knn-calls` counts neighborhood computations (the dominant cost).\n\
         The `speedup` column is first-series time divided by last-series time.\n\n"
    ));

    for id in &ids {
        eprintln!("running {id} ...");
        match run(id, scale) {
            Some(report) => {
                let text = report.render();
                print!("{text}");
                full_report.push_str(&text);
            }
            None => {
                eprintln!("unknown experiment id `{id}` (use --list)");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = out_path {
        let mut file =
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        file.write_all(full_report.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("report written to {path}");
    }
}
