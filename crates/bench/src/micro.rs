//! A minimal micro-benchmark harness for the `benches/` targets.
//!
//! The workspace builds without external dependencies, so instead of
//! Criterion the bench targets are plain `harness = false` binaries using
//! this module: per benchmark it warms up once, runs a fixed number of
//! samples, and prints min / median / max wall-clock milliseconds. The
//! output is a stable, grep-friendly table — good enough for the relative
//! comparisons these benches exist for (algorithm A vs algorithm B on the
//! same workload), though without Criterion's statistical machinery.

use std::time::Instant;

/// A named group of related benchmarks, printed as one table.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

/// The timing summary of one benchmark, in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Fastest sample.
    pub min_ms: f64,
    /// Median sample.
    pub median_ms: f64,
    /// Slowest sample.
    pub max_ms: f64,
}

impl BenchGroup {
    /// Creates a group and prints its header.
    pub fn new(name: &str) -> Self {
        println!("\n## {name}");
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            "benchmark", "min ms", "median ms", "max ms"
        );
        Self {
            name: name.to_string(),
            samples: 10,
        }
    }

    /// Sets the number of measured samples (default 10).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark: a warm-up call, then `samples` timed calls.
    /// Returns the summary (also printed as a table row).
    pub fn bench<T>(&mut self, label: &str, mut f: impl FnMut() -> T) -> Summary {
        std::hint::black_box(f());
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let summary = Summary {
            min_ms: times[0],
            median_ms: times[times.len() / 2],
            max_ms: times[times.len() - 1],
        };
        println!(
            "{:<44} {:>12.3} {:>12.3} {:>12.3}",
            format!("{}/{}", self.name, label),
            summary.min_ms,
            summary.median_ms,
            summary.max_ms
        );
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_ordered_summary() {
        let mut group = BenchGroup::new("test_group").sample_size(5);
        let s = group.bench("noop", || 1 + 1);
        assert!(s.min_ms <= s.median_ms && s.median_ms <= s.max_ms);
    }
}
