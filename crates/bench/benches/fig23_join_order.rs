//! Figure 23: unchained kNN-joins with both outer relations clustered —
//! the effect of which join is evaluated first.

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::joins2::{unchained_block_marking, UnchainedJoinQuery};

fn main() {
    let b = workloads::berlin_relation(8_000, 131);
    let query = UnchainedJoinQuery::new(2, 2);
    let mut group = BenchGroup::new("fig23_join_order").sample_size(10);
    for diff in [2usize, 4] {
        // C has 1 cluster, A has 1 + diff clusters (A covers more area).
        let c_rel = workloads::clustered_relation_sized(1, 1_000, 500 + diff as u64);
        let a = workloads::clustered_relation_sized(1 + diff, 1_000, 600 + diff as u64);
        group.bench(&format!("start_with_A_join/{diff}"), || {
            unchained_block_marking(&a, &b, &c_rel, &query)
        });
        group.bench(&format!("start_with_C_join/{diff}"), || {
            unchained_block_marking(&c_rel, &b, &a, &query)
        });
    }
}
