//! Ablation A5: the cost of versioned storage.
//!
//! Three measurements over a BerlinMOD-like moving-objects relation:
//!
//! 1. **Delta-overlay read overhead** — the same query batch against a
//!    snapshot carrying a delta overlay (tombstoned blocks + partitioned
//!    overlay blocks) vs against the freshly compacted base. The overlay is
//!    the price of never blocking readers on writers; compaction pays it
//!    down.
//! 2. **Concurrent background rebuild** — query-batch latency while a
//!    compaction of the whole base runs on the shared worker pool, compared
//!    with the idle baseline (and with the ingest burst alone, so the
//!    rebuild's interference can be read off the difference). On a 1-thread
//!    pool the rebuild runs inline in `ingest`, so "during" collapses to
//!    ingest + rebuild + batch — the degraded but deterministic mode CI pins.
//! 3. **Burst pruning: single-block vs partitioned overlay** — a clustered
//!    insert burst of growing size with compaction disabled, queried with
//!    the same batch under a fanout-1 overlay (the old single giant block)
//!    and the default overlay grid. Reports query latency, per-kNN block
//!    and point scan counts, and the pruned fraction (share of the
//!    relation's points a kNN avoided touching — a common-denominator
//!    number, since both configs index identical data), the quantity the
//!    single-block overlay erodes as the burst grows.
//!
//! Usage: `cargo bench -p twoknn-bench --features parallel --bench
//! ablation_ingest -- [--points N] [--queries N] [--threads N] [--smoke]`

use std::sync::Arc;

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::exec::available_threads;
use twoknn_core::plan::{Database, QuerySpec};
use twoknn_core::selects2::TwoSelectsQuery;
use twoknn_core::store::{OverlayConfig, StoreConfig, WriteOp};
use twoknn_core::WorkerPool;
use twoknn_geometry::Point;
use twoknn_index::{Metrics, SpatialIndex};

/// A burst of upserts that move `count` existing objects to new positions.
fn move_burst(count: u64, round: u64) -> Vec<WriteOp> {
    let extent = workloads::extent();
    (0..count)
        .map(|i| {
            let h = (i * 0x9E3779B9 + round * 0x85EBCA6B) % 1_000_000;
            WriteOp::Upsert(Point::new(
                i * 13 % 20_011, // existing ids: moves, not inserts
                extent.min_x + (h % 1_000) as f64 * (extent.width() / 1_000.0),
                extent.min_y + ((h / 1_000) % 1_000) as f64 * (extent.height() / 1_000.0),
            ))
        })
        .collect()
}

/// A burst of `count` **fresh** inserts clustered within ~2% of the extent
/// around the query batch's focal region — the hot-region write burst that
/// used to collapse MINDIST pruning into one giant overlay block.
fn clustered_insert_burst(count: u64) -> Vec<WriteOp> {
    let extent = workloads::extent();
    let focal = workloads::focal_point();
    let radius = extent.width() * 0.02;
    (0..count)
        .map(|i| {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15);
            WriteOp::Upsert(Point::new(
                1_000_000 + i, // fresh ids: inserts, not moves
                focal.x - radius + (h % 4_000) as f64 * (radius / 2_000.0),
                focal.y - radius + ((h / 4_000) % 4_000) as f64 * (radius / 2_000.0),
            ))
        })
        .collect()
}

fn query_batch(queries: usize) -> Vec<QuerySpec> {
    let focal = workloads::focal_point();
    (0..queries)
        .map(|q| {
            let offset = (q % 97) as f64 * 53.0;
            QuerySpec::TwoSelects {
                relation: "Objects".into(),
                query: TwoSelectsQuery::new(
                    4,
                    Point::anonymous(focal.x + offset, focal.y - offset),
                    16,
                    Point::anonymous(focal.x - offset, focal.y + offset),
                ),
            }
        })
        .collect()
}

fn main() {
    let mut points = 120_000usize;
    let mut queries = 256usize;
    let mut threads = available_threads();
    let mut smoke = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--points" => {
                i += 1;
                points = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(points);
            }
            "--queries" => {
                i += 1;
                queries = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(queries);
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(threads);
            }
            // CI-sized run: small relation and batch, every measurement
            // still exercised (including the overlay-pruning sweep).
            "--smoke" => {
                points = 20_000;
                queries = 64;
                smoke = true;
            }
            // Ignore harness flags cargo bench forwards (e.g. --bench).
            _ => {}
        }
        i += 1;
    }
    let burst = 2_000u64.min(points as u64 / 4);
    println!(
        "ablation_ingest: {points} points, {queries} batch queries, {burst}-op ingest bursts, \
         {threads}-thread pool (parallel feature {})",
        if cfg!(feature = "parallel") {
            "ON"
        } else {
            "OFF — batches run serially"
        },
    );
    let specs = query_batch(queries);

    // 1. Delta-overlay read overhead vs a freshly compacted snapshot.
    {
        let pool = WorkerPool::new(threads);
        // Compaction only on demand: the delta must survive the measurement.
        let mut db = Database::with_pool_and_store_config(
            pool,
            StoreConfig {
                compaction_threshold: usize::MAX,
                ..StoreConfig::default()
            },
        );
        db.register("Objects", workloads::berlin_relation(points, 311));
        db.ingest("Objects", &move_burst(burst, 1)).unwrap();
        let delta_len = db.relation("Objects").unwrap().delta_len();

        let mut group = BenchGroup::new("ingest_overlay_read_overhead").sample_size(5);
        let overlay = group.bench(&format!("delta_overlay_{delta_len}_ops"), || {
            db.execute_batch(&specs)
        });
        db.compact_now("Objects").unwrap();
        assert_eq!(db.relation("Objects").unwrap().delta_len(), 0);
        let compacted = group.bench("freshly_compacted", || db.execute_batch(&specs));
        println!(
            "overlay read overhead: {:.2}x vs compacted snapshot \
             (overlay {:.1} ms -> compacted {:.1} ms, {delta_len} delta ops)",
            overlay.median_ms / compacted.median_ms,
            overlay.median_ms,
            compacted.median_ms
        );
    }

    // 2. Query latency with a concurrent background rebuild.
    {
        let pool = WorkerPool::new(threads);
        // Every burst crosses the threshold, so each sample schedules a
        // fresh rebuild of the whole base on the pool.
        let db = {
            let mut db = Database::with_pool_and_store_config(
                Arc::clone(&pool),
                StoreConfig {
                    compaction_threshold: burst as usize,
                    ..StoreConfig::default()
                },
            );
            db.register("Objects", workloads::berlin_relation(points, 312));
            db
        };
        let quiesce = |db: &Database| {
            while db.relation("Objects").unwrap().delta_len() > 0 {
                db.compact_now("Objects").unwrap();
                std::thread::yield_now();
            }
        };

        let mut group = BenchGroup::new("ingest_concurrent_rebuild").sample_size(5);
        quiesce(&db);
        let idle = group.bench("batch_idle", || db.execute_batch(&specs));
        let mut round = 0u64;
        let ingest_only = group.bench("ingest_burst_alone", || {
            round += 1;
            db.ingest("Objects", &move_burst(burst, round)).unwrap();
            quiesce(&db);
        });
        quiesce(&db);
        let during = group.bench("ingest_then_batch_during_rebuild", || {
            round += 1;
            // Crossing the threshold schedules the rebuild; the batch runs
            // while a worker rebuilds the base.
            db.ingest("Objects", &move_burst(burst, round)).unwrap();
            let out = db.execute_batch(&specs);
            quiesce(&db);
            out
        });
        println!(
            "batch during rebuild: {:.1} ms vs idle {:.1} ms + ingest/rebuild {:.1} ms \
             (interference ratio {:.2}x, compactions so far: {})",
            during.median_ms,
            idle.median_ms,
            ingest_only.median_ms,
            during.median_ms / (idle.median_ms + ingest_only.median_ms),
            db.store_metrics().compactions
        );
    }

    // 3. MINDIST pruning under write bursts: the old single-block overlay
    //    (fanout cap 1) vs the partitioned overlay grid, across burst sizes.
    {
        let burst_sizes: &[u64] = if smoke {
            &[1_000, 4_000]
        } else {
            &[2_000, 8_000, 32_000]
        };
        let overlays = [
            (
                "single_block",
                OverlayConfig {
                    max_cells_per_axis: 1,
                    ..OverlayConfig::default()
                },
            ),
            ("grid", OverlayConfig::default()),
        ];
        for &burst_size in burst_sizes {
            let mut group =
                BenchGroup::new(&format!("ingest_burst_pruning_{burst_size}")).sample_size(5);
            for (label, overlay) in overlays {
                let pool = WorkerPool::new(threads);
                // Compaction disabled: the whole burst stays in the overlay.
                let mut db = Database::with_pool_and_store_config(
                    pool,
                    StoreConfig {
                        compaction_threshold: usize::MAX,
                        overlay,
                        ..StoreConfig::default()
                    },
                );
                db.register("Objects", workloads::berlin_relation(points, 313));
                db.ingest("Objects", &clustered_insert_burst(burst_size))
                    .unwrap();
                let snap = db.relation("Objects").unwrap();
                let stat = group.bench(label, || db.execute_batch(&specs));
                let work: Metrics = db
                    .execute_batch(&specs)
                    .into_iter()
                    .map(|r| r.expect("burst batch query").metrics())
                    .fold(Metrics::default(), |acc, m| acc + m);
                // Share of the relation's points a kNN avoided touching —
                // the two configs index the identical data, so this
                // denominator is common and the fractions are directly
                // comparable (a per-config block count would not be: the
                // single-block overlay has far fewer, bigger blocks).
                let pruned_fraction = 1.0
                    - work.points_scanned as f64
                        / (work.neighborhoods_computed * snap.num_points() as u64).max(1) as f64;
                let knn = work.neighborhoods_computed.max(1);
                println!(
                    "burst {burst_size} {label}: pruned-point fraction {pruned_fraction:.4}, \
                     {} overlay block(s), {:.1} blocks / {:.0} points scanned per kNN, \
                     median {:.1} ms",
                    snap.overlay_block_count(),
                    work.blocks_scanned as f64 / knn as f64,
                    work.points_scanned as f64 / knn as f64,
                    stat.median_ms,
                );
            }
        }
    }
}
