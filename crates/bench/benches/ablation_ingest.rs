//! Ablation A5: the cost of versioned storage.
//!
//! Two measurements over a BerlinMOD-like moving-objects relation:
//!
//! 1. **Delta-overlay read overhead** — the same query batch against a
//!    snapshot carrying a delta overlay (tombstoned blocks + one overlay
//!    block) vs against the freshly compacted base. The overlay is the
//!    price of never blocking readers on writers; compaction pays it down.
//! 2. **Concurrent background rebuild** — query-batch latency while a
//!    compaction of the whole base runs on the shared worker pool, compared
//!    with the idle baseline (and with the ingest burst alone, so the
//!    rebuild's interference can be read off the difference). On a 1-thread
//!    pool the rebuild runs inline in `ingest`, so "during" collapses to
//!    ingest + rebuild + batch — the degraded but deterministic mode CI pins.
//!
//! Usage: `cargo bench -p twoknn-bench --features parallel --bench
//! ablation_ingest -- [--points N] [--queries N] [--threads N]`

use std::sync::Arc;

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::exec::available_threads;
use twoknn_core::plan::{Database, QuerySpec};
use twoknn_core::selects2::TwoSelectsQuery;
use twoknn_core::store::{StoreConfig, WriteOp};
use twoknn_core::WorkerPool;
use twoknn_geometry::Point;

/// A burst of upserts that move `count` existing objects to new positions.
fn move_burst(count: u64, round: u64) -> Vec<WriteOp> {
    let extent = workloads::extent();
    (0..count)
        .map(|i| {
            let h = (i * 0x9E3779B9 + round * 0x85EBCA6B) % 1_000_000;
            WriteOp::Upsert(Point::new(
                i * 13 % 20_011, // existing ids: moves, not inserts
                extent.min_x + (h % 1_000) as f64 * (extent.width() / 1_000.0),
                extent.min_y + ((h / 1_000) % 1_000) as f64 * (extent.height() / 1_000.0),
            ))
        })
        .collect()
}

fn query_batch(queries: usize) -> Vec<QuerySpec> {
    let focal = workloads::focal_point();
    (0..queries)
        .map(|q| {
            let offset = (q % 97) as f64 * 53.0;
            QuerySpec::TwoSelects {
                relation: "Objects".into(),
                query: TwoSelectsQuery::new(
                    4,
                    Point::anonymous(focal.x + offset, focal.y - offset),
                    16,
                    Point::anonymous(focal.x - offset, focal.y + offset),
                ),
            }
        })
        .collect()
}

fn main() {
    let mut points = 120_000usize;
    let mut queries = 256usize;
    let mut threads = available_threads();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--points" => {
                i += 1;
                points = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(points);
            }
            "--queries" => {
                i += 1;
                queries = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(queries);
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(threads);
            }
            // Ignore harness flags cargo bench forwards (e.g. --bench).
            _ => {}
        }
        i += 1;
    }
    let burst = 2_000u64.min(points as u64 / 4);
    println!(
        "ablation_ingest: {points} points, {queries} batch queries, {burst}-op ingest bursts, \
         {threads}-thread pool (parallel feature {})",
        if cfg!(feature = "parallel") {
            "ON"
        } else {
            "OFF — batches run serially"
        },
    );
    let specs = query_batch(queries);

    // 1. Delta-overlay read overhead vs a freshly compacted snapshot.
    {
        let pool = WorkerPool::new(threads);
        // Compaction only on demand: the delta must survive the measurement.
        let mut db = Database::with_pool_and_store_config(
            pool,
            StoreConfig {
                compaction_threshold: usize::MAX,
            },
        );
        db.register("Objects", workloads::berlin_relation(points, 311));
        db.ingest("Objects", &move_burst(burst, 1)).unwrap();
        let delta_len = db.relation("Objects").unwrap().delta_len();

        let mut group = BenchGroup::new("ingest_overlay_read_overhead").sample_size(5);
        let overlay = group.bench(&format!("delta_overlay_{delta_len}_ops"), || {
            db.execute_batch(&specs)
        });
        db.compact_now("Objects").unwrap();
        assert_eq!(db.relation("Objects").unwrap().delta_len(), 0);
        let compacted = group.bench("freshly_compacted", || db.execute_batch(&specs));
        println!(
            "overlay read overhead: {:.2}x vs compacted snapshot \
             (overlay {:.1} ms -> compacted {:.1} ms, {delta_len} delta ops)",
            overlay.median_ms / compacted.median_ms,
            overlay.median_ms,
            compacted.median_ms
        );
    }

    // 2. Query latency with a concurrent background rebuild.
    {
        let pool = WorkerPool::new(threads);
        // Every burst crosses the threshold, so each sample schedules a
        // fresh rebuild of the whole base on the pool.
        let db = {
            let mut db = Database::with_pool_and_store_config(
                Arc::clone(&pool),
                StoreConfig {
                    compaction_threshold: burst as usize,
                },
            );
            db.register("Objects", workloads::berlin_relation(points, 312));
            db
        };
        let quiesce = |db: &Database| {
            while db.relation("Objects").unwrap().delta_len() > 0 {
                db.compact_now("Objects").unwrap();
                std::thread::yield_now();
            }
        };

        let mut group = BenchGroup::new("ingest_concurrent_rebuild").sample_size(5);
        quiesce(&db);
        let idle = group.bench("batch_idle", || db.execute_batch(&specs));
        let mut round = 0u64;
        let ingest_only = group.bench("ingest_burst_alone", || {
            round += 1;
            db.ingest("Objects", &move_burst(burst, round)).unwrap();
            quiesce(&db);
        });
        quiesce(&db);
        let during = group.bench("ingest_then_batch_during_rebuild", || {
            round += 1;
            // Crossing the threshold schedules the rebuild; the batch runs
            // while a worker rebuilds the base.
            db.ingest("Objects", &move_burst(burst, round)).unwrap();
            let out = db.execute_batch(&specs);
            quiesce(&db);
            out
        });
        println!(
            "batch during rebuild: {:.1} ms vs idle {:.1} ms + ingest/rebuild {:.1} ms \
             (interference ratio {:.2}x, compactions so far: {})",
            during.median_ms,
            idle.median_ms,
            ingest_only.median_ms,
            during.median_ms / (idle.median_ms + ingest_only.median_ms),
            db.store_metrics().compactions
        );
    }
}
