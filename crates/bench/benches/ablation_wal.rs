//! Ablation A7: the durability subsystem (WAL + shard block files).
//!
//! Two measurements over a BerlinMOD-like moving-objects relation:
//!
//! 1. **Ingest overhead** — move-burst ingest latency and publishes/sec
//!    under [`DurabilityConfig::Disabled`] (the baseline — no WAL handle
//!    exists at all) vs `EveryBatch` (fsync per batch) vs `EveryN(64)` vs
//!    `Never` (append without fsync). Latency ratios are printed; the
//!    `--smoke` assertions are structural, not timing-based: the disabled
//!    baseline must log **nothing** (`wal_appends == wal_bytes == 0`, no
//!    directory touched), and every durable mode must log exactly one
//!    record per publishing batch.
//! 2. **Cold-open recovery time vs relation size** — a durable instance
//!    ingests a workload and is dropped *without* a checkpoint; the bench
//!    times [`Database::open`] (block-file load + WAL replay) across
//!    relation sizes. `--smoke` asserts recovery reproduces the crashed
//!    instance's exact visible point count.
//!
//! Usage: `cargo bench -p twoknn-bench --features parallel --bench
//! ablation_wal -- [--points N] [--batches N] [--threads N] [--smoke]`

use std::path::PathBuf;

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::exec::available_threads;
use twoknn_core::plan::Database;
use twoknn_core::store::{DurabilityConfig, StoreConfig, SyncPolicy, WriteOp};
use twoknn_core::WorkerPool;
use twoknn_geometry::Point;
use twoknn_index::SpatialIndex;

/// A process-unique scratch directory under the system tmp root.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("twoknn-ablation-wal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The durability modes under comparison. `None` is the disabled baseline;
/// the rest differ only in sync policy.
fn modes() -> [(&'static str, Option<SyncPolicy>); 4] {
    [
        ("disabled", None),
        ("wal_never_sync", Some(SyncPolicy::Never)),
        ("wal_sync_every_64", Some(SyncPolicy::EveryN(64))),
        ("wal_sync_every_batch", Some(SyncPolicy::EveryBatch)),
    ]
}

/// A move burst: `count` upserts of stable ids whose positions vary by
/// round, so the relation size stays constant across samples while every
/// batch changes the visible set (and therefore must be logged).
fn move_burst(count: u64, round: u64) -> Vec<WriteOp> {
    let extent = workloads::extent();
    (0..count)
        .map(|i| {
            let h = (i ^ round.wrapping_mul(0xC2B2_AE3D)).wrapping_mul(0x9E3779B97F4A7C15);
            WriteOp::Upsert(Point::new(
                3_000_000 + i,
                extent.min_x + (h % 10_000) as f64 * (extent.width() / 10_000.0),
                extent.min_y + ((h / 10_000) % 10_000) as f64 * (extent.height() / 10_000.0),
            ))
        })
        .collect()
}

fn main() {
    let mut points = 120_000usize;
    let mut batches = 64usize;
    let mut threads = available_threads();
    let mut smoke = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--points" => {
                i += 1;
                points = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(points);
            }
            "--batches" => {
                i += 1;
                batches = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(batches);
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(threads);
            }
            "--smoke" => {
                points = 20_000;
                batches = 24;
                smoke = true;
            }
            _ => {}
        }
        i += 1;
    }
    let batch_ops = 64u64;
    println!(
        "ablation_wal: {points} points, {batches} batches × {batch_ops} move ops per sample, \
         {threads}-thread pool (parallel feature {})",
        if cfg!(feature = "parallel") {
            "ON"
        } else {
            "OFF"
        },
    );

    // 1. Ingest overhead per durability mode.
    {
        let mut baseline_ms = None;
        let mut group = BenchGroup::new("wal_ingest_overhead").sample_size(5);
        for (label, sync) in modes() {
            let dir = scratch_dir(label);
            let durability = match sync {
                None => DurabilityConfig::Disabled,
                Some(policy) => DurabilityConfig::at(&dir).with_sync(policy),
            };
            let pool = WorkerPool::new(threads);
            let mut db = Database::with_pool_and_store_config(
                pool,
                StoreConfig {
                    durability,
                    ..StoreConfig::default()
                },
            );
            db.register("Objects", workloads::berlin_relation(points, 423));
            // Settle the first (insert) round outside the measurement.
            db.ingest("Objects", &move_burst(batch_ops, 0)).unwrap();
            let logged_before = db.store_metrics().wal_appends;
            let mut round = 0u64;
            let stat = group.bench(label, || {
                for _ in 0..batches {
                    round += 1;
                    db.ingest("Objects", &move_burst(batch_ops, round)).unwrap();
                }
            });
            let m = db.store_metrics();
            let publishes_per_sec = batches as f64 / (stat.median_ms / 1_000.0);
            println!(
                "{label}: median {:.2} ms / {batches} publishes ({publishes_per_sec:.0}/s), \
                 {} WAL records / {} bytes",
                stat.median_ms, m.wal_appends, m.wal_bytes,
            );
            if let Some(base) = baseline_ms {
                println!(
                    "{label}: {:.2}x the disabled baseline",
                    stat.median_ms / base
                );
            } else {
                baseline_ms = Some(stat.median_ms);
            }
            if smoke {
                match sync {
                    None => {
                        assert_eq!(
                            (m.wal_appends, m.wal_bytes),
                            (0, 0),
                            "disabled durability must log nothing"
                        );
                        assert!(
                            !dir.exists(),
                            "disabled durability must not touch the filesystem"
                        );
                    }
                    Some(_) => {
                        assert_eq!(
                            m.wal_appends - logged_before,
                            round,
                            "{label}: exactly one WAL record per publishing batch"
                        );
                        assert!(m.wal_bytes > 0, "{label}: records carry payload");
                    }
                }
            }
            drop(db);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // 2. Cold-open recovery time vs relation size.
    {
        let mut group = BenchGroup::new("wal_cold_open_recovery").sample_size(5);
        for scale in [points / 4, points / 2, points] {
            let dir = scratch_dir(&format!("recovery-{scale}"));
            let cfg = StoreConfig {
                durability: DurabilityConfig::at(&dir).with_sync(SyncPolicy::Never),
                ..StoreConfig::default()
            };
            let expected = {
                let pool = WorkerPool::new(threads);
                let mut db = Database::with_pool_and_store_config(pool, cfg.clone());
                db.register("Objects", workloads::berlin_relation(scale, 424));
                for round in 0..batches as u64 {
                    db.ingest("Objects", &move_burst(batch_ops, round)).unwrap();
                }
                db.relation("Objects").unwrap().num_points()
                // Dropped here: a crash, not a checkpointed shutdown.
            };
            let stat = group.bench(&format!("open_{scale}_points"), || {
                let pool = WorkerPool::new(threads);
                Database::open_with_pool(&dir, cfg.clone(), pool).unwrap()
            });
            let pool = WorkerPool::new(threads);
            let reopened = Database::open_with_pool(&dir, cfg.clone(), pool).unwrap();
            let recovered = reopened.relation("Objects").unwrap().num_points();
            println!(
                "recovery@{scale}: median {:.2} ms, {recovered} points recovered, \
                 {} relation(s)",
                stat.median_ms,
                reopened.store_metrics().recoveries,
            );
            if smoke {
                assert_eq!(
                    recovered, expected,
                    "recovery@{scale}: visible point count must survive the crash"
                );
                assert_eq!(reopened.store_metrics().recoveries, 1);
            }
            drop(reopened);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
