//! Figure 22: two unchained kNN-joins with a clustered `A` relation.
//! Conceptual QEP (independent joins + ∩_B) vs Block-Marking (Procedure 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twoknn_bench::workloads;
use twoknn_core::joins2::{unchained_block_marking, unchained_conceptual, UnchainedJoinQuery};

fn bench(c: &mut Criterion) {
    let a = workloads::clustered_relation_sized(2, 1_000, 121);
    let b = workloads::berlin_relation(8_000, 122);
    let query = UnchainedJoinQuery::new(2, 2);
    let mut group = c.benchmark_group("fig22_unchained_joins");
    for n in [4_000usize, 8_000] {
        let c_rel = workloads::berlin_relation(n, 400 + n as u64);
        group.bench_with_input(BenchmarkId::new("conceptual", n), &n, |bch, _| {
            bch.iter(|| unchained_conceptual(&a, &b, &c_rel, &query))
        });
        group.bench_with_input(BenchmarkId::new("block_marking", n), &n, |bch, _| {
            bch.iter(|| unchained_block_marking(&a, &b, &c_rel, &query))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
