//! Figure 22: two unchained kNN-joins with a clustered `A` relation.
//! Conceptual QEP (independent joins + ∩_B) vs Block-Marking (Procedure 4).

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::joins2::{unchained_block_marking, unchained_conceptual, UnchainedJoinQuery};

fn main() {
    let a = workloads::clustered_relation_sized(2, 1_000, 121);
    let b = workloads::berlin_relation(8_000, 122);
    let query = UnchainedJoinQuery::new(2, 2);
    let mut group = BenchGroup::new("fig22_unchained_joins").sample_size(10);
    for n in [4_000usize, 8_000] {
        let c_rel = workloads::berlin_relation(n, 400 + n as u64);
        group.bench(&format!("conceptual/{n}"), || {
            unchained_conceptual(&a, &b, &c_rel, &query)
        });
        group.bench(&format!("block_marking/{n}"), || {
            unchained_block_marking(&a, &b, &c_rel, &query)
        });
    }
}
