//! Ablation A1: the same select-inner-of-join workload across the three index
//! structures (grid, PR-quadtree, STR R-tree). The algorithms are index
//! agnostic (Section 2); the Block-Marking vs conceptual ranking should hold
//! for every structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twoknn_bench::workloads;
use twoknn_core::select_join::{
    block_marking, block_marking_with_config, conceptual, BlockMarkingConfig,
    SelectInnerJoinQuery,
};
use twoknn_datagen::{berlinmod, BerlinModConfig};
use twoknn_index::{QuadtreeIndex, StrRTree};

fn bench(c: &mut Criterion) {
    let n_outer = 4_000;
    let n_inner = 8_000;
    let outer_pts = berlinmod(&BerlinModConfig::with_points(n_outer, 171));
    let inner_pts = berlinmod(&BerlinModConfig::with_points(n_inner, 172));
    let query = SelectInnerJoinQuery::new(8, 8, workloads::focal_point());

    let mut group = c.benchmark_group("ablation_index");

    let outer_grid = workloads::berlin_relation(n_outer, 171);
    let inner_grid = workloads::berlin_relation(n_inner, 172);
    group.bench_function(BenchmarkId::new("grid", "conceptual"), |b| {
        b.iter(|| conceptual(&outer_grid, &inner_grid, &query))
    });
    group.bench_function(BenchmarkId::new("grid", "block_marking"), |b| {
        b.iter(|| block_marking(&outer_grid, &inner_grid, &query))
    });

    let outer_qt = QuadtreeIndex::build(outer_pts.clone(), 128).unwrap();
    let inner_qt = QuadtreeIndex::build(inner_pts.clone(), 128).unwrap();
    group.bench_function(BenchmarkId::new("quadtree", "conceptual"), |b| {
        b.iter(|| conceptual(&outer_qt, &inner_qt, &query))
    });
    group.bench_function(BenchmarkId::new("quadtree", "block_marking"), |b| {
        b.iter(|| block_marking(&outer_qt, &inner_qt, &query))
    });

    let outer_rt = StrRTree::build(outer_pts, 128).unwrap();
    let inner_rt = StrRTree::build(inner_pts, 128).unwrap();
    let cfg = BlockMarkingConfig {
        contour_pruning: false,
    };
    group.bench_function(BenchmarkId::new("str_rtree", "conceptual"), |b| {
        b.iter(|| conceptual(&outer_rt, &inner_rt, &query))
    });
    group.bench_function(BenchmarkId::new("str_rtree", "block_marking"), |b| {
        b.iter(|| block_marking_with_config(&outer_rt, &inner_rt, &query, &cfg))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
