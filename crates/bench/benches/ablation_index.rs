//! Ablation A1: the same select-inner-of-join workload across the three index
//! structures (grid, PR-quadtree, STR R-tree). The algorithms are index
//! agnostic (Section 2); the Block-Marking vs conceptual ranking should hold
//! for every structure.

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::select_join::{
    block_marking, block_marking_with_config, conceptual, BlockMarkingConfig, SelectInnerJoinQuery,
};
use twoknn_datagen::{berlinmod, BerlinModConfig};
use twoknn_index::{QuadtreeIndex, StrRTree};

fn main() {
    let n_outer = 4_000;
    let n_inner = 8_000;
    let outer_pts = berlinmod(&BerlinModConfig::with_points(n_outer, 171));
    let inner_pts = berlinmod(&BerlinModConfig::with_points(n_inner, 172));
    let query = SelectInnerJoinQuery::new(8, 8, workloads::focal_point());

    let mut group = BenchGroup::new("ablation_index").sample_size(10);

    let outer_grid = workloads::berlin_relation(n_outer, 171);
    let inner_grid = workloads::berlin_relation(n_inner, 172);
    group.bench("grid/conceptual", || {
        conceptual(&outer_grid, &inner_grid, &query)
    });
    group.bench("grid/block_marking", || {
        block_marking(&outer_grid, &inner_grid, &query)
    });

    let outer_quad = QuadtreeIndex::build(outer_pts.clone(), 128).expect("non-empty");
    let inner_quad = QuadtreeIndex::build(inner_pts.clone(), 128).expect("non-empty");
    group.bench("quadtree/conceptual", || {
        conceptual(&outer_quad, &inner_quad, &query)
    });
    group.bench("quadtree/block_marking", || {
        block_marking(&outer_quad, &inner_quad, &query)
    });

    // STR R-tree leaves do not tile the space, so the contour-based early
    // stop is disabled for correctness (see DESIGN.md); the per-block test
    // still prunes.
    let outer_rtree = StrRTree::build(outer_pts, 128).expect("non-empty");
    let inner_rtree = StrRTree::build(inner_pts, 128).expect("non-empty");
    let cfg = BlockMarkingConfig {
        contour_pruning: false,
    };
    group.bench("str_rtree/conceptual", || {
        conceptual(&outer_rtree, &inner_rtree, &query)
    });
    group.bench("str_rtree/block_marking", || {
        block_marking_with_config(&outer_rtree, &inner_rtree, &query, &cfg)
    });
}
