//! Figure 26: two kNN-selects — conceptual QEP vs the 2-kNN-select algorithm
//! as `k2/k1` grows (k1 = 10 fixed).

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::selects2::{two_knn_select, two_selects_conceptual, TwoSelectsQuery};

fn main() {
    let relation = workloads::berlin_relation(32_000, 161);
    let (f1, f2) = workloads::fig26_focal_points();
    let mut group = BenchGroup::new("fig26_two_selects").sample_size(20);
    for ratio_log2 in [0u32, 4, 7] {
        let k2 = 10usize << ratio_log2;
        let query = TwoSelectsQuery::new(10, f1, k2, f2);
        group.bench(&format!("conceptual/k2_ratio_2^{ratio_log2}"), || {
            two_selects_conceptual(&relation, &query)
        });
        group.bench(&format!("two_knn_select/k2_ratio_2^{ratio_log2}"), || {
            two_knn_select(&relation, &query)
        });
    }
}
