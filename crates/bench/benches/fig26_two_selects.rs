//! Figure 26: two kNN-selects — conceptual QEP vs the 2-kNN-select algorithm
//! as `k2/k1` grows (k1 = 10 fixed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twoknn_bench::workloads;
use twoknn_core::selects2::{two_knn_select, two_selects_conceptual, TwoSelectsQuery};

fn bench(c: &mut Criterion) {
    let relation = workloads::berlin_relation(32_000, 161);
    let (f1, f2) = workloads::fig26_focal_points();
    let mut group = c.benchmark_group("fig26_two_selects");
    for ratio_log2 in [0u32, 4, 7] {
        let k2 = 10usize << ratio_log2;
        let query = TwoSelectsQuery::new(10, f1, k2, f2);
        group.bench_with_input(
            BenchmarkId::new("conceptual", ratio_log2),
            &ratio_log2,
            |b, _| b.iter(|| two_selects_conceptual(&relation, &query)),
        );
        group.bench_with_input(
            BenchmarkId::new("two_knn_select", ratio_log2),
            &ratio_log2,
            |b, _| b.iter(|| two_knn_select(&relation, &query)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
