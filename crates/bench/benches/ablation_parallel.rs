//! Ablation A3: serial vs multi-core execution of the hot paths.
//!
//! Compares [`ExecutionMode::Serial`] against [`ExecutionMode::Parallel`]
//! for Block-Marking (select-inner-of-join) and the unchained two-join
//! Block-Marking on a 100k-point BerlinMOD-like workload, and prints the
//! speedups together with the core count — the parallel paths only pay off
//! on multi-core hardware (build with `--features parallel`; without the
//! feature, parallel mode falls back to serial and the speedup is ~1×).
//!
//! Usage: `cargo bench -p twoknn-bench --bench ablation_parallel --
//! [--points N] [--threads N]`

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::exec::{available_threads, ExecutionMode};
use twoknn_core::joins2::{unchained_block_marking_with_mode, UnchainedJoinQuery};
use twoknn_core::select_join::{block_marking_with_mode, BlockMarkingConfig, SelectInnerJoinQuery};

fn main() {
    let mut points = 100_000usize;
    let mut threads = available_threads();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--points" => {
                i += 1;
                points = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(points);
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(threads);
            }
            // Ignore harness flags cargo bench forwards (e.g. --bench).
            _ => {}
        }
        i += 1;
    }
    let parallel = ExecutionMode::Parallel { threads };
    println!(
        "ablation_parallel: {points} outer points, {threads} worker threads \
         ({} hardware threads, parallel feature {})",
        available_threads(),
        if cfg!(feature = "parallel") {
            "ON"
        } else {
            "OFF — parallel falls back to serial"
        },
    );

    // Block-Marking: select-inner-of-join on a 100k outer relation.
    {
        let outer = workloads::berlin_relation(points, 191);
        let inner = workloads::berlin_relation(32_000, 192);
        let query = SelectInnerJoinQuery::new(8, 8, workloads::focal_point());
        let cfg = BlockMarkingConfig::default();
        let mut group = BenchGroup::new("parallel_block_marking").sample_size(5);
        let serial = group.bench("serial", || {
            block_marking_with_mode(&outer, &inner, &query, &cfg, ExecutionMode::Serial)
        });
        let par = group.bench(&format!("parallel_{threads}_threads"), || {
            block_marking_with_mode(&outer, &inner, &query, &cfg, parallel)
        });
        println!(
            "block-marking speedup: {:.2}x (serial {:.1} ms -> parallel {:.1} ms)",
            serial.median_ms / par.median_ms,
            serial.median_ms,
            par.median_ms
        );
    }

    // Unchained two-join Block-Marking: A clustered, B/C BerlinMOD-like.
    {
        let a = workloads::clustered_relation_sized(4, 4_000, 193);
        let b = workloads::berlin_relation(points / 2, 194);
        let c = workloads::berlin_relation(points, 195);
        let query = UnchainedJoinQuery::new(2, 2);
        let mut group = BenchGroup::new("parallel_unchained_joins").sample_size(5);
        let serial = group.bench("serial", || {
            unchained_block_marking_with_mode(&a, &b, &c, &query, ExecutionMode::Serial)
        });
        let par = group.bench(&format!("parallel_{threads}_threads"), || {
            unchained_block_marking_with_mode(&a, &b, &c, &query, parallel)
        });
        println!(
            "unchained-join speedup: {:.2}x (serial {:.1} ms -> parallel {:.1} ms)",
            serial.median_ms / par.median_ms,
            serial.median_ms,
            par.median_ms
        );
    }
}
