//! Figure 21: Counting vs Block-Marking with a high-density outer relation
//! (Block-Marking is expected to win).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twoknn_bench::workloads;
use twoknn_core::select_join::{block_marking, counting, SelectInnerJoinQuery};

fn bench(c: &mut Criterion) {
    let inner = workloads::berlin_relation(8_000, 112);
    let query = SelectInnerJoinQuery::new(8, 8, workloads::focal_point());
    let mut group = c.benchmark_group("fig21_high_density_outer");
    for n in [16_000usize, 32_000] {
        let outer = workloads::berlin_relation(n, 310 + n as u64);
        group.bench_with_input(BenchmarkId::new("counting", n), &n, |b, _| {
            b.iter(|| counting(&outer, &inner, &query))
        });
        group.bench_with_input(BenchmarkId::new("block_marking", n), &n, |b, _| {
            b.iter(|| block_marking(&outer, &inner, &query))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
