//! Figure 21: Counting vs Block-Marking with a high-density outer relation
//! (Block-Marking is expected to win).

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::select_join::{block_marking, counting, SelectInnerJoinQuery};

fn main() {
    let inner = workloads::berlin_relation(8_000, 112);
    let query = SelectInnerJoinQuery::new(8, 8, workloads::focal_point());
    let mut group = BenchGroup::new("fig21_high_density_outer").sample_size(10);
    for n in [16_000usize, 32_000] {
        let outer = workloads::berlin_relation(n, 310 + n as u64);
        group.bench(&format!("counting/{n}"), || {
            counting(&outer, &inner, &query)
        });
        group.bench(&format!("block_marking/{n}"), || {
            block_marking(&outer, &inner, &query)
        });
    }
}
