//! Ablation A6: spatial sharding of relations.
//!
//! Two measurements over a BerlinMOD-like moving-objects relation, each run
//! under the single-shard layout (the ablation baseline — exactly the old
//! unsharded store) and a 4×4 [`ShardConfig`]:
//!
//! 1. **Scatter-gather pruning** — a clustered kNN-select batch against the
//!    relation after a hot-region insert burst. The sharded layout visits
//!    shards in MINDIST order against the running τ², so far shards are
//!    skipped wholesale (`shards_pruned`); the per-kNN point-scan work must
//!    never exceed the single-shard layout's on this pruning-sensitive
//!    workload. Latency is printed; the `--smoke` assertions pin the
//!    machine-independent work counters.
//! 2. **Burst confinement** — a write burst confined to one corner of the
//!    extent, sized to cross the compaction threshold, while a query batch
//!    runs against the opposite corner. Sharded, only the corner shard
//!    rebuilds (gather work ≈ one shard); single-shard, every burst rebuilds
//!    the whole base. The far-corner batch latency is reported against the
//!    quiescent baseline for both layouts; `--smoke` asserts the sharded
//!    rebuild work is strictly below the single-shard rebuild work.
//!
//! Usage: `cargo bench -p twoknn-bench --features parallel --bench
//! ablation_shard -- [--points N] [--queries N] [--threads N] [--smoke]`

use std::sync::Arc;

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::exec::available_threads;
use twoknn_core::plan::{Database, QuerySpec};
use twoknn_core::selects2::TwoSelectsQuery;
use twoknn_core::store::{ShardConfig, StoreConfig, WriteOp};
use twoknn_core::WorkerPool;
use twoknn_geometry::Point;
use twoknn_index::Metrics;

/// The two storage layouts under comparison.
fn layouts() -> [(&'static str, ShardConfig); 2] {
    [
        ("single_shard", ShardConfig::default()),
        ("sharded_4x4", ShardConfig::per_axis(4)),
    ]
}

/// A burst of `count` fresh inserts clustered within ~2% of the extent
/// around the query batch's focal region.
fn clustered_insert_burst(count: u64) -> Vec<WriteOp> {
    let extent = workloads::extent();
    let focal = workloads::focal_point();
    let radius = extent.width() * 0.02;
    (0..count)
        .map(|i| {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15);
            WriteOp::Upsert(Point::new(
                1_000_000 + i,
                focal.x - radius + (h % 4_000) as f64 * (radius / 2_000.0),
                focal.y - radius + ((h / 4_000) % 4_000) as f64 * (radius / 2_000.0),
            ))
        })
        .collect()
}

/// A burst confined to the low corner of the extent — well inside one cell
/// of the 4×4 shard grid. The first round inserts fresh ids; later rounds
/// move the same ids within the corner, so the relation size stays put and
/// every round crosses the compaction threshold of exactly that shard.
fn corner_burst(count: u64, round: u64) -> Vec<WriteOp> {
    let extent = workloads::extent();
    let (cx, cy) = (
        extent.min_x + extent.width() * 0.125,
        extent.min_y + extent.height() * 0.125,
    );
    let radius = extent.width() * 0.02;
    (0..count)
        .map(|i| {
            let h = (i ^ round.wrapping_mul(0x85EBCA6B)).wrapping_mul(0x9E3779B97F4A7C15);
            WriteOp::Upsert(Point::new(
                2_000_000 + i,
                cx - radius + (h % 4_000) as f64 * (radius / 2_000.0),
                cy - radius + ((h / 4_000) % 4_000) as f64 * (radius / 2_000.0),
            ))
        })
        .collect()
}

/// A kNN-select batch clustered around `center` — every query resolves from
/// the shards near it, leaving the rest of the grid MINDIST-prunable.
fn query_batch(queries: usize, center: Point) -> Vec<QuerySpec> {
    (0..queries)
        .map(|q| {
            let offset = (q % 97) as f64 * 23.0;
            QuerySpec::TwoSelects {
                relation: "Objects".into(),
                query: TwoSelectsQuery::new(
                    4,
                    Point::anonymous(center.x + offset, center.y - offset),
                    16,
                    Point::anonymous(center.x - offset, center.y + offset),
                ),
            }
        })
        .collect()
}

/// Folds a batch's per-query work counters into one record.
fn batch_work(db: &Database, specs: &[QuerySpec]) -> Metrics {
    db.execute_batch(specs)
        .into_iter()
        .map(|r| r.expect("batch query").metrics())
        .fold(Metrics::default(), |acc, m| acc + m)
}

fn main() {
    let mut points = 120_000usize;
    let mut queries = 256usize;
    let mut threads = available_threads();
    let mut smoke = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--points" => {
                i += 1;
                points = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(points);
            }
            "--queries" => {
                i += 1;
                queries = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(queries);
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(threads);
            }
            "--smoke" => {
                points = 20_000;
                queries = 64;
                smoke = true;
            }
            _ => {}
        }
        i += 1;
    }
    let burst = 2_000u64.min(points as u64 / 4);
    println!(
        "ablation_shard: {points} points, {queries} batch queries, {burst}-op bursts, \
         {threads}-thread pool (parallel feature {})",
        if cfg!(feature = "parallel") {
            "ON"
        } else {
            "OFF — batches run serially"
        },
    );

    // 1. Scatter-gather pruning on a clustered kNN workload.
    {
        let specs = query_batch(queries, workloads::focal_point());
        let mut per_layout: Vec<(&str, Metrics, f64)> = Vec::new();
        let mut group = BenchGroup::new("shard_scatter_gather_pruning").sample_size(5);
        for (label, sharding) in layouts() {
            let pool = WorkerPool::new(threads);
            let mut db = Database::with_pool_and_store_config(
                pool,
                StoreConfig {
                    compaction_threshold: usize::MAX, // the burst stays deltaed
                    sharding,
                    ..StoreConfig::default()
                },
            );
            db.register("Objects", workloads::berlin_relation(points, 421));
            db.ingest("Objects", &clustered_insert_burst(burst))
                .unwrap();
            let stat = group.bench(label, || db.execute_batch(&specs));
            let work = batch_work(&db, &specs);
            let knn = work.neighborhoods_computed.max(1);
            println!(
                "{label}: {:.0} points / {:.1} blocks scanned per kNN, \
                 shards {} scanned / {} pruned, median {:.1} ms",
                work.points_scanned as f64 / knn as f64,
                work.blocks_scanned as f64 / knn as f64,
                work.shards_scanned,
                work.shards_pruned,
                stat.median_ms,
            );
            per_layout.push((label, work, stat.median_ms));
        }
        let (single, sharded) = (&per_layout[0].1, &per_layout[1].1);
        println!(
            "scatter-gather: {:.2}x the single-shard point scans, latency {:.2}x",
            sharded.points_scanned as f64 / single.points_scanned.max(1) as f64,
            per_layout[1].2 / per_layout[0].2,
        );
        if smoke {
            assert_eq!(single.shards_pruned, 0, "single shard has nothing to prune");
            assert!(
                sharded.shards_pruned > 0,
                "clustered kNN against a 4×4 grid must prune far shards"
            );
            assert!(
                sharded.points_scanned <= single.points_scanned,
                "sharded layout must not regress point-scan work on a \
                 pruning-sensitive workload: {} > {}",
                sharded.points_scanned,
                single.points_scanned
            );
        }
    }

    // 2. Burst confinement: corner burst rebuilds vs far-corner queries.
    {
        let extent = workloads::extent();
        let far = Point::anonymous(
            extent.min_x + extent.width() * 0.875,
            extent.min_y + extent.height() * 0.875,
        );
        let far_specs = query_batch(queries, far);
        let mut rebuild_work: Vec<(&str, u64, u64, f64, f64)> = Vec::new();
        for (label, sharding) in layouts() {
            let pool = WorkerPool::new(threads);
            let db = {
                let mut db = Database::with_pool_and_store_config(
                    Arc::clone(&pool),
                    StoreConfig {
                        compaction_threshold: burst as usize, // every burst rebuilds
                        sharding,
                        ..StoreConfig::default()
                    },
                );
                db.register("Objects", workloads::berlin_relation(points, 422));
                db
            };
            let quiesce = |db: &Database| {
                while db.relation("Objects").unwrap().delta_len() > 0 {
                    db.compact_now("Objects").unwrap();
                    std::thread::yield_now();
                }
            };
            let mut group =
                BenchGroup::new(&format!("shard_burst_confinement_{label}")).sample_size(5);
            // Settle the first (insert) round before measuring, so every
            // sample is a move burst of constant size.
            let mut round = 0u64;
            db.ingest("Objects", &corner_burst(burst, round)).unwrap();
            quiesce(&db);
            let quiet = group.bench("far_batch_quiescent", || db.execute_batch(&far_specs));
            let before = db.store_metrics();
            let during = group.bench("far_batch_during_burst_rebuild", || {
                round += 1;
                db.ingest("Objects", &corner_burst(burst, round)).unwrap();
                let out = db.execute_batch(&far_specs);
                quiesce(&db);
                out
            });
            let after = db.store_metrics();
            let gathered = after.points_scanned - before.points_scanned;
            let rebuilds = after.shards_compacted - before.shards_compacted;
            println!(
                "{label}: far batch during rebuild {:.1} ms vs quiescent {:.1} ms \
                 ({:.2}x), {rebuilds} shard rebuild(s) gathering {gathered} points",
                during.median_ms,
                quiet.median_ms,
                during.median_ms / quiet.median_ms,
            );
            rebuild_work.push((label, gathered, rebuilds, during.median_ms, quiet.median_ms));
        }
        let (single, sharded) = (&rebuild_work[0], &rebuild_work[1]);
        println!(
            "confinement: sharded rebuilds gathered {} points vs single-shard {} \
             ({:.1}% of the full-relation work)",
            sharded.1,
            single.1,
            100.0 * sharded.1 as f64 / single.1.max(1) as f64,
        );
        if smoke {
            assert!(sharded.2 >= 1, "the corner burst must rebuild its shard");
            assert!(
                sharded.1 < single.1,
                "per-shard rebuilds must gather strictly less than full-relation \
                 rebuilds: {} >= {}",
                sharded.1,
                single.1
            );
        }
    }
}
