//! Ablation A9: observability overhead.
//!
//! The observability layer makes two promises the store's hot paths rely
//! on: with tracing **off**, a query pays only a timestamp pair and a few
//! relaxed atomics (the always-on latency histograms), and with tracing
//! **on**, every executed query yields a well-formed per-operator trace
//! tree whose counters reconcile.
//!
//! This bench runs the same parsed filtered-kNN batch untraced and traced
//! and prints both medians. The `--smoke` assertions pin the promises
//! machine-independently where possible:
//!
//! * the *untraced* instrumentation cost (two `Instant::now` calls, one
//!   histogram record, one trace-gate load per query — exactly what the
//!   executor adds) must stay under 3% of the untraced batch median;
//! * a traced batch retains one labelled trace per query, with monotone
//!   sequence numbers and non-degenerate operator trees;
//! * the query-exec histogram reconciles: bucket counts sum to the sample
//!   count and `p50 <= p90 <= p99 <= max`.
//!
//! Usage: `cargo bench -p twoknn-bench --bench ablation_trace --
//! [--points N] [--queries N] [--smoke]`

use std::time::Instant;

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::plan::{Database, QuerySpec};
use twoknn_core::store::StoreConfig;
use twoknn_core::{HistogramKind, Observability, TraceConfig};

/// A filtered kNN-select batch parsed from query text: the 8 nearest
/// points inside a rect covering half of each axis, focal points jittered
/// around the cluster center.
fn parsed_batch(db: &Database, queries: usize) -> Vec<QuerySpec> {
    let extent = workloads::extent();
    let focal = workloads::focal_point();
    let (hw, hh) = (extent.width() * 0.25, extent.height() * 0.25);
    let (x1, y1) = (focal.x - hw, focal.y - hh);
    let (x2, y2) = (focal.x + hw, focal.y + hh);
    (0..queries)
        .map(|q| {
            let offset = (q % 61) as f64 * 11.0;
            let text = format!(
                "FIND (Objects WHERE INSIDE(RECT({x1}, {y1}, {x2}, {y2}))) \
                 WHERE KNN(8, {}, {})",
                focal.x + offset,
                focal.y - offset,
            );
            db.parse_query(&text).expect("bench query parses")
        })
        .collect()
}

/// The untraced per-query instrumentation, measured in isolation: exactly
/// what [`Database::execute_batch`] adds around each query when tracing is
/// off. Returns the *fastest* of a few sweeps (seconds) to denoise.
fn instrumentation_cost(queries: usize) -> f64 {
    let obs = Observability::default();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let sweep = Instant::now();
        for _ in 0..queries {
            let start = Instant::now();
            std::hint::black_box(obs.trace_enabled());
            obs.record(HistogramKind::QueryExec, start.elapsed());
        }
        best = best.min(sweep.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut points = 120_000usize;
    let mut queries = 256usize;
    let mut smoke = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--points" => {
                i += 1;
                points = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(points);
            }
            "--queries" => {
                i += 1;
                queries = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(queries);
            }
            "--smoke" => {
                points = 20_000;
                queries = 128;
                smoke = true;
            }
            _ => {}
        }
        i += 1;
    }
    println!("ablation_trace: {points} points, one {queries}-query parsed batch");

    // Retention must cover the whole batch (the default ring keeps 64).
    let mut db = Database::with_store_config(StoreConfig {
        trace: TraceConfig {
            enabled: false,
            capacity: queries,
        },
        ..StoreConfig::default()
    });
    db.register("Objects", workloads::berlin_relation(points, 423));
    let specs = parsed_batch(&db, queries);

    let mut group = BenchGroup::new("trace_overhead").sample_size(5);
    db.set_tracing(false);
    let untraced = group.bench("tracing_off", || {
        for result in db.execute_batch(&specs) {
            result.expect("batch query");
        }
    });
    db.set_tracing(true);
    let traced = group.bench("tracing_on", || {
        for result in db.execute_batch(&specs) {
            result.expect("batch query");
        }
        // Draining is part of using traces; keep the retention ring flat.
        std::hint::black_box(db.drain_traces());
    });
    db.set_tracing(false);

    let instr_s = instrumentation_cost(queries);
    let overhead_pct = instr_s / (untraced.median_ms / 1e3) * 100.0;
    println!(
        "tracing off: {:.2} ms median; on: {:.2} ms ({:.2}x); untraced \
         instrumentation: {:.1} µs per batch = {overhead_pct:.3}% of the batch",
        untraced.median_ms,
        traced.median_ms,
        traced.median_ms / untraced.median_ms,
        instr_s * 1e6,
    );

    // One explicitly traced batch for the well-formedness checks.
    db.set_tracing(true);
    db.drain_traces();
    for result in db.execute_batch(&specs) {
        result.expect("traced batch query");
    }
    let traces = db.drain_traces();
    db.set_tracing(false);
    let query_exec = db.store().obs().histogram(HistogramKind::QueryExec);
    let (p50, p90, p99) = (
        query_exec.percentile(0.50),
        query_exec.percentile(0.90),
        query_exec.percentile(0.99),
    );
    println!(
        "traced batch: {} trace(s) retained; query_exec histogram: {} samples, \
         p50={p50}ns p90={p90}ns p99={p99}ns max={}ns",
        traces.len(),
        query_exec.count,
        query_exec.max_nanos,
    );

    if smoke {
        assert!(
            overhead_pct < 3.0,
            "untraced instrumentation must stay under 3% of the batch: \
             {overhead_pct:.3}%"
        );
        assert_eq!(
            traces.len(),
            queries,
            "a traced batch retains one trace per query"
        );
        let mut seqs: Vec<u64> = traces.iter().map(|t| t.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(
            seqs.len(),
            traces.len(),
            "trace sequence numbers must be unique (parallel batch members \
             may retain out of order)"
        );
        for trace in &traces {
            assert!(
                trace.label.starts_with("batch["),
                "batch traces carry batch labels, got `{}`",
                trace.label
            );
            assert!(
                trace.root.num_ops() >= 1,
                "a trace has at least one operator"
            );
            assert!(
                trace.root.inclusive.neighborhoods_computed > 0,
                "every bench query computes a neighborhood"
            );
        }
        assert_eq!(
            query_exec.buckets.iter().sum::<u64>(),
            query_exec.count,
            "histogram bucket counts must sum to the sample count"
        );
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= query_exec.max_nanos,
            "histogram percentiles must be monotone: \
             p50={p50} p90={p90} p99={p99} max={}",
            query_exec.max_nanos
        );
    }
    println!("ablation_trace: done");
}
