//! Ablation A4: spawn-per-phase scoped threads vs the persistent worker pool.
//!
//! Two measurements:
//!
//! 1. **Multi-phase plan** — the chained join-intersection QEP evaluates two
//!    independent kNN-joins (two partitioned phases) per call.
//!    `ExecutionMode::Parallel` spawns a fresh scoped-thread team for every
//!    phase of every call; `ExecutionMode::Pooled` reuses the persistent
//!    pool, paying thread creation once per process.
//! 2. **Query batch** — a smoke batch of small queries through
//!    `Database::execute_batch`. The legacy schedule (reconstructed inline)
//!    spawns a scoped team per batch and runs every query serially inside
//!    it; the pooled schedule runs batch tasks and their nested operator
//!    tasks through one shared queue.
//!
//! Results are identical by construction (the equivalence suite enforces
//! it); this bench reports the wall-clock ratio. Build with `--features
//! parallel` — without it both modes degrade to serial and the ratio is ~1×.
//!
//! Usage: `cargo bench -p twoknn-bench --features parallel --bench
//! ablation_pool -- [--points N] [--queries N] [--threads N]`

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::exec::{available_threads, run_partitioned, ExecutionMode};
use twoknn_core::joins2::{chained_join_intersection_with_mode, ChainedJoinQuery};
use twoknn_core::plan::{Database, QuerySpec};
use twoknn_core::selects2::TwoSelectsQuery;
use twoknn_index::Metrics;

fn main() {
    let mut points = 60_000usize;
    let mut queries = 1_000usize;
    let mut threads = available_threads();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--points" => {
                i += 1;
                points = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(points);
            }
            "--queries" => {
                i += 1;
                queries = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(queries);
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(threads);
            }
            // Ignore harness flags cargo bench forwards (e.g. --bench).
            _ => {}
        }
        i += 1;
    }
    println!(
        "ablation_pool: {points} points, {queries} batch queries, {threads} worker threads \
         (parallel feature {})",
        if cfg!(feature = "parallel") {
            "ON"
        } else {
            "OFF — both modes degrade to serial"
        },
    );

    // 1. Multi-phase chained plan: two partitioned join phases per call.
    {
        let a = workloads::berlin_relation(points / 4, 211);
        let b = workloads::berlin_relation(points / 2, 212);
        let c = workloads::berlin_relation(points, 213);
        let query = ChainedJoinQuery::new(2, 2);
        let mut group = BenchGroup::new("pool_chained_multiphase").sample_size(5);
        let spawned = group.bench(&format!("spawn_per_phase_{threads}_threads"), || {
            chained_join_intersection_with_mode(
                &a,
                &b,
                &c,
                &query,
                ExecutionMode::Parallel { threads },
            )
        });
        let pooled = group.bench("pooled", || {
            chained_join_intersection_with_mode(&a, &b, &c, &query, ExecutionMode::Pooled)
        });
        println!(
            "chained multi-phase: pooled is {:.2}x vs spawn-per-phase \
             (spawn {:.1} ms -> pooled {:.1} ms)",
            spawned.median_ms / pooled.median_ms,
            spawned.median_ms,
            pooled.median_ms
        );
    }

    // 2. Batch of small queries: legacy spawn-per-batch + serial queries vs
    //    the pooled nested schedule.
    {
        let mut db = Database::new();
        db.register("B", workloads::berlin_relation(points / 2, 214));
        let focal = workloads::focal_point();
        let specs: Vec<QuerySpec> = (0..queries)
            .map(|q| {
                let offset = (q % 97) as f64 * 37.0;
                QuerySpec::TwoSelects {
                    relation: "B".into(),
                    query: TwoSelectsQuery::new(
                        4,
                        twoknn_geometry::Point::anonymous(focal.x + offset, focal.y - offset),
                        16,
                        twoknn_geometry::Point::anonymous(focal.x - offset, focal.y + offset),
                    ),
                }
            })
            .collect();
        let mut group = BenchGroup::new("pool_execute_batch").sample_size(5);
        let legacy = group.bench(&format!("spawn_batch_{threads}_threads"), || {
            // The pre-pool schedule: one scoped team per batch call, every
            // query serial inside it.
            let mut scratch = Metrics::default();
            run_partitioned(
                &specs,
                ExecutionMode::Parallel { threads },
                &mut scratch,
                |spec, out, _| {
                    out.push(
                        db.compile_planned(spec)
                            .map(|plan| plan.execute(ExecutionMode::Serial)),
                    );
                },
            )
        });
        let pooled = group.bench("pooled_execute_batch", || db.execute_batch(&specs));
        println!(
            "{queries}-query batch: pooled execute_batch is {:.2}x vs spawn-per-batch \
             (spawn {:.1} ms -> pooled {:.1} ms)",
            legacy.median_ms / pooled.median_ms,
            legacy.median_ms,
            pooled.median_ms
        );
    }
}
