//! Figure 20: Counting vs Block-Marking with a low-density outer relation
//! (Counting is expected to win).

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::select_join::{block_marking, counting, SelectInnerJoinQuery};

fn main() {
    let inner = workloads::berlin_relation(8_000, 111);
    let query = SelectInnerJoinQuery::new(8, 8, workloads::focal_point());
    let mut group = BenchGroup::new("fig20_low_density_outer").sample_size(10);
    for n in [500usize, 2_000] {
        let outer = workloads::berlin_relation(n, 300 + n as u64);
        group.bench(&format!("counting/{n}"), || {
            counting(&outer, &inner, &query)
        });
        group.bench(&format!("block_marking/{n}"), || {
            block_marking(&outer, &inner, &query)
        });
    }
}
