//! Figure 24: chained kNN-joins — the effect of caching the inner join's
//! neighborhoods (QEP3 vs QEP3 + cache).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twoknn_bench::workloads;
use twoknn_core::joins2::{chained_nested, chained_nested_cached, ChainedJoinQuery};

fn bench(c: &mut Criterion) {
    let b = workloads::berlin_relation(4_000, 141);
    let c_rel = workloads::berlin_relation(4_000, 142);
    let query = ChainedJoinQuery::new(2, 2);
    let mut group = c.benchmark_group("fig24_chained_cache");
    for n in [2_000usize, 8_000] {
        let a = workloads::berlin_relation(n, 700 + n as u64);
        group.bench_with_input(BenchmarkId::new("nested_join", n), &n, |bch, _| {
            bch.iter(|| chained_nested(&a, &b, &c_rel, &query))
        });
        group.bench_with_input(BenchmarkId::new("nested_join_cached", n), &n, |bch, _| {
            bch.iter(|| chained_nested_cached(&a, &b, &c_rel, &query))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
