//! Figure 24: chained kNN-joins — the effect of caching the inner join's
//! neighborhoods (QEP3 vs QEP3 + cache).

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::joins2::{chained_nested, chained_nested_cached, ChainedJoinQuery};

fn main() {
    let b = workloads::berlin_relation(4_000, 141);
    let c_rel = workloads::berlin_relation(4_000, 142);
    let query = ChainedJoinQuery::new(2, 2);
    let mut group = BenchGroup::new("fig24_chained_cache").sample_size(10);
    for n in [2_000usize, 8_000] {
        let a = workloads::berlin_relation(n, 700 + n as u64);
        group.bench(&format!("nested_join/{n}"), || {
            chained_nested(&a, &b, &c_rel, &query)
        });
        group.bench(&format!("nested_join_cached/{n}"), || {
            chained_nested_cached(&a, &b, &c_rel, &query)
        });
    }
}
