//! Figure 19: kNN-select on the inner relation of a kNN-join.
//! Conceptual QEP vs Block-Marking, two outer-relation sizes.

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::select_join::{block_marking, conceptual, SelectInnerJoinQuery};

fn main() {
    let inner = workloads::berlin_relation(8_000, 101);
    let query = SelectInnerJoinQuery::new(8, 8, workloads::focal_point());
    let mut group = BenchGroup::new("fig19_select_inner_of_join").sample_size(10);
    for n in [2_000usize, 8_000] {
        let outer = workloads::berlin_relation(n, 200 + n as u64);
        group.bench(&format!("conceptual/{n}"), || {
            conceptual(&outer, &inner, &query)
        });
        group.bench(&format!("block_marking/{n}"), || {
            block_marking(&outer, &inner, &query)
        });
    }
}
