//! Figure 19: kNN-select on the inner relation of a kNN-join.
//! Conceptual QEP vs Block-Marking, two outer-relation sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twoknn_bench::workloads;
use twoknn_core::select_join::{block_marking, conceptual, SelectInnerJoinQuery};

fn bench(c: &mut Criterion) {
    let inner = workloads::berlin_relation(8_000, 101);
    let query = SelectInnerJoinQuery::new(8, 8, workloads::focal_point());
    let mut group = c.benchmark_group("fig19_select_inner_of_join");
    for n in [2_000usize, 8_000] {
        let outer = workloads::berlin_relation(n, 200 + n as u64);
        group.bench_with_input(BenchmarkId::new("conceptual", n), &n, |b, _| {
            b.iter(|| conceptual(&outer, &inner, &query))
        });
        group.bench_with_input(BenchmarkId::new("block_marking", n), &n, |b, _| {
            b.iter(|| block_marking(&outer, &inner, &query))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
