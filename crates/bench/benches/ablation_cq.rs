//! Ablation A6: incremental continuous-query maintenance vs naive
//! re-run-all-subscriptions.
//!
//! A moving-objects relation carries a sweep of standing 2-kNN-select
//! subscriptions whose focal points are spread across the extent. Each
//! sample publishes one **localized** write batch (fresh inserts clustered
//! within ~2% of the extent) and waits for maintenance to finish
//! ([`WorkerPool::wait_idle`]). Two maintainer policies are compared at
//! each subscription count:
//!
//! * `guarded` — the guard registry prunes: only subscriptions whose focal
//!   circles the burst intersects re-evaluate, the rest are counted as
//!   `cq_skips`;
//! * `reeval_all` — the naive baseline: every subscription re-runs its
//!   query on every publish.
//!
//! The printed ratio is the headline number: with localized writes the
//! guarded maintainer's per-batch latency must scale with the handful of
//! affected subscriptions, not with the registered population.
//!
//! Usage: `cargo bench -p twoknn-bench --features parallel --bench
//! ablation_cq -- [--points N] [--threads N] [--smoke]`

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::exec::available_threads;
use twoknn_core::plan::{Database, QuerySpec};
use twoknn_core::selects2::TwoSelectsQuery;
use twoknn_core::store::{StoreConfig, WriteOp};
use twoknn_core::{MaintenancePolicy, WorkerPool};
use twoknn_geometry::Point;

/// One localized burst: `count` fresh inserts packed into ~2% of the
/// extent around the workload's focal region, ids fresh per round.
fn localized_burst(count: u64, round: u64) -> Vec<WriteOp> {
    let extent = workloads::extent();
    let focal = workloads::focal_point();
    let radius = extent.width() * 0.02;
    (0..count)
        .map(|i| {
            let h = (i + round * 7_919).wrapping_mul(0x9E3779B97F4A7C15);
            WriteOp::Upsert(Point::new(
                10_000_000 + round * 100_000 + i,
                focal.x - radius + (h % 4_000) as f64 * (radius / 2_000.0),
                focal.y - radius + ((h / 4_000) % 4_000) as f64 * (radius / 2_000.0),
            ))
        })
        .collect()
}

/// `count` standing 2-kNN-select queries with focal points spread over the
/// whole extent on a deterministic low-discrepancy-ish lattice.
fn subscriptions(count: usize) -> Vec<QuerySpec> {
    let extent = workloads::extent();
    (0..count)
        .map(|s| {
            let fx = extent.min_x + ((s * 37 + 11) % 101) as f64 / 101.0 * extent.width();
            let fy = extent.min_y + ((s * 61 + 29) % 103) as f64 / 103.0 * extent.height();
            QuerySpec::TwoSelects {
                relation: "Objects".into(),
                query: TwoSelectsQuery::new(
                    4,
                    Point::anonymous(fx, fy),
                    8,
                    Point::anonymous(fx + extent.width() * 0.004, fy + extent.height() * 0.004),
                ),
            }
        })
        .collect()
}

fn main() {
    let mut points = 120_000usize;
    let mut threads = available_threads();
    let mut smoke = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--points" => {
                i += 1;
                points = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(points);
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(threads);
            }
            // CI-sized run: small relation and subscription sweep, both
            // policies still exercised.
            "--smoke" => {
                points = 20_000;
                smoke = true;
            }
            // Ignore harness flags cargo bench forwards (e.g. --bench).
            _ => {}
        }
        i += 1;
    }
    let burst = 256u64;
    let sub_counts: &[usize] = if smoke { &[50, 200] } else { &[100, 1_000] };
    println!(
        "ablation_cq: {points} points, {burst}-op localized bursts, subscriptions sweep \
         {sub_counts:?}, {threads}-thread pool (parallel feature {})",
        if cfg!(feature = "parallel") {
            "ON"
        } else {
            "OFF — maintenance jobs run inline"
        },
    );

    for &num_subs in sub_counts {
        let mut group = BenchGroup::new(&format!("cq_maintenance_{num_subs}_subs")).sample_size(5);
        let mut medians = [0.0f64; 2];
        for (slot, (label, policy)) in [
            ("guarded", MaintenancePolicy::Guarded),
            ("reeval_all", MaintenancePolicy::ReevalAll),
        ]
        .into_iter()
        .enumerate()
        {
            let pool = WorkerPool::new(threads);
            // Compaction disabled: the measurement isolates maintenance
            // cost (probe + re-evaluations), not index rebuilds.
            let mut db = Database::with_pool_and_store_config(
                pool,
                StoreConfig {
                    compaction_threshold: usize::MAX,
                    ..StoreConfig::default()
                },
            );
            db.register("Objects", workloads::berlin_relation(points, 401));
            let db = db;
            db.set_cq_policy(policy);
            for spec in subscriptions(num_subs) {
                db.subscribe(&spec, None).expect("subscribe");
            }
            db.pool().wait_idle();
            let before = db.store_metrics();
            let mut round = 0u64;
            let stat = group.bench(label, || {
                round += 1;
                db.ingest("Objects", &localized_burst(burst, round))
                    .expect("ingest");
                db.pool().wait_idle();
            });
            medians[slot] = stat.median_ms;
            let m = db.store_metrics();
            let batches = round.max(1);
            println!(
                "subs {num_subs} {label}: {:.2} ms/batch median, {:.1} reevals + {:.1} skips \
                 per batch",
                stat.median_ms,
                (m.cq_reevals - before.cq_reevals) as f64 / batches as f64,
                (m.cq_skips - before.cq_skips) as f64 / batches as f64,
            );
        }
        println!(
            "subs {num_subs}: naive re-run-all is {:.1}x the guarded maintainer's batch latency",
            medians[1] / medians[0].max(1e-9),
        );
    }
}
