//! Figure 25: chained kNN-joins with a clustered `B` relation —
//! Join-Intersection QEP vs the cached Nested-Join QEP as the number of
//! clusters in `B` grows.

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::joins2::{chained_join_intersection, chained_nested_cached, ChainedJoinQuery};

fn main() {
    let a = workloads::berlin_relation(2_000, 151);
    let c_rel = workloads::berlin_relation(4_000, 152);
    let query = ChainedJoinQuery::new(2, 2);
    let mut group = BenchGroup::new("fig25_chained_vs_intersection").sample_size(10);
    for n_clusters in [2usize, 6] {
        let b = workloads::clustered_relation_sized(n_clusters, 1_000, 800 + n_clusters as u64);
        group.bench(&format!("join_intersection/{n_clusters}"), || {
            chained_join_intersection(&a, &b, &c_rel, &query)
        });
        group.bench(&format!("nested_join_cached/{n_clusters}"), || {
            chained_nested_cached(&a, &b, &c_rel, &query)
        });
    }
}
