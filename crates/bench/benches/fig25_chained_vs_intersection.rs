//! Figure 25: chained kNN-joins with a clustered `B` relation —
//! Join-Intersection QEP vs the cached Nested-Join QEP as the number of
//! clusters in `B` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twoknn_bench::workloads;
use twoknn_core::joins2::{chained_join_intersection, chained_nested_cached, ChainedJoinQuery};

fn bench(c: &mut Criterion) {
    let a = workloads::berlin_relation(2_000, 151);
    let c_rel = workloads::berlin_relation(4_000, 152);
    let query = ChainedJoinQuery::new(2, 2);
    let mut group = c.benchmark_group("fig25_chained_vs_intersection");
    for n_clusters in [2usize, 6] {
        let b = workloads::clustered_relation_sized(n_clusters, 1_000, 800 + n_clusters as u64);
        group.bench_with_input(
            BenchmarkId::new("join_intersection", n_clusters),
            &n_clusters,
            |bch, _| bch.iter(|| chained_join_intersection(&a, &b, &c_rel, &query)),
        );
        group.bench_with_input(
            BenchmarkId::new("nested_join_cached", n_clusters),
            &n_clusters,
            |bch, _| bch.iter(|| chained_nested_cached(&a, &b, &c_rel, &query)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
