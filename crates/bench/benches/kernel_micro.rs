//! Per-kernel micro-benchmarks pinning the throughput of the SoA hot loops,
//! each against its retained scalar/branchy ablation baseline:
//!
//! * **scan** — batched squared-distance pass over SoA columns
//!   ([`twoknn_geometry::euclidean_sq_batch`]) vs the per-point AoS loop
//!   ([`twoknn_geometry::baseline::euclidean_sq_scalar`]);
//! * **mindist** — branchless clamp-based [`twoknn_geometry::mindist_sq`]
//!   vs the branchy [`twoknn_geometry::baseline::mindist_sq_branchy`];
//! * **heap_update** — the "scan block, update kth-distance threshold"
//!   kernel ([`twoknn_index::KthHeap::scan_block`]) vs the gather-and-sort
//!   per-block baseline the batched path replaced;
//! * **get_knn** — the end-to-end select hot path:
//!   [`twoknn_index::get_knn_in`] (batched, τ-pruned, shared scratch) vs
//!   [`twoknn_index::get_knn_scalar`] (pre-SoA gather).
//!
//! Besides the usual min/median/max table, every kernel prints its
//! throughput in points/µs and the batched-over-scalar speedup.
//!
//! Usage: `cargo bench -p twoknn-bench --bench kernel_micro --
//! [--points N] [--smoke]`
//!
//! `--smoke` shrinks the workload for CI and **asserts** that no batched
//! kernel regresses behind its scalar baseline (with 25% slack for noisy
//! runners) — a cargo-bench-free perf smoke test; the process exits
//! non-zero on regression.

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_geometry::{baseline, euclidean_sq_batch, mindist_sq, Point, Rect};
use twoknn_index::{
    get_knn_in, get_knn_scalar, BlockPoints, KthHeap, Metrics, PointBlock, ScratchSpace,
    SpatialIndex,
};

/// Deterministic scatter over the workload extent.
fn scatter(n: usize, seed: u64) -> Vec<Point> {
    let extent = workloads::extent();
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed;
            Point::new(
                i as u64,
                extent.min_x + (h % 100_000) as f64 / 100_000.0 * extent.width(),
                extent.min_y + ((h >> 17) % 100_000) as f64 / 100_000.0 * extent.height(),
            )
        })
        .collect()
}

/// Query points spread over the extent (and a ring outside it, so MINDIST
/// sees both contained and distant configurations).
fn query_points(n: usize) -> Vec<Point> {
    let extent = workloads::extent();
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let off = if i % 3 == 0 { 1.2 } else { t };
            Point::anonymous(
                extent.min_x + off * extent.width(),
                extent.min_y + (1.0 - t) * extent.height(),
            )
        })
        .collect()
}

struct Kernel {
    label: &'static str,
    batched_median_ms: f64,
    scalar_median_ms: f64,
    /// Points processed per timed sample (for the throughput column).
    points_per_sample: f64,
}

impl Kernel {
    fn speedup(&self) -> f64 {
        self.scalar_median_ms / self.batched_median_ms
    }

    fn report(&self) {
        println!(
            "  {:<12} {:>9.1} points/us batched, {:>9.1} points/us scalar, speedup {:.2}x",
            self.label,
            self.points_per_sample / (self.batched_median_ms * 1e3),
            self.points_per_sample / (self.scalar_median_ms * 1e3),
            self.speedup(),
        );
    }
}

fn main() {
    let mut n_points = 200_000usize;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--points" => {
                n_points = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--points takes a number");
            }
            "--smoke" => smoke = true,
            // `cargo bench` appends `--bench` to harness-less targets.
            "--bench" => {}
            other => {
                eprintln!("kernel_micro: unknown argument `{other}`");
                eprintln!("usage: kernel_micro [--points N] [--smoke]");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        n_points = n_points.min(40_000);
    }

    let rows = scatter(n_points, 0xB10C);
    let block = PointBlock::from_points(&rows);
    let queries = query_points(16);
    let mut group = BenchGroup::new("kernel_micro").sample_size(if smoke { 5 } else { 10 });
    let mut kernels: Vec<Kernel> = Vec::new();

    // --- scan: the distance pass at block granularity ----------------------
    // Index blocks hold a few hundred points and are cache-resident while
    // scanned, so the kernel is measured on a hot block — a full-dataset
    // sweep would measure DRAM bandwidth, not the loop. `reps` keeps the
    // total work equal to one pass over the whole dataset per query.
    const SCAN_BLOCK: usize = 512;
    let hot = PointBlock::from_points(&rows[..SCAN_BLOCK]);
    let hot_rows = &rows[..SCAN_BLOCK];
    let reps = n_points / SCAN_BLOCK;
    let mut dist = vec![0.0f64; SCAN_BLOCK];
    let scan_batched = group.bench("scan/batched_soa", || {
        for q in &queries {
            for _ in 0..reps {
                euclidean_sq_batch(q.x, q.y, hot.view().xs(), hot.view().ys(), &mut dist);
                std::hint::black_box(dist[SCAN_BLOCK / 2]);
            }
        }
    });
    let scan_scalar = group.bench("scan/scalar_aos", || {
        for q in &queries {
            for _ in 0..reps {
                baseline::euclidean_sq_scalar(q, hot_rows, &mut dist);
                std::hint::black_box(dist[SCAN_BLOCK / 2]);
            }
        }
    });
    kernels.push(Kernel {
        label: "scan",
        batched_median_ms: scan_batched.median_ms,
        scalar_median_ms: scan_scalar.median_ms,
        points_per_sample: (SCAN_BLOCK * reps * queries.len()) as f64,
    });

    // --- mindist: point-vs-rect lower bounds over a large block set --------
    let rects: Vec<Rect> = rows
        .chunks(16)
        .map(|c| Rect::bounding(c).expect("chunks are non-empty"))
        .collect();
    let mindist_batched = group.bench("mindist/branchless", || {
        let mut acc = 0.0f64;
        for q in &queries {
            for r in &rects {
                acc += mindist_sq(q, r);
            }
        }
        std::hint::black_box(acc)
    });
    let mindist_scalar = group.bench("mindist/branchy", || {
        let mut acc = 0.0f64;
        for q in &queries {
            for r in &rects {
                acc += baseline::mindist_sq_branchy(q, r);
            }
        }
        std::hint::black_box(acc)
    });
    kernels.push(Kernel {
        label: "mindist",
        batched_median_ms: mindist_batched.median_ms,
        scalar_median_ms: mindist_scalar.median_ms,
        points_per_sample: (rects.len() * queries.len()) as f64,
    });

    // --- heap_update: per-block kth-distance maintenance at k = 16 ---------
    // Blocks of 256 points, the granularity the indexes hand the kernel.
    const BLOCK: usize = 256;
    let k = 16;
    let view = block.view();
    let (ids, xs, ys) = (view.ids(), view.xs(), view.ys());
    let heap_batched = group.bench("heap_update/kth_heap", || {
        let mut kth = KthHeap::new(k);
        let mut buf = Vec::new();
        for q in &queries {
            kth.reset(k);
            let mut at = 0;
            while at < n_points {
                let end = (at + BLOCK).min(n_points);
                let chunk = BlockPoints::from_columns(&ids[at..end], &xs[at..end], &ys[at..end]);
                kth.scan_block(q, chunk, &mut buf);
                at = end;
            }
            std::hint::black_box(kth.threshold_sq());
        }
    });
    let heap_scalar = group.bench("heap_update/gather_sort", || {
        for q in &queries {
            // The pre-SoA shape: materialize every (distance, point) pair,
            // sort the lot, keep k.
            let mut all: Vec<(f64, Point)> = rows.iter().map(|p| (q.distance_sq(p), *p)).collect();
            all.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite distances")
                    .then(a.1.id.cmp(&b.1.id))
            });
            all.truncate(k);
            std::hint::black_box(all.last().map(|(d, _)| *d));
        }
    });
    kernels.push(Kernel {
        label: "heap_update",
        batched_median_ms: heap_batched.median_ms,
        scalar_median_ms: heap_scalar.median_ms,
        points_per_sample: (n_points * queries.len()) as f64,
    });

    // --- get_knn: the end-to-end select hot path over a grid index ---------
    let index = workloads::berlin_relation(n_points.min(50_000), 4_242);
    let knn_queries = query_points(if smoke { 64 } else { 256 });
    let knn_k = 8;
    let mut scratch = ScratchSpace::new();
    let knn_batched = group.bench("get_knn/batched", || {
        let mut metrics = Metrics::default();
        let mut acc = 0usize;
        for q in &knn_queries {
            acc += get_knn_in(&index, q, knn_k, &mut metrics, &mut scratch).len();
        }
        std::hint::black_box(acc)
    });
    let knn_scalar = group.bench("get_knn/scalar", || {
        let mut metrics = Metrics::default();
        let mut acc = 0usize;
        for q in &knn_queries {
            acc += get_knn_scalar(&index, q, knn_k, &mut metrics).len();
        }
        std::hint::black_box(acc)
    });
    kernels.push(Kernel {
        label: "get_knn",
        batched_median_ms: knn_batched.median_ms,
        scalar_median_ms: knn_scalar.median_ms,
        points_per_sample: (index.num_points() * knn_queries.len()) as f64,
    });

    println!(
        "\n## kernel throughput ({n_points} points, {} queries)",
        queries.len()
    );
    for kernel in &kernels {
        kernel.report();
    }

    if smoke {
        // CI perf smoke: batched kernels must beat — or at the very least
        // not regress behind — their scalar baselines. 25% slack absorbs
        // noisy shared runners without letting a real regression through.
        let mut failed = false;
        for kernel in &kernels {
            if kernel.batched_median_ms > kernel.scalar_median_ms * 1.25 {
                eprintln!(
                    "SMOKE FAIL: {} batched path is {:.2}x SLOWER than the scalar baseline",
                    kernel.label,
                    1.0 / kernel.speedup(),
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("\nsmoke assertions passed: no batched kernel regresses vs its scalar baseline");
    }
}
