//! Ablation A8: filtered-kNN execution strategy.
//!
//! A pre-kNN filter ("the k nearest *matching* points") can be evaluated
//! two ways, and the planner's [`SelectStrategy`] picks between them:
//!
//! * **`FilteredKernel`** — the predicate-masked block kernel: visit blocks
//!   in MINDIST order, mask each block's candidates against the predicate,
//!   and prune against the running k-th *matching* distance. Work scales
//!   with the neighborhood, not the relation.
//! * **`FilterThenScan`** — materialize the matching subset by scanning the
//!   whole relation, then brute-force the kNN over the survivors. Work is
//!   `O(n)` per query regardless of how local the answer is.
//!
//! The same parsed textual query batch runs under both strategies at three
//! filter selectivities (a rect covering ~1%, ~25%, and 100% of the
//! extent, centered on the focal cluster). Latency is printed; the
//! `--smoke` assertions pin the machine-independent work counters: the two
//! strategies must return identical rows, the masked kernel must scan
//! strictly fewer points at the selective settings, and it must never
//! regress at selectivity 1.0 (where the mask accepts everything and the
//! kernel degenerates to the plain kNN scan order).
//!
//! Usage: `cargo bench -p twoknn-bench --bench ablation_filter --
//! [--points N] [--queries N] [--smoke]`

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::plan::{Database, QuerySpec, SelectStrategy, Strategy};
use twoknn_index::Metrics;

/// The strategies under comparison.
fn strategies() -> [(&'static str, SelectStrategy); 2] {
    [
        ("filtered_kernel", SelectStrategy::FilteredKernel),
        ("filter_then_scan", SelectStrategy::FilterThenScan),
    ]
}

/// A filtered kNN-select batch, parsed from query text: every query asks
/// for the 8 nearest points inside a rect covering `fraction` of each axis,
/// centered on the focal cluster, from focal points jittered around it.
fn parsed_batch(db: &Database, queries: usize, fraction: f64) -> Vec<QuerySpec> {
    let extent = workloads::extent();
    let focal = workloads::focal_point();
    let (hw, hh) = (
        extent.width() * fraction * 0.5,
        extent.height() * fraction * 0.5,
    );
    // Clamp the filter rect to the extent so fraction 1.0 covers everything.
    let (x1, y1) = (
        (focal.x - hw).max(extent.min_x),
        (focal.y - hh).max(extent.min_y),
    );
    let (x2, y2) = (
        (focal.x + hw).min(extent.max_x),
        (focal.y + hh).min(extent.max_y),
    );
    (0..queries)
        .map(|q| {
            let offset = (q % 61) as f64 * 11.0;
            let text = format!(
                "FIND (Objects WHERE INSIDE(RECT({x1}, {y1}, {x2}, {y2}))) \
                 WHERE KNN(8, {}, {})",
                focal.x + offset,
                focal.y - offset,
            );
            db.parse_query(&text).expect("bench query parses")
        })
        .collect()
}

/// Runs the batch under one explicit strategy, folding the per-query work
/// counters and collecting the sorted result rows for cross-checking.
fn run_batch(
    db: &Database,
    specs: &[QuerySpec],
    strategy: SelectStrategy,
) -> (Metrics, Vec<Vec<u64>>) {
    let mut work = Metrics::default();
    let mut rows: Vec<Vec<u64>> = Vec::new();
    for spec in specs {
        let result = db
            .execute_with(spec, Strategy::Select(strategy))
            .expect("filtered select");
        work += result.metrics();
        let mut ids: Vec<Vec<u64>> = result.rows().iter().map(|r| r.ids()).collect();
        ids.sort_unstable();
        rows.push(ids.into_iter().flatten().collect());
    }
    (work, rows)
}

fn main() {
    let mut points = 120_000usize;
    let mut queries = 256usize;
    let mut smoke = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--points" => {
                i += 1;
                points = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(points);
            }
            "--queries" => {
                i += 1;
                queries = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(queries);
            }
            "--smoke" => {
                points = 20_000;
                queries = 64;
                smoke = true;
            }
            _ => {}
        }
        i += 1;
    }
    println!("ablation_filter: {points} points, {queries} parsed queries per selectivity");

    let mut db = Database::new();
    db.register("Objects", workloads::berlin_relation(points, 423));

    for (sel_label, fraction) in [("sel_1pct", 0.1), ("sel_25pct", 0.5), ("sel_100pct", 1.0)] {
        let specs = parsed_batch(&db, queries, fraction);
        let mut per_strategy: Vec<(&str, Metrics, Vec<Vec<u64>>, f64)> = Vec::new();
        let mut group = BenchGroup::new(&format!("filter_{sel_label}")).sample_size(5);
        for (label, strategy) in strategies() {
            let stat = group.bench(label, || {
                for spec in &specs {
                    db.execute_with(spec, Strategy::Select(strategy))
                        .expect("filtered select");
                }
            });
            let (work, rows) = run_batch(&db, &specs, strategy);
            println!(
                "{sel_label}/{label}: {:.0} points / {:.1} blocks scanned per kNN, \
                 median {:.1} ms",
                work.points_scanned as f64 / queries as f64,
                work.blocks_scanned as f64 / queries as f64,
                stat.median_ms,
            );
            per_strategy.push((label, work, rows, stat.median_ms));
        }
        let (kernel, scan) = (&per_strategy[0], &per_strategy[1]);
        println!(
            "{sel_label}: masked kernel scans {:.3}x the scan-then-filter points, \
             latency {:.2}x",
            kernel.1.points_scanned as f64 / scan.1.points_scanned.max(1) as f64,
            kernel.3 / scan.3,
        );
        if smoke {
            assert_eq!(
                kernel.2, scan.2,
                "{sel_label}: the two strategies must return identical rows"
            );
            assert!(
                kernel.2.iter().any(|ids| !ids.is_empty()),
                "{sel_label}: the workload must produce non-empty neighborhoods"
            );
            if fraction < 1.0 {
                assert!(
                    kernel.1.points_scanned < scan.1.points_scanned,
                    "{sel_label}: the masked kernel must beat the full scan: \
                     {} >= {}",
                    kernel.1.points_scanned,
                    scan.1.points_scanned
                );
            } else {
                assert!(
                    kernel.1.points_scanned <= scan.1.points_scanned,
                    "sel_100pct: the masked kernel must never regress past the \
                     full scan: {} > {}",
                    kernel.1.points_scanned,
                    scan.1.points_scanned
                );
            }
        }
    }
    println!("ablation_filter: done");
}
