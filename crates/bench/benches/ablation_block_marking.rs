//! Ablation A2: Block-Marking design choices — the contour-based early stop
//! of the preprocessing scan (Figure 6) on/off, with Counting as a reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twoknn_bench::workloads;
use twoknn_core::select_join::{
    block_marking, block_marking_with_config, counting, BlockMarkingConfig, SelectInnerJoinQuery,
};

fn bench(c: &mut Criterion) {
    let inner = workloads::berlin_relation(8_000, 181);
    let query = SelectInnerJoinQuery::new(8, 8, workloads::focal_point());
    let no_contour = BlockMarkingConfig {
        contour_pruning: false,
    };
    let mut group = c.benchmark_group("ablation_block_marking");
    for n in [8_000usize, 16_000] {
        let outer = workloads::berlin_relation(n, 900 + n as u64);
        group.bench_with_input(BenchmarkId::new("counting", n), &n, |b, _| {
            b.iter(|| counting(&outer, &inner, &query))
        });
        group.bench_with_input(BenchmarkId::new("bm_no_contour", n), &n, |b, _| {
            b.iter(|| block_marking_with_config(&outer, &inner, &query, &no_contour))
        });
        group.bench_with_input(BenchmarkId::new("bm_contour", n), &n, |b, _| {
            b.iter(|| block_marking(&outer, &inner, &query))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
