//! Ablation A2: Block-Marking design choices — the contour-based early stop
//! of the preprocessing scan (Figure 6) on/off, with Counting as a reference.

use twoknn_bench::micro::BenchGroup;
use twoknn_bench::workloads;
use twoknn_core::select_join::{
    block_marking, block_marking_with_config, counting, BlockMarkingConfig, SelectInnerJoinQuery,
};

fn main() {
    let inner = workloads::berlin_relation(8_000, 181);
    let query = SelectInnerJoinQuery::new(8, 8, workloads::focal_point());
    let no_contour = BlockMarkingConfig {
        contour_pruning: false,
    };
    let mut group = BenchGroup::new("ablation_block_marking").sample_size(10);
    for n in [8_000usize, 16_000] {
        let outer = workloads::berlin_relation(n, 900 + n as u64);
        group.bench(&format!("counting/{n}"), || {
            counting(&outer, &inner, &query)
        });
        group.bench(&format!("block_marking_no_contour/{n}"), || {
            block_marking_with_config(&outer, &inner, &query, &no_contour)
        });
        group.bench(&format!("block_marking_contour/{n}"), || {
            block_marking(&outer, &inner, &query)
        });
    }
}
