//! A uniform grid index.
//!
//! Section 6 of the paper: "We index the data points into a simple grid.
//! Since our algorithms are independent of a specific indexing structure, we
//! choose a grid in order to be able to see the effectiveness of our
//! algorithms even with simple structures." Each grid cell is a block that
//! stores its points and its point count.

use twoknn_geometry::{GeomResult, GeometryError, Point, Rect};

use crate::block::{BlockId, BlockMeta};
use crate::points::{BlockPoints, PointBlock};
use crate::traits::SpatialIndex;

/// A uniform `n × n` grid over the bounding rectangle of the indexed points.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bounds: Rect,
    cells_per_axis: usize,
    cell_w: f64,
    cell_h: f64,
    blocks: Vec<BlockMeta>,
    /// Points of each cell in SoA layout, indexed by block id.
    cell_points: Vec<PointBlock>,
    num_points: usize,
}

impl GridIndex {
    /// Builds a grid over the bounding box of `points` with
    /// `cells_per_axis × cells_per_axis` cells.
    ///
    /// # Errors
    ///
    /// Returns an error if `points` is empty or `cells_per_axis` is zero.
    pub fn build(points: Vec<Point>, cells_per_axis: usize) -> GeomResult<Self> {
        let bounds = Rect::bounding(&points)?;
        Self::build_with_bounds(points, bounds, cells_per_axis)
    }

    /// Builds a grid over an explicit bounding rectangle.
    ///
    /// Useful when several relations must share the same space decomposition
    /// (e.g. the unchained-joins algorithm marks *regions* of the space as
    /// Candidate or Safe) or when a relation is empty.
    ///
    /// Points falling outside `bounds` are clamped to the boundary cells so
    /// that no data is silently dropped.
    ///
    /// # Errors
    ///
    /// Returns an error if `cells_per_axis` is zero or `bounds` is degenerate
    /// in a way that prevents cell construction (NaN handled upstream).
    pub fn build_with_bounds(
        points: Vec<Point>,
        bounds: Rect,
        cells_per_axis: usize,
    ) -> GeomResult<Self> {
        if cells_per_axis == 0 {
            return Err(GeometryError::EmptyPointSet);
        }
        // Degenerate extents (all points identical on an axis) get a minimal
        // positive extent so that cell widths stay positive. The original max
        // coordinates are kept exactly (not recomputed as min + extent) so
        // that boundary points stay inside the last row/column of cells.
        let bounds = Rect::new(
            bounds.min_x,
            bounds.min_y,
            if bounds.width() > 0.0 {
                bounds.max_x
            } else {
                bounds.min_x + 1.0
            },
            if bounds.height() > 0.0 {
                bounds.max_y
            } else {
                bounds.min_y + 1.0
            },
        );
        let cell_w = bounds.width() / cells_per_axis as f64;
        let cell_h = bounds.height() / cells_per_axis as f64;

        let n_cells = cells_per_axis * cells_per_axis;
        let mut cell_points: Vec<PointBlock> = vec![PointBlock::new(); n_cells];
        let num_points = points.len();
        for p in points {
            let (ix, iy) = cell_of(&bounds, cell_w, cell_h, cells_per_axis, &p);
            cell_points[iy * cells_per_axis + ix].push(p);
        }

        let mut blocks = Vec::with_capacity(n_cells);
        for iy in 0..cells_per_axis {
            for ix in 0..cells_per_axis {
                let id = (iy * cells_per_axis + ix) as BlockId;
                // The last row/column ends exactly at the grid bounds so that
                // boundary points (clamped into the edge cells) are contained
                // in their cell's footprint despite floating-point rounding.
                let max_x = if ix + 1 == cells_per_axis {
                    bounds.max_x
                } else {
                    bounds.min_x + (ix + 1) as f64 * cell_w
                };
                let max_y = if iy + 1 == cells_per_axis {
                    bounds.max_y
                } else {
                    bounds.min_y + (iy + 1) as f64 * cell_h
                };
                let mbr = Rect::new(
                    bounds.min_x + ix as f64 * cell_w,
                    bounds.min_y + iy as f64 * cell_h,
                    max_x,
                    max_y,
                );
                blocks.push(BlockMeta::new(id, mbr, cell_points[id as usize].len()));
            }
        }

        Ok(Self {
            bounds,
            cells_per_axis,
            cell_w,
            cell_h,
            blocks,
            cell_points,
            num_points,
        })
    }

    /// Builds a grid choosing the number of cells per axis so that the
    /// *average* occupied cell holds roughly `target_points_per_block` points.
    ///
    /// This mirrors the paper's setup where block granularity is a fixed
    /// index parameter independent of the algorithms.
    pub fn build_with_target_occupancy(
        points: Vec<Point>,
        target_points_per_block: usize,
    ) -> GeomResult<Self> {
        let n = points.len().max(1);
        let target = target_points_per_block.max(1);
        let cells = ((n as f64 / target as f64).sqrt().ceil() as usize).max(1);
        Self::build(points, cells)
    }

    /// The number of cells along each axis.
    pub fn cells_per_axis(&self) -> usize {
        self.cells_per_axis
    }

    /// The grid-cell coordinates (column, row) of the block containing `p`.
    pub fn cell_coords(&self, p: &Point) -> (usize, usize) {
        cell_of(
            &self.bounds,
            self.cell_w,
            self.cell_h,
            self.cells_per_axis,
            p,
        )
    }
}

fn cell_of(bounds: &Rect, cell_w: f64, cell_h: f64, n: usize, p: &Point) -> (usize, usize) {
    let ix = ((p.x - bounds.min_x) / cell_w).floor() as isize;
    let iy = ((p.y - bounds.min_y) / cell_h).floor() as isize;
    let clamp = |v: isize| v.clamp(0, n as isize - 1) as usize;
    (clamp(ix), clamp(iy))
}

impl SpatialIndex for GridIndex {
    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn num_points(&self) -> usize {
        self.num_points
    }

    fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    fn block_points(&self, id: BlockId) -> BlockPoints<'_> {
        self.cell_points[id as usize].view()
    }

    fn locate(&self, p: &Point) -> Option<BlockId> {
        if !self.bounds.expanded(1e-9).contains(p) {
            return None;
        }
        let (ix, iy) = self.cell_coords(p);
        Some((iy * self.cells_per_axis + ix) as BlockId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_index_invariants;

    fn sample_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let x = (i % 17) as f64 * 0.37;
                let y = (i % 23) as f64 * 0.61;
                Point::new(i as u64, x, y)
            })
            .collect()
    }

    #[test]
    fn build_produces_dense_block_ids_and_counts() {
        let g = GridIndex::build(sample_points(500), 8).unwrap();
        assert_eq!(g.num_blocks(), 64);
        assert_eq!(g.num_points(), 500);
        check_index_invariants(&g).unwrap();
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(GridIndex::build(vec![], 4).is_err());
        assert!(GridIndex::build(sample_points(10), 0).is_err());
    }

    #[test]
    fn locate_returns_containing_block() {
        let g = GridIndex::build(sample_points(300), 5).unwrap();
        for p in g.all_points() {
            let id = g.locate(&p).expect("point must be locatable");
            assert!(g.blocks()[id as usize].mbr.contains(&p));
            assert!(g.block_points(id).iter().any(|q| q.id == p.id));
        }
        // Far away points are not located.
        assert_eq!(g.locate(&Point::anonymous(1e9, 1e9)), None);
    }

    #[test]
    fn boundary_points_are_clamped_into_edge_cells() {
        let pts = vec![
            Point::new(0, 0.0, 0.0),
            Point::new(1, 10.0, 10.0), // exactly the max corner
            Point::new(2, 5.0, 5.0),
        ];
        let g = GridIndex::build(pts, 4).unwrap();
        check_index_invariants(&g).unwrap();
        assert_eq!(g.num_points(), 3);
        let id = g.locate(&Point::anonymous(10.0, 10.0)).unwrap();
        assert_eq!(id as usize, g.num_blocks() - 1);
    }

    #[test]
    fn degenerate_extent_still_builds() {
        // All points on a vertical line: zero width bounding box.
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i, 3.0, i as f64)).collect();
        let g = GridIndex::build(pts, 4).unwrap();
        check_index_invariants(&g).unwrap();
        assert_eq!(g.num_points(), 20);
    }

    #[test]
    fn identical_points_build() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i, 1.0, 1.0)).collect();
        let g = GridIndex::build(pts, 3).unwrap();
        check_index_invariants(&g).unwrap();
    }

    #[test]
    fn target_occupancy_controls_granularity() {
        let coarse = GridIndex::build_with_target_occupancy(sample_points(1000), 200).unwrap();
        let fine = GridIndex::build_with_target_occupancy(sample_points(1000), 5).unwrap();
        assert!(fine.num_blocks() > coarse.num_blocks());
    }

    #[test]
    fn shared_bounds_allow_empty_relations() {
        let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
        let g = GridIndex::build_with_bounds(vec![], bounds, 4).unwrap();
        assert_eq!(g.num_points(), 0);
        assert_eq!(g.num_blocks(), 16);
        check_index_invariants(&g).unwrap();
    }

    #[test]
    fn points_outside_explicit_bounds_are_clamped() {
        let bounds = Rect::new(0.0, 0.0, 10.0, 10.0);
        let pts = vec![Point::new(0, -5.0, 5.0), Point::new(1, 15.0, 5.0)];
        let g = GridIndex::build_with_bounds(pts, bounds, 2).unwrap();
        assert_eq!(g.num_points(), 2);
        // Clamped points may violate the "inside footprint" invariant check,
        // so we only assert they are stored and locatable by count here.
        let total: usize = g.blocks().iter().map(|b| b.count).sum();
        assert_eq!(total, 2);
    }
}
