//! Machine-independent execution metrics.
//!
//! The paper's evaluation reports wall-clock execution time. Wall time on a
//! different machine, language and index implementation is not directly
//! comparable, so in addition to timing (done by the bench harness) every
//! algorithm in this workspace counts the *work* it performs. The dominant
//! cost in all of the paper's algorithms is computing the neighborhood of a
//! point (`getkNN`), followed by block scans, so those are the headline
//! counters.

/// Counters describing the work performed by an algorithm invocation.
///
/// All counters are cumulative; use [`Metrics::default`] for a fresh set and
/// `+=` to merge the work of sub-operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of neighborhood (`getkNN`) computations performed.
    pub neighborhoods_computed: u64,
    /// Number of blocks examined in MINDIST/MAXDIST scans (including blocks
    /// only inspected for their count).
    pub blocks_scanned: u64,
    /// Number of blocks added to localities.
    pub locality_blocks: u64,
    /// Number of individual points examined (distance computed or compared).
    pub points_scanned: u64,
    /// Number of point-to-point distance computations.
    pub distance_computations: u64,
    /// Number of output tuples (pairs or triplets) emitted.
    pub tuples_emitted: u64,
    /// Number of neighborhood-cache hits (chained-join cached QEP3).
    pub cache_hits: u64,
    /// Number of neighborhood-cache misses.
    pub cache_misses: u64,
    /// Number of blocks pruned without per-point processing
    /// (Non-Contributing blocks in Block-Marking, contour cut-offs, ...).
    pub blocks_pruned: u64,
    /// Number of spatial shards (relation partitions) whose blocks were
    /// actually visited by a scatter-gather kNN scan.
    pub shards_scanned: u64,
    /// Number of spatial shards skipped wholesale because their MINDIST²
    /// from the query exceeded the running k-th distance τ² (or the query's
    /// distance bound) — the paper's block pruning lifted one level up.
    pub shards_pruned: u64,
    /// Number of outer points skipped without a neighborhood computation
    /// (e.g. by the Counting algorithm's threshold test).
    pub points_pruned: u64,
    /// Number of write operations (inserts/removes/updates) applied to
    /// versioned relations.
    pub ingest_ops: u64,
    /// Number of background index rebuilds (compactions) published — each one
    /// advances a relation's snapshot epoch.
    pub compactions: u64,
    /// Number of individual shards rebuilt by compactions. With a single-shard
    /// relation this equals `compactions`; with a sharded relation it counts
    /// the dirty shards that were actually folded (clean shards are skipped).
    pub shards_compacted: u64,
    /// Number of standing-query re-evaluations scheduled by the
    /// continuous-query maintainer (a publish intersected the subscription's
    /// guard region, or the engine runs in re-evaluate-all mode).
    pub cq_reevals: u64,
    /// Number of standing-query re-evaluations *skipped* because the publish
    /// provably could not change the subscription's result (every write fell
    /// outside its guard region) — the guard's pruning power, observable.
    pub cq_skips: u64,
    /// Number of batch records appended to write-ahead logs.
    pub wal_appends: u64,
    /// Total bytes appended to write-ahead logs (record framing included).
    pub wal_bytes: u64,
    /// Number of store checkpoints taken (dirty shards spilled to block
    /// files, obsolete WAL segments trimmed).
    pub checkpoints: u64,
    /// Number of relations recovered from disk at open (block files loaded,
    /// WAL suffix replayed).
    pub recoveries: u64,
}

impl Metrics {
    /// A fresh, zeroed metrics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of "expensive" operations: neighborhood computations plus
    /// block scans. A convenient single scalar for plotting experiment shapes.
    pub fn work(&self) -> u64 {
        self.neighborhoods_computed + self.blocks_scanned
    }

    /// Folds another record into this one, field by field.
    ///
    /// This is the merge step of parallel execution: every worker thread
    /// accumulates into its own `Metrics` and the driver merges them, so a
    /// parallel run reports the same totals as the equivalent serial run
    /// (the counters are sums of schedule-independent per-item work).
    pub fn merge(&mut self, other: &Metrics) {
        *self += *other;
    }
}

impl std::ops::AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Self) {
        self.neighborhoods_computed += rhs.neighborhoods_computed;
        self.blocks_scanned += rhs.blocks_scanned;
        self.locality_blocks += rhs.locality_blocks;
        self.points_scanned += rhs.points_scanned;
        self.distance_computations += rhs.distance_computations;
        self.tuples_emitted += rhs.tuples_emitted;
        self.cache_hits += rhs.cache_hits;
        self.cache_misses += rhs.cache_misses;
        self.blocks_pruned += rhs.blocks_pruned;
        self.shards_scanned += rhs.shards_scanned;
        self.shards_pruned += rhs.shards_pruned;
        self.points_pruned += rhs.points_pruned;
        self.ingest_ops += rhs.ingest_ops;
        self.compactions += rhs.compactions;
        self.shards_compacted += rhs.shards_compacted;
        self.cq_reevals += rhs.cq_reevals;
        self.cq_skips += rhs.cq_skips;
        self.wal_appends += rhs.wal_appends;
        self.wal_bytes += rhs.wal_bytes;
        self.checkpoints += rhs.checkpoints;
        self.recoveries += rhs.recoveries;
    }
}

impl std::ops::Add for Metrics {
    type Output = Metrics;

    fn add(mut self, rhs: Self) -> Self::Output {
        self += rhs;
        self
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "knn={} blocks={} pts={} dist={} emitted={} pruned_blocks={} pruned_pts={} \
             shards={}/{} cache={}/{} ingest={} compactions={} shard_compactions={} cq={}/{} \
             wal={}r/{}B checkpoints={} recoveries={}",
            self.neighborhoods_computed,
            self.blocks_scanned,
            self.points_scanned,
            self.distance_computations,
            self.tuples_emitted,
            self.blocks_pruned,
            self.points_pruned,
            self.shards_scanned,
            self.shards_scanned + self.shards_pruned,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.ingest_ops,
            self.compactions,
            self.shards_compacted,
            self.cq_reevals,
            self.cq_reevals + self.cq_skips,
            self.wal_appends,
            self.wal_bytes,
            self.checkpoints,
            self.recoveries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates_every_field() {
        let mut a = Metrics {
            neighborhoods_computed: 1,
            blocks_scanned: 2,
            locality_blocks: 3,
            points_scanned: 4,
            distance_computations: 5,
            tuples_emitted: 6,
            cache_hits: 7,
            cache_misses: 8,
            blocks_pruned: 9,
            shards_scanned: 15,
            shards_pruned: 16,
            points_pruned: 10,
            ingest_ops: 11,
            compactions: 12,
            shards_compacted: 17,
            cq_reevals: 13,
            cq_skips: 14,
            wal_appends: 18,
            wal_bytes: 19,
            checkpoints: 20,
            recoveries: 21,
        };
        a += a;
        assert_eq!(a.neighborhoods_computed, 2);
        assert_eq!(a.points_pruned, 20);
        assert_eq!(a.ingest_ops, 22);
        assert_eq!(a.compactions, 24);
        assert_eq!(a.cq_reevals, 26);
        assert_eq!(a.cq_skips, 28);
        assert_eq!(a.shards_scanned, 30);
        assert_eq!(a.shards_pruned, 32);
        assert_eq!(a.shards_compacted, 34);
        assert_eq!(a.wal_appends, 36);
        assert_eq!(a.wal_bytes, 38);
        assert_eq!(a.checkpoints, 40);
        assert_eq!(a.recoveries, 42);
        assert_eq!(a.work(), 2 + 4);
    }

    #[test]
    fn merge_matches_add_assign() {
        let a = Metrics {
            neighborhoods_computed: 2,
            cache_hits: 5,
            ..Metrics::default()
        };
        let b = Metrics {
            neighborhoods_computed: 3,
            blocks_pruned: 7,
            ..Metrics::default()
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, a + b);
    }

    #[test]
    fn add_is_consistent_with_add_assign() {
        let a = Metrics {
            neighborhoods_computed: 2,
            ..Metrics::default()
        };
        let b = Metrics {
            blocks_scanned: 3,
            ..Metrics::default()
        };
        let c = a + b;
        assert_eq!(c.neighborhoods_computed, 2);
        assert_eq!(c.blocks_scanned, 3);
        assert_eq!(c.work(), 5);
    }

    #[test]
    fn display_is_compact_single_line() {
        let m = Metrics::default();
        let s = m.to_string();
        assert!(s.contains("knn=0"));
        assert!(!s.contains('\n'));
    }
}
