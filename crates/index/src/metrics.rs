//! Machine-independent execution metrics.
//!
//! The paper's evaluation reports wall-clock execution time. Wall time on a
//! different machine, language and index implementation is not directly
//! comparable, so in addition to timing (done by the bench harness) every
//! algorithm in this workspace counts the *work* it performs. The dominant
//! cost in all of the paper's algorithms is computing the neighborhood of a
//! point (`getkNN`), followed by block scans, so those are the headline
//! counters.

/// Counters describing the work performed by an algorithm invocation.
///
/// All counters are cumulative; use [`Metrics::default`] for a fresh set and
/// `+=` to merge the work of sub-operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of neighborhood (`getkNN`) computations performed.
    pub neighborhoods_computed: u64,
    /// Number of blocks examined in MINDIST/MAXDIST scans (including blocks
    /// only inspected for their count).
    pub blocks_scanned: u64,
    /// Number of blocks added to localities.
    pub locality_blocks: u64,
    /// Number of individual points examined (distance computed or compared).
    pub points_scanned: u64,
    /// Number of point-to-point distance computations.
    pub distance_computations: u64,
    /// Number of output tuples (pairs or triplets) emitted.
    pub tuples_emitted: u64,
    /// Number of neighborhood-cache hits (chained-join cached QEP3).
    pub cache_hits: u64,
    /// Number of neighborhood-cache misses.
    pub cache_misses: u64,
    /// Number of blocks pruned without per-point processing
    /// (Non-Contributing blocks in Block-Marking, contour cut-offs, ...).
    pub blocks_pruned: u64,
    /// Number of spatial shards (relation partitions) whose blocks were
    /// actually visited by a scatter-gather kNN scan.
    pub shards_scanned: u64,
    /// Number of spatial shards skipped wholesale because their MINDIST²
    /// from the query exceeded the running k-th distance τ² (or the query's
    /// distance bound) — the paper's block pruning lifted one level up.
    pub shards_pruned: u64,
    /// Number of outer points skipped without a neighborhood computation
    /// (e.g. by the Counting algorithm's threshold test).
    pub points_pruned: u64,
    /// Number of write operations (inserts/removes/updates) applied to
    /// versioned relations.
    pub ingest_ops: u64,
    /// Number of background index rebuilds (compactions) published — each one
    /// advances a relation's snapshot epoch.
    pub compactions: u64,
    /// Number of individual shards rebuilt by compactions. With a single-shard
    /// relation this equals `compactions`; with a sharded relation it counts
    /// the dirty shards that were actually folded (clean shards are skipped).
    pub shards_compacted: u64,
    /// Number of standing-query re-evaluations scheduled by the
    /// continuous-query maintainer (a publish intersected the subscription's
    /// guard region, or the engine runs in re-evaluate-all mode).
    pub cq_reevals: u64,
    /// Number of standing-query re-evaluations *skipped* because the publish
    /// provably could not change the subscription's result (every write fell
    /// outside its guard region) — the guard's pruning power, observable.
    pub cq_skips: u64,
    /// Number of batch records appended to write-ahead logs.
    pub wal_appends: u64,
    /// Total bytes appended to write-ahead logs (record framing included).
    pub wal_bytes: u64,
    /// Number of store checkpoints taken (dirty shards spilled to block
    /// files, obsolete WAL segments trimmed).
    pub checkpoints: u64,
    /// Number of relations recovered from disk at open (block files loaded,
    /// WAL suffix replayed).
    pub recoveries: u64,
}

impl Metrics {
    /// A fresh, zeroed metrics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of "expensive" operations: neighborhood computations plus
    /// block scans. A convenient single scalar for plotting experiment shapes.
    pub fn work(&self) -> u64 {
        self.neighborhoods_computed + self.blocks_scanned
    }

    /// Folds another record into this one, field by field.
    ///
    /// This is the merge step of parallel execution: every worker thread
    /// accumulates into its own `Metrics` and the driver merges them, so a
    /// parallel run reports the same totals as the equivalent serial run
    /// (the counters are sums of schedule-independent per-item work).
    pub fn merge(&mut self, other: &Metrics) {
        *self += *other;
    }

    /// The per-field delta `self − before`, saturating at zero.
    ///
    /// This is how an execution tracer attributes work to a span: snapshot
    /// the cumulative counters before and after, diff them. Saturation
    /// (rather than wrapping) keeps the result meaningful for the one
    /// non-monotone counter — `tuples_emitted` can be *reset downward* by a
    /// residual row filter — and for diffs taken across unrelated records.
    pub fn diff(&self, before: &Metrics) -> Metrics {
        Metrics {
            neighborhoods_computed: self
                .neighborhoods_computed
                .saturating_sub(before.neighborhoods_computed),
            blocks_scanned: self.blocks_scanned.saturating_sub(before.blocks_scanned),
            locality_blocks: self.locality_blocks.saturating_sub(before.locality_blocks),
            points_scanned: self.points_scanned.saturating_sub(before.points_scanned),
            distance_computations: self
                .distance_computations
                .saturating_sub(before.distance_computations),
            tuples_emitted: self.tuples_emitted.saturating_sub(before.tuples_emitted),
            cache_hits: self.cache_hits.saturating_sub(before.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(before.cache_misses),
            blocks_pruned: self.blocks_pruned.saturating_sub(before.blocks_pruned),
            shards_scanned: self.shards_scanned.saturating_sub(before.shards_scanned),
            shards_pruned: self.shards_pruned.saturating_sub(before.shards_pruned),
            points_pruned: self.points_pruned.saturating_sub(before.points_pruned),
            ingest_ops: self.ingest_ops.saturating_sub(before.ingest_ops),
            compactions: self.compactions.saturating_sub(before.compactions),
            shards_compacted: self
                .shards_compacted
                .saturating_sub(before.shards_compacted),
            cq_reevals: self.cq_reevals.saturating_sub(before.cq_reevals),
            cq_skips: self.cq_skips.saturating_sub(before.cq_skips),
            wal_appends: self.wal_appends.saturating_sub(before.wal_appends),
            wal_bytes: self.wal_bytes.saturating_sub(before.wal_bytes),
            checkpoints: self.checkpoints.saturating_sub(before.checkpoints),
            recoveries: self.recoveries.saturating_sub(before.recoveries),
        }
    }
}

impl std::ops::AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Self) {
        self.neighborhoods_computed += rhs.neighborhoods_computed;
        self.blocks_scanned += rhs.blocks_scanned;
        self.locality_blocks += rhs.locality_blocks;
        self.points_scanned += rhs.points_scanned;
        self.distance_computations += rhs.distance_computations;
        self.tuples_emitted += rhs.tuples_emitted;
        self.cache_hits += rhs.cache_hits;
        self.cache_misses += rhs.cache_misses;
        self.blocks_pruned += rhs.blocks_pruned;
        self.shards_scanned += rhs.shards_scanned;
        self.shards_pruned += rhs.shards_pruned;
        self.points_pruned += rhs.points_pruned;
        self.ingest_ops += rhs.ingest_ops;
        self.compactions += rhs.compactions;
        self.shards_compacted += rhs.shards_compacted;
        self.cq_reevals += rhs.cq_reevals;
        self.cq_skips += rhs.cq_skips;
        self.wal_appends += rhs.wal_appends;
        self.wal_bytes += rhs.wal_bytes;
        self.checkpoints += rhs.checkpoints;
        self.recoveries += rhs.recoveries;
    }
}

impl std::ops::Add for Metrics {
    type Output = Metrics;

    fn add(mut self, rhs: Self) -> Self::Output {
        self += rhs;
        self
    }
}

/// Appends `label=value` to `line`, space-separated, when `value` is nonzero.
fn push_field(line: &mut String, label: &str, value: u64) {
    if value > 0 {
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(label);
        line.push('=');
        line.push_str(&value.to_string());
    }
}

/// Appends `label=a/b` to `line` when the pair carries any count.
fn push_ratio(line: &mut String, label: &str, a: u64, b: u64) {
    if a + b > 0 {
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(label);
        line.push('=');
        line.push_str(&a.to_string());
        line.push('/');
        line.push_str(&b.to_string());
    }
}

impl std::fmt::Display for Metrics {
    /// Grouped, zero-suppressed rendering: one line per subsystem section
    /// (read path / write path / durability / cq), fields with a zero count
    /// omitted, sections with no work omitted entirely. An all-zero record
    /// renders as `no work recorded` so the output is never empty.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut read = String::new();
        push_field(&mut read, "knn", self.neighborhoods_computed);
        push_field(&mut read, "blocks", self.blocks_scanned);
        push_field(&mut read, "blocks_pruned", self.blocks_pruned);
        push_field(&mut read, "locality_blocks", self.locality_blocks);
        push_field(&mut read, "pts", self.points_scanned);
        push_field(&mut read, "pts_pruned", self.points_pruned);
        push_field(&mut read, "dist", self.distance_computations);
        push_field(&mut read, "emitted", self.tuples_emitted);
        push_ratio(
            &mut read,
            "shards",
            self.shards_scanned,
            self.shards_scanned + self.shards_pruned,
        );
        push_ratio(
            &mut read,
            "cache",
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        );

        let mut write_path = String::new();
        push_field(&mut write_path, "ingest", self.ingest_ops);
        push_field(&mut write_path, "compactions", self.compactions);
        push_field(&mut write_path, "shards_compacted", self.shards_compacted);

        let mut durability = String::new();
        push_field(&mut durability, "wal_appends", self.wal_appends);
        push_field(&mut durability, "wal_bytes", self.wal_bytes);
        push_field(&mut durability, "checkpoints", self.checkpoints);
        push_field(&mut durability, "recoveries", self.recoveries);

        let mut cq = String::new();
        push_ratio(
            &mut cq,
            "reevals",
            self.cq_reevals,
            self.cq_reevals + self.cq_skips,
        );

        let sections = [
            ("read path", read),
            ("write path", write_path),
            ("durability", durability),
            ("cq", cq),
        ];
        let mut any = false;
        for (title, body) in &sections {
            if body.is_empty() {
                continue;
            }
            if any {
                writeln!(f)?;
            }
            write!(f, "{title}: {body}")?;
            any = true;
        }
        if !any {
            write!(f, "no work recorded")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates_every_field() {
        let mut a = Metrics {
            neighborhoods_computed: 1,
            blocks_scanned: 2,
            locality_blocks: 3,
            points_scanned: 4,
            distance_computations: 5,
            tuples_emitted: 6,
            cache_hits: 7,
            cache_misses: 8,
            blocks_pruned: 9,
            shards_scanned: 15,
            shards_pruned: 16,
            points_pruned: 10,
            ingest_ops: 11,
            compactions: 12,
            shards_compacted: 17,
            cq_reevals: 13,
            cq_skips: 14,
            wal_appends: 18,
            wal_bytes: 19,
            checkpoints: 20,
            recoveries: 21,
        };
        a += a;
        assert_eq!(a.neighborhoods_computed, 2);
        assert_eq!(a.points_pruned, 20);
        assert_eq!(a.ingest_ops, 22);
        assert_eq!(a.compactions, 24);
        assert_eq!(a.cq_reevals, 26);
        assert_eq!(a.cq_skips, 28);
        assert_eq!(a.shards_scanned, 30);
        assert_eq!(a.shards_pruned, 32);
        assert_eq!(a.shards_compacted, 34);
        assert_eq!(a.wal_appends, 36);
        assert_eq!(a.wal_bytes, 38);
        assert_eq!(a.checkpoints, 40);
        assert_eq!(a.recoveries, 42);
        assert_eq!(a.work(), 2 + 4);
    }

    #[test]
    fn merge_matches_add_assign() {
        let a = Metrics {
            neighborhoods_computed: 2,
            cache_hits: 5,
            ..Metrics::default()
        };
        let b = Metrics {
            neighborhoods_computed: 3,
            blocks_pruned: 7,
            ..Metrics::default()
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, a + b);
    }

    #[test]
    fn add_is_consistent_with_add_assign() {
        let a = Metrics {
            neighborhoods_computed: 2,
            ..Metrics::default()
        };
        let b = Metrics {
            blocks_scanned: 3,
            ..Metrics::default()
        };
        let c = a + b;
        assert_eq!(c.neighborhoods_computed, 2);
        assert_eq!(c.blocks_scanned, 3);
        assert_eq!(c.work(), 5);
    }

    #[test]
    fn diff_subtracts_per_field_and_saturates() {
        let before = Metrics {
            neighborhoods_computed: 2,
            blocks_scanned: 10,
            tuples_emitted: 50,
            wal_bytes: 100,
            ..Metrics::default()
        };
        let after = Metrics {
            neighborhoods_computed: 7,
            blocks_scanned: 11,
            // A residual filter can reset `tuples_emitted` downward.
            tuples_emitted: 30,
            wal_bytes: 164,
            cq_reevals: 3,
            ..Metrics::default()
        };
        let d = after.diff(&before);
        assert_eq!(d.neighborhoods_computed, 5);
        assert_eq!(d.blocks_scanned, 1);
        assert_eq!(d.tuples_emitted, 0, "saturates instead of wrapping");
        assert_eq!(d.wal_bytes, 64);
        assert_eq!(d.cq_reevals, 3);
        // diff against self is all-zero, and (before + diff) recovers the
        // monotone fields.
        assert_eq!(after.diff(&after), Metrics::default());
        assert_eq!((before + d).wal_bytes, after.wal_bytes);
    }

    #[test]
    fn display_groups_sections_and_suppresses_zeroes() {
        assert_eq!(Metrics::default().to_string(), "no work recorded");

        let read_only = Metrics {
            neighborhoods_computed: 4,
            points_scanned: 90,
            ..Metrics::default()
        };
        let s = read_only.to_string();
        assert_eq!(s, "read path: knn=4 pts=90");
        assert!(!s.contains("wal"), "zero durability section is suppressed");

        let mixed = Metrics {
            neighborhoods_computed: 4,
            ingest_ops: 2,
            wal_appends: 2,
            wal_bytes: 128,
            cq_reevals: 1,
            cq_skips: 3,
            ..Metrics::default()
        };
        let s = mixed.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(
            lines,
            vec![
                "read path: knn=4",
                "write path: ingest=2",
                "durability: wal_appends=2 wal_bytes=128",
                "cq: reevals=1/4",
            ]
        );
    }
}
