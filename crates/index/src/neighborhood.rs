//! The *neighborhood* of a point: its `k` nearest neighbors.
//!
//! Definition 1 of the paper: "The neighborhood of a point, say p, is the set
//! of the k nearest neighboring points to p." The two-predicate algorithms
//! constantly need the *nearest* and the *farthest* member of a neighborhood
//! (search thresholds in Procedures 1, 3 and 5) and need to intersect two
//! neighborhoods, so [`Neighborhood`] keeps its members sorted by distance
//! from the query point and provides those operations directly.

use twoknn_geometry::{Point, PointId};

/// A neighbor: a point together with its distance from the query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The neighboring point.
    pub point: Point,
    /// Euclidean distance from the query point.
    pub distance: f64,
}

/// The `k` nearest neighbors of a query point, sorted by increasing distance.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighborhood {
    /// The query (focal) point this neighborhood belongs to.
    query: Point,
    /// Requested `k`.
    k: usize,
    /// Members, sorted by increasing distance from `query`; ties broken by
    /// point id so results are deterministic.
    members: Vec<Neighbor>,
}

impl Neighborhood {
    /// Builds a neighborhood from an unsorted list of neighbors.
    ///
    /// The list is sorted by `(distance, point id)` and truncated to `k`
    /// entries. Fewer than `k` members are kept when the relation holds fewer
    /// than `k` points, mirroring the set semantics of the paper.
    pub fn from_unsorted(query: Point, k: usize, mut members: Vec<Neighbor>) -> Self {
        members.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("distances must not be NaN")
                .then_with(|| a.point.id.cmp(&b.point.id))
        });
        members.truncate(k);
        Self { query, k, members }
    }

    /// An empty neighborhood (used when the inner relation is empty).
    pub fn empty(query: Point, k: usize) -> Self {
        Self {
            query,
            k,
            members: Vec::new(),
        }
    }

    /// The query point.
    pub fn query(&self) -> Point {
        self.query
    }

    /// The requested `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of members actually present (≤ `k`).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the neighborhood has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Members sorted by increasing distance from the query point.
    pub fn members(&self) -> &[Neighbor] {
        &self.members
    }

    /// Iterator over the member points (without distances).
    pub fn points(&self) -> impl Iterator<Item = &Point> {
        self.members.iter().map(|n| &n.point)
    }

    /// The member nearest to the query point.
    pub fn nearest(&self) -> Option<&Neighbor> {
        self.members.first()
    }

    /// The member farthest from the query point.
    pub fn farthest(&self) -> Option<&Neighbor> {
        self.members.last()
    }

    /// Distance from the query point to the farthest member (0 when empty).
    ///
    /// This is `f_farthest` in Procedure 3 and the radius of the circle that
    /// "confines the neighborhood" in the paper's figures.
    pub fn radius(&self) -> f64 {
        self.farthest().map_or(0.0, |n| n.distance)
    }

    /// Whether the neighborhood contains a point with the given id.
    pub fn contains_id(&self, id: PointId) -> bool {
        self.members.iter().any(|n| n.point.id == id)
    }

    /// Distance from an arbitrary point `p` to the *nearest* member.
    ///
    /// This is the Counting algorithm's *search threshold*:
    /// "the distance between e1 and the nearest point to e1 in the
    /// neighborhood of f" (Section 3.1).
    pub fn nearest_distance_from(&self, p: &Point) -> Option<f64> {
        self.members
            .iter()
            .map(|n| p.distance(&n.point))
            .min_by(|a, b| a.partial_cmp(b).expect("distance must not be NaN"))
    }

    /// Distance from an arbitrary point `p` to the *farthest* member.
    ///
    /// This is the 2-kNN-select search threshold: "the distance between f2 and
    /// the farthest to it in the neighborhood of f1" (Section 5.2).
    pub fn farthest_distance_from(&self, p: &Point) -> Option<f64> {
        self.members
            .iter()
            .map(|n| p.distance(&n.point))
            .max_by(|a, b| a.partial_cmp(b).expect("distance must not be NaN"))
    }

    /// Set-intersection of two neighborhoods by point id, in the sense of the
    /// paper's `intersect(P, Q)` helper. Returns the points of `self` whose
    /// ids also occur in `other`, preserving `self`'s distance order.
    pub fn intersect(&self, other: &Neighborhood) -> Vec<Point> {
        self.members
            .iter()
            .filter(|n| other.contains_id(n.point.id))
            .map(|n| n.point)
            .collect()
    }

    /// Ids of the members, in distance order.
    pub fn ids(&self) -> Vec<PointId> {
        self.members.iter().map(|n| n.point.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(query: Point, k: usize, pts: &[(PointId, f64, f64)]) -> Neighborhood {
        let members = pts
            .iter()
            .map(|&(id, x, y)| {
                let p = Point::new(id, x, y);
                Neighbor {
                    point: p,
                    distance: query.distance(&p),
                }
            })
            .collect();
        Neighborhood::from_unsorted(query, k, members)
    }

    #[test]
    fn members_are_sorted_and_truncated_to_k() {
        let q = Point::anonymous(0.0, 0.0);
        let n = nb(q, 2, &[(1, 3.0, 0.0), (2, 1.0, 0.0), (3, 2.0, 0.0)]);
        assert_eq!(n.len(), 2);
        assert_eq!(n.ids(), vec![2, 3]);
        assert_eq!(n.nearest().unwrap().point.id, 2);
        assert_eq!(n.farthest().unwrap().point.id, 3);
        assert_eq!(n.radius(), 2.0);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let q = Point::anonymous(0.0, 0.0);
        let n = nb(q, 2, &[(9, 1.0, 0.0), (4, 0.0, 1.0), (7, -1.0, 0.0)]);
        // All three are at distance 1; the two smallest ids are kept.
        assert_eq!(n.ids(), vec![4, 7]);
    }

    #[test]
    fn empty_neighborhood_behaves() {
        let q = Point::anonymous(0.0, 0.0);
        let n = Neighborhood::empty(q, 5);
        assert!(n.is_empty());
        assert_eq!(n.radius(), 0.0);
        assert!(n.nearest().is_none());
        assert!(n.nearest_distance_from(&q).is_none());
    }

    #[test]
    fn nearest_and_farthest_distance_from_external_point() {
        let q = Point::anonymous(0.0, 0.0);
        let n = nb(q, 3, &[(1, 1.0, 0.0), (2, 2.0, 0.0), (3, 3.0, 0.0)]);
        let e = Point::anonymous(5.0, 0.0);
        assert_eq!(n.nearest_distance_from(&e), Some(2.0)); // to (3,0)
        assert_eq!(n.farthest_distance_from(&e), Some(4.0)); // to (1,0)
    }

    #[test]
    fn intersection_is_by_id() {
        let q = Point::anonymous(0.0, 0.0);
        let a = nb(q, 3, &[(1, 1.0, 0.0), (2, 2.0, 0.0), (3, 3.0, 0.0)]);
        let b = nb(q, 3, &[(3, 3.0, 0.0), (4, 4.0, 0.0), (1, 1.0, 0.0)]);
        let ids: Vec<_> = a.intersect(&b).iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![1, 3]);
        assert!(a.contains_id(2));
        assert!(!b.contains_id(2));
    }

    #[test]
    fn keeps_fewer_than_k_when_input_is_small() {
        let q = Point::anonymous(0.0, 0.0);
        let n = nb(q, 10, &[(1, 1.0, 0.0)]);
        assert_eq!(n.len(), 1);
        assert_eq!(n.k(), 10);
    }
}
