//! The [`SpatialIndex`] abstraction shared by all index implementations.
//!
//! Section 2 of the paper: "The algorithms we present do not assume a
//! specific indexing structure. The algorithms can be applied to a quadtree,
//! an R-tree, or any of their variants." The only capabilities the algorithms
//! need are captured by this trait: enumerate blocks with their point counts,
//! read the points inside a block, and locate the block containing a point.

use twoknn_geometry::{Point, Rect};

use crate::block::{BlockId, BlockMeta};
use crate::ordering::{BlockOrder, OrderMetric};
use crate::partition::PartitionMeta;
use crate::points::BlockPoints;

/// A block-based, in-memory spatial index over a set of 2-D points.
///
/// Implementations in this crate: [`crate::GridIndex`] (the structure used in
/// the paper's evaluation), [`crate::QuadtreeIndex`] (PR quadtree) and
/// [`crate::StrRTree`] (bulk-loaded R-tree whose leaves act as blocks).
pub trait SpatialIndex {
    /// The spatial extent covered by the index.
    fn bounds(&self) -> Rect;

    /// Total number of indexed points.
    fn num_points(&self) -> usize;

    /// Metadata (footprint + point count) for every block of the index.
    ///
    /// Block ids are dense in `0..blocks().len()`.
    fn blocks(&self) -> &[BlockMeta];

    /// The points stored in a block, as a borrowed SoA column view.
    ///
    /// Row-oriented consumers iterate the view (it yields [`Point`]s by
    /// value); the batched distance kernels read the `xs()`/`ys()` columns
    /// directly.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid block id of this index.
    fn block_points(&self, id: BlockId) -> BlockPoints<'_>;

    /// The block whose footprint contains `p`, if any.
    ///
    /// Used by Procedure 4 to mark the blocks that contain join-result points
    /// as *Candidate* blocks. When footprints overlap (R-tree), the block that
    /// actually stores a point with the same coordinates is preferred;
    /// otherwise any containing block may be returned.
    fn locate(&self, p: &Point) -> Option<BlockId>;

    /// Number of blocks in the index.
    fn num_blocks(&self) -> usize {
        self.blocks().len()
    }

    /// The coarse spatial partitions (shards) of this index, if it is
    /// sharded.
    ///
    /// Each [`PartitionMeta`] must own a contiguous, disjoint range of the
    /// dense block-id space, the ranges must cover `0..num_blocks()` in
    /// ascending order, and every partition's MBR must contain the footprints
    /// of its non-empty blocks. The kNN driver uses the partitions to visit
    /// shards in MINDIST order and skip the ones whose MINDIST² cannot beat
    /// the running k-th distance. Plain (unsharded) indexes keep the default
    /// `None` and are scanned as one flat locality.
    fn partitions(&self) -> Option<&[PartitionMeta]> {
        None
    }

    /// Convenience: all indexed points, flattened. Mainly for tests and
    /// brute-force baselines; order is unspecified.
    fn all_points(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.num_points());
        for b in self.blocks() {
            out.extend(self.block_points(b.id));
        }
        out
    }

    /// A lazy ordering of this index's blocks by increasing MINDIST from `p`.
    fn mindist_order(&self, p: &Point) -> BlockOrder {
        BlockOrder::new(self.blocks(), p, OrderMetric::MinDist)
    }

    /// A lazy ordering of this index's blocks by increasing MAXDIST from `p`.
    fn maxdist_order(&self, p: &Point) -> BlockOrder {
        BlockOrder::new(self.blocks(), p, OrderMetric::MaxDist)
    }
}

/// Checks the structural invariants every implementation must maintain:
/// dense ids, per-block counts consistent with stored points, points inside
/// their block's footprint, and the total count matching `num_points`.
///
/// Exposed so that integration and property tests can validate any index.
pub fn check_index_invariants<I: SpatialIndex + ?Sized>(index: &I) -> Result<(), String> {
    let blocks = index.blocks();
    let mut total = 0usize;
    for (i, b) in blocks.iter().enumerate() {
        if b.id as usize != i {
            return Err(format!("block at position {i} has id {}", b.id));
        }
        let pts = index.block_points(b.id);
        if pts.len() != b.count {
            return Err(format!(
                "block {} count {} != stored points {}",
                b.id,
                b.count,
                pts.len()
            ));
        }
        for p in pts {
            if !b.mbr.contains(&p) {
                return Err(format!("point {p} outside block {} mbr {}", b.id, b.mbr));
            }
            if !index.bounds().contains(&p) {
                return Err(format!("point {p} outside index bounds"));
            }
        }
        total += pts.len();
    }
    if total != index.num_points() {
        return Err(format!(
            "sum of block counts {total} != num_points {}",
            index.num_points()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridIndex;

    #[test]
    fn default_methods_operate_on_blocks() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new(i, (i % 10) as f64, (i / 10) as f64))
            .collect();
        let g = GridIndex::build(pts.clone(), 4).unwrap();
        assert_eq!(g.num_points(), 100);
        assert_eq!(g.num_blocks(), g.blocks().len());
        assert_eq!(g.all_points().len(), 100);
        check_index_invariants(&g).unwrap();

        let origin = Point::anonymous(0.0, 0.0);
        let first = g.mindist_order(&origin).next().unwrap();
        assert_eq!(first.distance, 0.0);
        let mut max_order = g.maxdist_order(&origin);
        let first_max = max_order.next().unwrap();
        assert!(first_max.distance > 0.0);
    }
}
