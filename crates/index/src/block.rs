//! Blocks: the unit of space partitioning exposed by every index.
//!
//! Section 2 of the paper: "The quadtree and its variants are hierarchical
//! spatial data structures that recursively partition the underlying space
//! into blocks ... We assume that the index maintains the count of points in
//! each block." All of the paper's algorithms operate on blocks through
//! exactly three pieces of information — the block's spatial footprint, its
//! point count, and a way to get at the points inside it — so that is all
//! [`BlockMeta`] carries.

use twoknn_geometry::{maxdist, maxdist_sq, mindist, mindist_sq, Point, Rect};

/// Identifier of a block within its index.
///
/// Block ids are dense (`0..num_blocks`) so they can be used to index into
/// per-block side tables (e.g. the Candidate/Safe marks of Procedure 4).
pub type BlockId = u32;

/// Metadata of a single index block: footprint, point count, identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockMeta {
    /// Dense identifier of the block within its index.
    pub id: BlockId,
    /// Spatial footprint of the block.
    pub mbr: Rect,
    /// Number of points stored in the block.
    pub count: usize,
}

impl BlockMeta {
    /// Creates block metadata.
    pub fn new(id: BlockId, mbr: Rect, count: usize) -> Self {
        Self { id, mbr, count }
    }

    /// Center of the block (the reference location used by Block-Marking
    /// preprocessing, per Theorem 1).
    #[inline]
    pub fn center(&self) -> Point {
        self.mbr.center()
    }

    /// Length of the block's diagonal (`d` in Procedure 3).
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.mbr.diagonal()
    }

    /// MINDIST from a point to this block.
    #[inline]
    pub fn mindist(&self, p: &Point) -> f64 {
        mindist(p, &self.mbr)
    }

    /// Squared MINDIST from a point to this block.
    #[inline]
    pub fn mindist_sq(&self, p: &Point) -> f64 {
        mindist_sq(p, &self.mbr)
    }

    /// MAXDIST from a point to this block.
    #[inline]
    pub fn maxdist(&self, p: &Point) -> f64 {
        maxdist(p, &self.mbr)
    }

    /// Squared MAXDIST from a point to this block.
    #[inline]
    pub fn maxdist_sq(&self, p: &Point) -> f64 {
        maxdist_sq(p, &self.mbr)
    }

    /// Whether the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities_match_geometry() {
        let b = BlockMeta::new(3, Rect::new(0.0, 0.0, 3.0, 4.0), 17);
        assert_eq!(b.diagonal(), 5.0);
        let c = b.center();
        assert_eq!((c.x, c.y), (1.5, 2.0));
        assert!(!b.is_empty());
        assert!(BlockMeta::new(0, Rect::new(0.0, 0.0, 1.0, 1.0), 0).is_empty());
    }

    #[test]
    fn min_and_max_dist_delegate_to_metrics() {
        let b = BlockMeta::new(0, Rect::new(2.0, 2.0, 4.0, 6.0), 1);
        let p = Point::anonymous(0.0, 4.0);
        assert_eq!(b.mindist(&p), 2.0);
        assert!(b.maxdist(&p) > b.mindist(&p));
        assert!((b.mindist_sq(&p) - 4.0).abs() < 1e-12);
    }
}
