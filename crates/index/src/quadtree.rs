//! A point-region (PR) quadtree index.
//!
//! Section 2 of the paper: "The quadtree and its variants are hierarchical
//! spatial data structures that recursively partition the underlying space
//! into blocks until the number of points inside a block satisfies some
//! criterion (being less/greater than some threshold)." This implementation
//! splits a quadrant whenever it holds more than `capacity` points (up to a
//! maximum depth, to stay robust against duplicate points), and exposes its
//! **leaves** as the blocks consumed by the paper's algorithms.

use twoknn_geometry::{GeomResult, GeometryError, Point, Rect};

use crate::block::{BlockId, BlockMeta};
use crate::points::{BlockPoints, PointBlock};
use crate::traits::SpatialIndex;

/// Default maximum tree depth; bounds the tree in the presence of duplicate
/// or near-duplicate points.
/// The subdivision depth limit [`QuadtreeIndex::build`] uses. Exposed so
/// that callers reconstructing a quadtree with explicit bounds (e.g. a store
/// compaction rebuilding an index family-preservingly) can reproduce the
/// default build exactly.
pub const DEFAULT_MAX_DEPTH: usize = 16;

/// A PR-quadtree whose leaves are the index blocks.
#[derive(Debug, Clone)]
pub struct QuadtreeIndex {
    bounds: Rect,
    capacity: usize,
    max_depth: usize,
    blocks: Vec<BlockMeta>,
    /// Points of each leaf in SoA layout, indexed by block id.
    leaf_points: Vec<PointBlock>,
    /// Flattened tree used by [`SpatialIndex::locate`] for O(depth)
    /// descent; node 0 is the root.
    nodes: Vec<QuadNode>,
    num_points: usize,
}

/// A node of the flattened quadtree retained for point location.
#[derive(Debug, Clone)]
enum QuadNode {
    /// A leaf and the block (= leaf) id it was assigned.
    Leaf(BlockId),
    /// An internal node with its four children's node indices, in quadrant
    /// order (see [`quadrants`]).
    Internal([u32; 4]),
}

/// Intermediate node used only during construction.
enum BuildNode {
    Leaf(Vec<Point>),
    Internal(Box<[BuildNode; 4]>),
}

impl QuadtreeIndex {
    /// Builds a quadtree splitting quadrants that hold more than `capacity`
    /// points.
    ///
    /// # Errors
    ///
    /// Returns an error when `points` is empty or `capacity` is zero.
    pub fn build(points: Vec<Point>, capacity: usize) -> GeomResult<Self> {
        let bounds = Rect::bounding(&points)?;
        Self::build_with_bounds(points, bounds, capacity, DEFAULT_MAX_DEPTH)
    }

    /// Builds a quadtree over an explicit bounding rectangle with an explicit
    /// maximum depth.
    ///
    /// # Errors
    ///
    /// Returns an error when `capacity` is zero.
    pub fn build_with_bounds(
        points: Vec<Point>,
        bounds: Rect,
        capacity: usize,
        max_depth: usize,
    ) -> GeomResult<Self> {
        if capacity == 0 {
            return Err(GeometryError::EmptyPointSet);
        }
        // Guard against degenerate extents, as in the grid.
        let bounds = Rect::new(
            bounds.min_x,
            bounds.min_y,
            bounds.max_x.max(bounds.min_x + f64::EPSILON),
            bounds.max_y.max(bounds.min_y + f64::EPSILON),
        );
        let num_points = points.len();
        let root = build_node(points, &bounds, capacity, max_depth, 0);

        let mut blocks = Vec::new();
        let mut leaf_points = Vec::new();
        let mut nodes = Vec::new();
        flatten_tree(root, &bounds, &mut nodes, &mut blocks, &mut leaf_points);

        Ok(Self {
            bounds,
            capacity,
            max_depth,
            blocks,
            leaf_points,
            nodes,
            num_points,
        })
    }

    /// The split threshold used when building this tree.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The maximum depth used when building this tree.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

fn quadrants(r: &Rect) -> [Rect; 4] {
    let cx = (r.min_x + r.max_x) * 0.5;
    let cy = (r.min_y + r.max_y) * 0.5;
    [
        Rect::new(r.min_x, r.min_y, cx, cy),
        Rect::new(cx, r.min_y, r.max_x, cy),
        Rect::new(r.min_x, cy, cx, r.max_y),
        Rect::new(cx, cy, r.max_x, r.max_y),
    ]
}

/// Index (0..4) of the quadrant of `r` that point `p` belongs to.
/// Points on the split lines go to the upper/right quadrant, except points on
/// the outer boundary which stay inside `r` by construction.
fn quadrant_of(r: &Rect, p: &Point) -> usize {
    let cx = (r.min_x + r.max_x) * 0.5;
    let cy = (r.min_y + r.max_y) * 0.5;
    let right = usize::from(p.x >= cx);
    let top = usize::from(p.y >= cy);
    top * 2 + right
}

fn build_node(
    points: Vec<Point>,
    bounds: &Rect,
    capacity: usize,
    max_depth: usize,
    depth: usize,
) -> BuildNode {
    if points.len() <= capacity || depth >= max_depth {
        return BuildNode::Leaf(points);
    }
    let quads = quadrants(bounds);
    let mut children: [Vec<Point>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for p in points {
        children[quadrant_of(bounds, &p)].push(p);
    }
    let [c0, c1, c2, c3] = children;
    BuildNode::Internal(Box::new([
        build_node(c0, &quads[0], capacity, max_depth, depth + 1),
        build_node(c1, &quads[1], capacity, max_depth, depth + 1),
        build_node(c2, &quads[2], capacity, max_depth, depth + 1),
        build_node(c3, &quads[3], capacity, max_depth, depth + 1),
    ]))
}

/// Lowers the build tree into the flattened [`QuadNode`] array (returning
/// the node's index) while collecting leaves as blocks, depth-first in
/// quadrant order so block ids match the previous traversal exactly.
fn flatten_tree(
    node: BuildNode,
    bounds: &Rect,
    nodes: &mut Vec<QuadNode>,
    blocks: &mut Vec<BlockMeta>,
    leaf_points: &mut Vec<PointBlock>,
) -> u32 {
    match node {
        BuildNode::Leaf(points) => {
            let id = blocks.len() as BlockId;
            blocks.push(BlockMeta::new(id, *bounds, points.len()));
            leaf_points.push(PointBlock::from_points(&points));
            let at = nodes.len() as u32;
            nodes.push(QuadNode::Leaf(id));
            at
        }
        BuildNode::Internal(children) => {
            let quads = quadrants(bounds);
            let at = nodes.len() as u32;
            nodes.push(QuadNode::Internal([0; 4]));
            let mut child_nodes = [0u32; 4];
            for (slot, (child, quad)) in child_nodes
                .iter_mut()
                .zip(IntoIterator::into_iter(*children).zip(quads.iter()))
            {
                *slot = flatten_tree(child, quad, nodes, blocks, leaf_points);
            }
            nodes[at as usize] = QuadNode::Internal(child_nodes);
            at
        }
    }
}

impl SpatialIndex for QuadtreeIndex {
    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn num_points(&self) -> usize {
        self.num_points
    }

    fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    fn block_points(&self, id: BlockId) -> BlockPoints<'_> {
        self.leaf_points[id as usize].view()
    }

    fn locate(&self, p: &Point) -> Option<BlockId> {
        if !self.bounds.expanded(1e-9).contains(p) {
            return None;
        }
        // O(depth) descent: at every internal node, the quadrant test is the
        // same `quadrant_of` used to place points at build time, so a point
        // descends to exactly the leaf it was (or would have been) stored in.
        let mut at = 0usize;
        let mut rect = self.bounds;
        loop {
            match &self.nodes[at] {
                QuadNode::Leaf(id) => {
                    // Points in the epsilon ring just outside the root bounds
                    // reach a boundary leaf that does not actually contain
                    // them; report None for those, as the leaf scan did.
                    return self.blocks[*id as usize].mbr.contains(p).then_some(*id);
                }
                QuadNode::Internal(children) => {
                    let q = quadrant_of(&rect, p);
                    at = children[q] as usize;
                    rect = quadrants(&rect)[q];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_index_invariants;

    fn skewed_points(n: usize) -> Vec<Point> {
        // Half the points in a tiny corner region, half spread out: forces an
        // unbalanced tree.
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Point::new(i as u64, (i % 13) as f64 * 0.01, (i % 7) as f64 * 0.01)
                } else {
                    Point::new(i as u64, (i % 97) as f64, (i % 89) as f64)
                }
            })
            .collect()
    }

    #[test]
    fn build_and_invariants() {
        let q = QuadtreeIndex::build(skewed_points(2000), 32).unwrap();
        assert_eq!(q.num_points(), 2000);
        assert!(q.num_blocks() > 4);
        check_index_invariants(&q).unwrap();
    }

    #[test]
    fn leaves_respect_capacity_unless_max_depth_reached() {
        let q = QuadtreeIndex::build(skewed_points(5000), 64).unwrap();
        for b in q.blocks() {
            // Blocks at max depth may exceed capacity; they must be small.
            if b.count > q.capacity() {
                assert!(b.mbr.diagonal() < q.bounds().diagonal() / 2f64.powi(8));
            }
        }
    }

    #[test]
    fn rejects_empty_and_zero_capacity() {
        assert!(QuadtreeIndex::build(vec![], 8).is_err());
        assert!(QuadtreeIndex::build(skewed_points(10), 0).is_err());
    }

    /// Deterministic clustered layout: dense clouds around a few centers plus
    /// background noise — the worst case for the old linear leaf scan (many
    /// leaves) and for descent (deep, unbalanced tree).
    fn clustered_points(n: usize) -> Vec<Point> {
        let centers = [(12.0, 80.0), (55.0, 20.0), (83.0, 67.0), (40.0, 45.0)];
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(0x2545F4914F6CDD1D);
                let (cx, cy) = centers[i % centers.len()];
                if i % 11 == 0 {
                    // Background noise spread over the whole domain.
                    Point::new(
                        i as u64,
                        (h % 9_700) as f64 * 0.01,
                        ((h >> 20) % 9_700) as f64 * 0.01,
                    )
                } else {
                    // Tight cloud around the cluster center.
                    Point::new(
                        i as u64,
                        cx + (h % 400) as f64 * 0.003,
                        cy + ((h >> 24) % 400) as f64 * 0.003,
                    )
                }
            })
            .collect()
    }

    /// The O(depth) descent must agree with the old O(num_blocks) linear
    /// scan — on every indexed point and on arbitrary probe locations.
    #[test]
    fn locate_descent_agrees_with_linear_scan_on_clustered_data() {
        let q = QuadtreeIndex::build(clustered_points(4_000), 16).unwrap();
        assert!(q.num_blocks() > 16, "layout must actually split");
        let scan_locate = |p: &Point| -> Option<BlockId> {
            if !q.bounds().expanded(1e-9).contains(p) {
                return None;
            }
            q.blocks().iter().find(|b| b.mbr.contains(p)).map(|b| b.id)
        };
        for p in q.all_points() {
            assert_eq!(q.locate(&p), scan_locate(&p), "indexed point {p:?}");
        }
        // Probe points off the data distribution, including out-of-bounds.
        for i in 0..2_000u64 {
            let probe = Point::anonymous((i % 120) as f64 - 10.0, (i / 17) as f64 - 10.0);
            let by_descent = q.locate(&probe);
            let by_scan = scan_locate(&probe);
            // On split boundaries the closed leaf rectangles overlap and the
            // scan reports the first overlapping leaf; descent follows the
            // build-time placement rule. Both answers must contain the probe.
            match (by_descent, by_scan) {
                (Some(d), Some(s)) => {
                    assert!(q.blocks()[d as usize].mbr.contains(&probe));
                    assert!(q.blocks()[s as usize].mbr.contains(&probe));
                }
                (d, s) => assert_eq!(d, s, "probe {probe:?}"),
            }
        }
    }

    #[test]
    fn locate_finds_a_containing_leaf() {
        let q = QuadtreeIndex::build(skewed_points(1000), 16).unwrap();
        for p in q.all_points().iter().take(100) {
            let id = q.locate(p).expect("point inside bounds");
            assert!(q.blocks()[id as usize].mbr.contains(p));
        }
        assert_eq!(q.locate(&Point::anonymous(1e12, 0.0)), None);
    }

    #[test]
    fn duplicate_points_terminate_via_max_depth() {
        let pts: Vec<Point> = (0..500).map(|i| Point::new(i, 5.0, 5.0)).collect();
        let q = QuadtreeIndex::build(pts, 4).unwrap();
        check_index_invariants(&q).unwrap();
        assert_eq!(q.num_points(), 500);
    }

    #[test]
    fn small_input_is_single_leaf() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i, i as f64, 0.0)).collect();
        let q = QuadtreeIndex::build(pts, 10).unwrap();
        assert_eq!(q.num_blocks(), 1);
        assert_eq!(q.blocks()[0].count, 5);
    }
}
