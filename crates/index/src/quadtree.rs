//! A point-region (PR) quadtree index.
//!
//! Section 2 of the paper: "The quadtree and its variants are hierarchical
//! spatial data structures that recursively partition the underlying space
//! into blocks until the number of points inside a block satisfies some
//! criterion (being less/greater than some threshold)." This implementation
//! splits a quadrant whenever it holds more than `capacity` points (up to a
//! maximum depth, to stay robust against duplicate points), and exposes its
//! **leaves** as the blocks consumed by the paper's algorithms.

use twoknn_geometry::{GeomResult, GeometryError, Point, Rect};

use crate::block::{BlockId, BlockMeta};
use crate::traits::SpatialIndex;

/// Default maximum tree depth; bounds the tree in the presence of duplicate
/// or near-duplicate points.
const DEFAULT_MAX_DEPTH: usize = 16;

/// A PR-quadtree whose leaves are the index blocks.
#[derive(Debug, Clone)]
pub struct QuadtreeIndex {
    bounds: Rect,
    capacity: usize,
    max_depth: usize,
    blocks: Vec<BlockMeta>,
    leaf_points: Vec<Vec<Point>>,
    num_points: usize,
}

/// Intermediate node used only during construction.
enum BuildNode {
    Leaf(Vec<Point>),
    Internal(Box<[BuildNode; 4]>),
}

impl QuadtreeIndex {
    /// Builds a quadtree splitting quadrants that hold more than `capacity`
    /// points.
    ///
    /// # Errors
    ///
    /// Returns an error when `points` is empty or `capacity` is zero.
    pub fn build(points: Vec<Point>, capacity: usize) -> GeomResult<Self> {
        let bounds = Rect::bounding(&points)?;
        Self::build_with_bounds(points, bounds, capacity, DEFAULT_MAX_DEPTH)
    }

    /// Builds a quadtree over an explicit bounding rectangle with an explicit
    /// maximum depth.
    ///
    /// # Errors
    ///
    /// Returns an error when `capacity` is zero.
    pub fn build_with_bounds(
        points: Vec<Point>,
        bounds: Rect,
        capacity: usize,
        max_depth: usize,
    ) -> GeomResult<Self> {
        if capacity == 0 {
            return Err(GeometryError::EmptyPointSet);
        }
        // Guard against degenerate extents, as in the grid.
        let bounds = Rect::new(
            bounds.min_x,
            bounds.min_y,
            bounds.max_x.max(bounds.min_x + f64::EPSILON),
            bounds.max_y.max(bounds.min_y + f64::EPSILON),
        );
        let num_points = points.len();
        let root = build_node(points, &bounds, capacity, max_depth, 0);

        let mut blocks = Vec::new();
        let mut leaf_points = Vec::new();
        collect_leaves(&root, &bounds, &mut blocks, &mut leaf_points);

        Ok(Self {
            bounds,
            capacity,
            max_depth,
            blocks,
            leaf_points,
            num_points,
        })
    }

    /// The split threshold used when building this tree.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The maximum depth used when building this tree.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

fn quadrants(r: &Rect) -> [Rect; 4] {
    let cx = (r.min_x + r.max_x) * 0.5;
    let cy = (r.min_y + r.max_y) * 0.5;
    [
        Rect::new(r.min_x, r.min_y, cx, cy),
        Rect::new(cx, r.min_y, r.max_x, cy),
        Rect::new(r.min_x, cy, cx, r.max_y),
        Rect::new(cx, cy, r.max_x, r.max_y),
    ]
}

/// Index (0..4) of the quadrant of `r` that point `p` belongs to.
/// Points on the split lines go to the upper/right quadrant, except points on
/// the outer boundary which stay inside `r` by construction.
fn quadrant_of(r: &Rect, p: &Point) -> usize {
    let cx = (r.min_x + r.max_x) * 0.5;
    let cy = (r.min_y + r.max_y) * 0.5;
    let right = usize::from(p.x >= cx);
    let top = usize::from(p.y >= cy);
    top * 2 + right
}

fn build_node(
    points: Vec<Point>,
    bounds: &Rect,
    capacity: usize,
    max_depth: usize,
    depth: usize,
) -> BuildNode {
    if points.len() <= capacity || depth >= max_depth {
        return BuildNode::Leaf(points);
    }
    let quads = quadrants(bounds);
    let mut children: [Vec<Point>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for p in points {
        children[quadrant_of(bounds, &p)].push(p);
    }
    let [c0, c1, c2, c3] = children;
    BuildNode::Internal(Box::new([
        build_node(c0, &quads[0], capacity, max_depth, depth + 1),
        build_node(c1, &quads[1], capacity, max_depth, depth + 1),
        build_node(c2, &quads[2], capacity, max_depth, depth + 1),
        build_node(c3, &quads[3], capacity, max_depth, depth + 1),
    ]))
}

fn collect_leaves(
    node: &BuildNode,
    bounds: &Rect,
    blocks: &mut Vec<BlockMeta>,
    leaf_points: &mut Vec<Vec<Point>>,
) {
    match node {
        BuildNode::Leaf(points) => {
            let id = blocks.len() as BlockId;
            blocks.push(BlockMeta::new(id, *bounds, points.len()));
            leaf_points.push(points.clone());
        }
        BuildNode::Internal(children) => {
            let quads = quadrants(bounds);
            for (child, quad) in children.iter().zip(quads.iter()) {
                collect_leaves(child, quad, blocks, leaf_points);
            }
        }
    }
}

impl SpatialIndex for QuadtreeIndex {
    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn num_points(&self) -> usize {
        self.num_points
    }

    fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    fn block_points(&self, id: BlockId) -> &[Point] {
        &self.leaf_points[id as usize]
    }

    fn locate(&self, p: &Point) -> Option<BlockId> {
        if !self.bounds.expanded(1e-9).contains(p) {
            return None;
        }
        // Leaves tile the space, so the first leaf whose footprint contains p
        // is the answer. This is a linear scan over the leaves — O(num_blocks)
        // per lookup; fine at current scales, but a tree descent would make it
        // O(depth) if locate() ever shows up in profiles.
        self.blocks.iter().find(|b| b.mbr.contains(p)).map(|b| b.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_index_invariants;

    fn skewed_points(n: usize) -> Vec<Point> {
        // Half the points in a tiny corner region, half spread out: forces an
        // unbalanced tree.
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Point::new(i as u64, (i % 13) as f64 * 0.01, (i % 7) as f64 * 0.01)
                } else {
                    Point::new(i as u64, (i % 97) as f64, (i % 89) as f64)
                }
            })
            .collect()
    }

    #[test]
    fn build_and_invariants() {
        let q = QuadtreeIndex::build(skewed_points(2000), 32).unwrap();
        assert_eq!(q.num_points(), 2000);
        assert!(q.num_blocks() > 4);
        check_index_invariants(&q).unwrap();
    }

    #[test]
    fn leaves_respect_capacity_unless_max_depth_reached() {
        let q = QuadtreeIndex::build(skewed_points(5000), 64).unwrap();
        for b in q.blocks() {
            // Blocks at max depth may exceed capacity; they must be small.
            if b.count > q.capacity() {
                assert!(b.mbr.diagonal() < q.bounds().diagonal() / 2f64.powi(8));
            }
        }
    }

    #[test]
    fn rejects_empty_and_zero_capacity() {
        assert!(QuadtreeIndex::build(vec![], 8).is_err());
        assert!(QuadtreeIndex::build(skewed_points(10), 0).is_err());
    }

    #[test]
    fn locate_finds_a_containing_leaf() {
        let q = QuadtreeIndex::build(skewed_points(1000), 16).unwrap();
        for p in q.all_points().iter().take(100) {
            let id = q.locate(p).expect("point inside bounds");
            assert!(q.blocks()[id as usize].mbr.contains(p));
        }
        assert_eq!(q.locate(&Point::anonymous(1e12, 0.0)), None);
    }

    #[test]
    fn duplicate_points_terminate_via_max_depth() {
        let pts: Vec<Point> = (0..500).map(|i| Point::new(i, 5.0, 5.0)).collect();
        let q = QuadtreeIndex::build(pts, 4).unwrap();
        check_index_invariants(&q).unwrap();
        assert_eq!(q.num_points(), 500);
    }

    #[test]
    fn small_input_is_single_leaf() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i, i as f64, 0.0)).collect();
        let q = QuadtreeIndex::build(pts, 10).unwrap();
        assert_eq!(q.num_blocks(), 1);
        assert_eq!(q.blocks()[0].count, 5);
    }
}
