//! Partitions: a coarse spatial tier above blocks.
//!
//! A sharded relation snapshot concatenates the blocks of several spatial
//! shards into one dense block-id space. [`PartitionMeta`] describes one such
//! shard from the query side: a tight MBR over the shard's non-empty blocks
//! plus the contiguous range of composed block ids the shard owns. The kNN
//! scatter-gather driver ([`crate::get_knn`]) visits partitions in MINDIST
//! order and skips a whole partition once its MINDIST² cannot beat the
//! running k-th distance τ² — the paper's block pruning lifted one level up.
//!
//! Indexes that are not sharded simply report no partitions
//! ([`crate::SpatialIndex::partitions`] defaults to `None`) and the driver
//! falls back to the flat single-locality scan.

use twoknn_geometry::{mindist_sq, Point, Rect};

/// Metadata of one spatial partition (shard) of an index: a tight footprint
/// and the contiguous slice of block ids it owns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionMeta {
    /// Tight bounding rectangle over the partition's non-empty blocks (falls
    /// back to the shard's routing cell when the shard holds no points).
    pub mbr: Rect,
    /// First composed block id owned by the partition.
    pub first_block: u32,
    /// Number of consecutive block ids owned by the partition.
    pub num_blocks: u32,
    /// Number of points stored in the partition.
    pub count: usize,
}

impl PartitionMeta {
    /// Creates partition metadata.
    pub fn new(mbr: Rect, first_block: u32, num_blocks: u32, count: usize) -> Self {
        Self {
            mbr,
            first_block,
            num_blocks,
            count,
        }
    }

    /// Squared MINDIST from a point to the partition's footprint — the shard
    /// pruning key.
    #[inline]
    pub fn mindist_sq(&self, p: &Point) -> f64 {
        mindist_sq(p, &self.mbr)
    }

    /// The composed block-id range `first_block..first_block + num_blocks`.
    #[inline]
    pub fn block_range(&self) -> std::ops::Range<usize> {
        let first = self.first_block as usize;
        first..first + self.num_blocks as usize
    }

    /// Whether the partition holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_and_mindist() {
        let p = PartitionMeta::new(Rect::new(2.0, 0.0, 4.0, 2.0), 8, 4, 10);
        assert_eq!(p.block_range(), 8..12);
        assert!(!p.is_empty());
        let q = Point::anonymous(0.0, 1.0);
        assert!((p.mindist_sq(&q) - 4.0).abs() < 1e-12);
        assert_eq!(p.mindist_sq(&Point::anonymous(3.0, 1.0)), 0.0);
    }

    #[test]
    fn empty_partition_is_flagged() {
        let p = PartitionMeta::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0, 0, 0);
        assert!(p.is_empty());
        assert_eq!(p.block_range(), 0..0);
    }
}
