//! MINDIST and MAXDIST orderings of index blocks.
//!
//! Section 2: "In the algorithms we present, we process the blocks in a
//! certain order according to their MINDIST (or MAXDIST) from a certain
//! point. An ordering of the blocks based on the MINDIST or MAXDIST from a
//! certain point is termed a MINDIST or MAXDIST ordering, respectively."
//!
//! The orderings are lazy: blocks are pushed into a binary heap keyed by the
//! (squared) distance and popped on demand, because most of the paper's scans
//! terminate early (e.g. Procedure 1 stops as soon as the accumulated count
//! exceeds `k⋈`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use twoknn_geometry::Point;

use crate::block::BlockMeta;

/// A totally-ordered wrapper around a non-NaN `f64`.
///
/// Distances produced by MINDIST/MAXDIST over finite coordinates are always
/// finite, so the total order is well-defined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(pub f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("distance must not be NaN")
    }
}

/// Which distance metric a [`BlockOrder`] sorts by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderMetric {
    /// Increasing minimum possible distance from the query point.
    MinDist,
    /// Increasing maximum possible distance from the query point.
    MaxDist,
}

/// An entry yielded by a [`BlockOrder`]: the block plus the (non-squared)
/// distance it was ordered by.
#[derive(Debug, Clone, Copy)]
pub struct OrderedBlock {
    /// The block.
    pub block: BlockMeta,
    /// The ordering distance (MINDIST or MAXDIST from the query point,
    /// depending on the ordering's metric).
    pub distance: f64,
}

#[derive(Debug)]
struct HeapEntry {
    key: OrderedF64,
    block: BlockMeta,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest key first.
        other.key.cmp(&self.key)
    }
}

/// Opaque reusable storage for a [`BlockOrder`]'s internal heap.
///
/// A fresh ordering normally allocates a heap of `num_blocks` entries;
/// query-per-point workloads (kNN joins, batched selects) build two orderings
/// per query. [`BlockOrder::new_in`] takes the entry buffer out of a storage
/// and [`BlockOrder::recycle`] puts it back, so the allocation is paid once
/// per [`ScratchSpace`](crate::ScratchSpace), not once per query.
#[derive(Debug, Default)]
pub struct OrderStorage(Vec<HeapEntry>);

impl OrderStorage {
    /// An empty storage; the buffer grows to `num_blocks` on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A lazy MINDIST or MAXDIST ordering over a set of blocks.
///
/// Construction is `O(n)` (heapify); each call to [`BlockOrder::next`] is
/// `O(log n)`. Scans that stop early therefore do not pay for sorting the
/// whole block set.
#[derive(Debug)]
pub struct BlockOrder {
    heap: BinaryHeap<HeapEntry>,
    metric: OrderMetric,
}

impl BlockOrder {
    /// Builds an ordering of `blocks` by increasing distance from `origin`.
    pub fn new(blocks: &[BlockMeta], origin: &Point, metric: OrderMetric) -> Self {
        Self::new_in(blocks, origin, metric, &mut OrderStorage::new())
    }

    /// Builds an ordering reusing `storage`'s buffer for the internal heap.
    /// Give the buffer back with [`BlockOrder::recycle`] once the scan is
    /// done (dropping the ordering instead simply forfeits the reuse).
    pub fn new_in(
        blocks: &[BlockMeta],
        origin: &Point,
        metric: OrderMetric,
        storage: &mut OrderStorage,
    ) -> Self {
        let mut entries = std::mem::take(&mut storage.0);
        entries.clear();
        entries.extend(blocks.iter().map(|b| {
            let d = match metric {
                OrderMetric::MinDist => b.mindist_sq(origin),
                OrderMetric::MaxDist => b.maxdist_sq(origin),
            };
            HeapEntry {
                key: OrderedF64(d),
                block: *b,
            }
        }));
        Self {
            heap: BinaryHeap::from(entries),
            metric,
        }
    }

    /// Returns the internal buffer to `storage` for the next ordering.
    pub fn recycle(self, storage: &mut OrderStorage) {
        storage.0 = self.heap.into_vec();
    }

    /// Convenience constructor for a MINDIST ordering.
    pub fn mindist(blocks: &[BlockMeta], origin: &Point) -> Self {
        Self::new(blocks, origin, OrderMetric::MinDist)
    }

    /// Convenience constructor for a MAXDIST ordering.
    pub fn maxdist(blocks: &[BlockMeta], origin: &Point) -> Self {
        Self::new(blocks, origin, OrderMetric::MaxDist)
    }

    /// The metric this ordering sorts by.
    pub fn metric(&self) -> OrderMetric {
        self.metric
    }

    /// Number of blocks not yet yielded.
    pub fn remaining(&self) -> usize {
        self.heap.len()
    }

    /// Pops the next block in increasing distance order.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<OrderedBlock> {
        self.heap.pop().map(|e| OrderedBlock {
            block: e.block,
            distance: e.key.0.sqrt(),
        })
    }
}

impl Iterator for BlockOrder {
    type Item = OrderedBlock;

    fn next(&mut self) -> Option<Self::Item> {
        BlockOrder::next(self)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.heap.len(), Some(self.heap.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_geometry::Rect;

    fn blocks() -> Vec<BlockMeta> {
        // Three unit blocks in a row along the x axis.
        (0..3)
            .map(|i| {
                BlockMeta::new(
                    i as u32,
                    Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0),
                    (i + 1) as usize,
                )
            })
            .collect()
    }

    #[test]
    fn ordered_f64_total_order() {
        let mut v = vec![OrderedF64(3.0), OrderedF64(1.0), OrderedF64(2.0)];
        v.sort();
        assert_eq!(v, vec![OrderedF64(1.0), OrderedF64(2.0), OrderedF64(3.0)]);
    }

    #[test]
    fn mindist_order_yields_nearest_block_first() {
        let blocks = blocks();
        let origin = Point::anonymous(-1.0, 0.5);
        let order: Vec<_> = BlockOrder::mindist(&blocks, &origin)
            .map(|ob| ob.block.id)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn maxdist_order_can_differ_from_mindist_order() {
        // A big far block vs a small near block: the near block has smaller
        // MINDIST, but MAXDIST ordering only looks at the far corner.
        let blocks = vec![
            BlockMeta::new(0, Rect::new(0.0, 0.0, 10.0, 10.0), 5),
            BlockMeta::new(1, Rect::new(11.0, 0.0, 12.0, 1.0), 5),
        ];
        let origin = Point::anonymous(0.0, 0.0);
        let min_first = BlockOrder::mindist(&blocks, &origin).next().unwrap();
        let max_first = BlockOrder::maxdist(&blocks, &origin).next().unwrap();
        assert_eq!(min_first.block.id, 0);
        assert_eq!(max_first.block.id, 1);
    }

    #[test]
    fn distances_are_non_decreasing() {
        let blocks = blocks();
        let origin = Point::anonymous(1.7, 0.3);
        for metric in [OrderMetric::MinDist, OrderMetric::MaxDist] {
            let mut prev = f64::NEG_INFINITY;
            for ob in BlockOrder::new(&blocks, &origin, metric) {
                assert!(ob.distance >= prev);
                prev = ob.distance;
            }
        }
    }

    #[test]
    fn recycled_storage_reproduces_the_same_ordering() {
        let blocks = blocks();
        let origin = Point::anonymous(-1.0, 0.5);
        let mut storage = OrderStorage::new();
        let fresh: Vec<u32> = BlockOrder::mindist(&blocks, &origin)
            .map(|ob| ob.block.id)
            .collect();
        for _ in 0..3 {
            let mut order =
                BlockOrder::new_in(&blocks, &origin, OrderMetric::MinDist, &mut storage);
            let mut ids = Vec::new();
            while let Some(ob) = order.next() {
                ids.push(ob.block.id);
            }
            assert_eq!(ids, fresh);
            order.recycle(&mut storage);
        }
    }

    #[test]
    fn remaining_counts_down() {
        let blocks = blocks();
        let mut order = BlockOrder::mindist(&blocks, &Point::anonymous(0.0, 0.0));
        assert_eq!(order.remaining(), 3);
        order.next();
        assert_eq!(order.remaining(), 2);
    }
}
