//! # twoknn-index
//!
//! Block-based in-memory spatial indexes and the neighborhood / locality
//! machinery required by *"Spatial Queries with Two kNN Predicates"* (Aly,
//! Aref, Ouzzani — VLDB 2012).
//!
//! The paper's algorithms are index-agnostic (Section 2): they only require a
//! space-partitioning index that exposes *blocks* with per-block point counts
//! and supports MINDIST/MAXDIST orderings of blocks around a query point.
//! This crate provides:
//!
//! * [`SpatialIndex`] — the trait capturing exactly those requirements;
//! * [`GridIndex`] — the simple grid used in the paper's evaluation (§6);
//! * [`QuadtreeIndex`] — a PR-quadtree;
//! * [`StrRTree`] — an STR bulk-loaded R-tree whose leaves act as blocks;
//! * [`PointBlock`] / [`BlockPoints`] — structure-of-arrays block storage
//!   (parallel `ids`/`xs`/`ys` columns) shared by every index, so per-block
//!   distance scans run over contiguous `&[f64]` slices;
//! * [`BlockOrder`] — lazy MINDIST/MAXDIST orderings;
//! * [`Locality`] / [`get_knn`] — the locality-based kNN algorithm of
//!   Sankaranarayanan, Samet & Varshney used by the paper for `getkNN`,
//!   running the batched kth-distance kernel of [`KthHeap`];
//! * [`PartitionMeta`] — an optional coarse *shard* tier above blocks: an
//!   index that reports partitions ([`SpatialIndex::partitions`]) is queried
//!   scatter-gather style, visiting shards in MINDIST order against one
//!   shared kth-distance heap and skipping every shard whose MINDIST²
//!   exceeds the running τ² — the paper's block pruning lifted one level up
//!   (counted by `Metrics::shards_scanned` / `shards_pruned`);
//! * [`ScratchSpace`] — reusable per-query transient state (candidate heap,
//!   order heaps, distance buffer); the plain kNN entry points borrow a
//!   thread-local one via [`with_thread_scratch`], the `*_in` variants
//!   ([`get_knn_in`] etc.) take one explicitly;
//! * [`Neighborhood`] — the k-nearest-neighbor set with the accessors the
//!   two-predicate algorithms need (nearest/farthest member, intersection);
//! * [`Metrics`] — machine-independent work counters used by the benchmark
//!   harness alongside wall-clock time.
//!
//! ## SoA layout
//!
//! Blocks store points as three parallel columns instead of `Vec<Point>`:
//! the distance kernels ([`twoknn_geometry::euclidean_sq_batch`]) then see a
//! contiguous 8-byte stride per column and auto-vectorize. [`BlockPoints`]
//! (what [`SpatialIndex::block_points`] returns) still iterates as `Point`s
//! by value, so row-oriented consumers are unaffected by the layout.
//!
//! ## Example
//!
//! ```
//! use twoknn_geometry::Point;
//! use twoknn_index::{get_knn, GridIndex, Metrics, SpatialIndex};
//!
//! let points: Vec<Point> = (0..1000)
//!     .map(|i| Point::new(i, (i % 37) as f64, (i % 53) as f64))
//!     .collect();
//! let index = GridIndex::build(points, 16).unwrap();
//! let mut metrics = Metrics::default();
//! let neighborhood = get_knn(&index, &Point::anonymous(10.0, 10.0), 5, &mut metrics);
//! assert_eq!(neighborhood.len(), 5);
//! assert!(index.num_blocks() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod block;
mod grid;
mod knn;
mod locality;
mod metrics;
mod neighborhood;
mod ordering;
mod partition;
mod points;
mod quadtree;
mod rtree;
mod scratch;
mod traits;

pub use block::{BlockId, BlockMeta};
pub use grid::GridIndex;
pub use knn::{
    brute_force_knn, brute_force_knn_filtered, get_knn, get_knn_best_first, get_knn_best_first_in,
    get_knn_bounded, get_knn_bounded_in, get_knn_filtered, get_knn_filtered_in, get_knn_in,
    get_knn_scalar, neighborhood_from_locality,
};
pub use locality::Locality;
pub use metrics::Metrics;
pub use neighborhood::{Neighbor, Neighborhood};
pub use ordering::{BlockOrder, OrderMetric, OrderStorage, OrderedBlock, OrderedF64};
pub use partition::PartitionMeta;
pub use points::{BlockPoints, BlockPointsIter, PointBlock};
pub use quadtree::{QuadtreeIndex, DEFAULT_MAX_DEPTH};
pub use rtree::StrRTree;
pub use scratch::{with_thread_scratch, KthHeap, ScratchSpace};
pub use traits::{check_index_invariants, SpatialIndex};

// The parallel executors in `twoknn-core` share index references across
// worker threads, so every index implementation must be `Send + Sync`. The
// structures are plain owned data without interior mutability, so the auto
// traits apply; these assertions turn an accidental regression (e.g. adding
// an `Rc` or `Cell` field) into a compile error instead of a downstream one.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GridIndex>();
    assert_send_sync::<QuadtreeIndex>();
    assert_send_sync::<StrRTree>();
    assert_send_sync::<Metrics>();
    assert_send_sync::<Neighborhood>();
    assert_send_sync::<BlockMeta>();
    assert_send_sync::<PointBlock>();
    assert_send_sync::<ScratchSpace>();
};
