//! # twoknn-index
//!
//! Block-based in-memory spatial indexes and the neighborhood / locality
//! machinery required by *"Spatial Queries with Two kNN Predicates"* (Aly,
//! Aref, Ouzzani — VLDB 2012).
//!
//! The paper's algorithms are index-agnostic (Section 2): they only require a
//! space-partitioning index that exposes *blocks* with per-block point counts
//! and supports MINDIST/MAXDIST orderings of blocks around a query point.
//! This crate provides:
//!
//! * [`SpatialIndex`] — the trait capturing exactly those requirements;
//! * [`GridIndex`] — the simple grid used in the paper's evaluation (§6);
//! * [`QuadtreeIndex`] — a PR-quadtree;
//! * [`StrRTree`] — an STR bulk-loaded R-tree whose leaves act as blocks;
//! * [`BlockOrder`] — lazy MINDIST/MAXDIST orderings;
//! * [`Locality`] / [`get_knn`] — the locality-based kNN algorithm of
//!   Sankaranarayanan, Samet & Varshney used by the paper for `getkNN`;
//! * [`Neighborhood`] — the k-nearest-neighbor set with the accessors the
//!   two-predicate algorithms need (nearest/farthest member, intersection);
//! * [`Metrics`] — machine-independent work counters used by the benchmark
//!   harness alongside wall-clock time.
//!
//! ## Example
//!
//! ```
//! use twoknn_geometry::Point;
//! use twoknn_index::{get_knn, GridIndex, Metrics, SpatialIndex};
//!
//! let points: Vec<Point> = (0..1000)
//!     .map(|i| Point::new(i, (i % 37) as f64, (i % 53) as f64))
//!     .collect();
//! let index = GridIndex::build(points, 16).unwrap();
//! let mut metrics = Metrics::default();
//! let neighborhood = get_knn(&index, &Point::anonymous(10.0, 10.0), 5, &mut metrics);
//! assert_eq!(neighborhood.len(), 5);
//! assert!(index.num_blocks() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod block;
mod grid;
mod knn;
mod locality;
mod metrics;
mod neighborhood;
mod ordering;
mod quadtree;
mod rtree;
mod traits;

pub use block::{BlockId, BlockMeta};
pub use grid::GridIndex;
pub use knn::{
    brute_force_knn, get_knn, get_knn_best_first, get_knn_bounded, neighborhood_from_locality,
};
pub use locality::Locality;
pub use metrics::Metrics;
pub use neighborhood::{Neighbor, Neighborhood};
pub use ordering::{BlockOrder, OrderMetric, OrderedBlock, OrderedF64};
pub use quadtree::{QuadtreeIndex, DEFAULT_MAX_DEPTH};
pub use rtree::StrRTree;
pub use traits::{check_index_invariants, SpatialIndex};

// The parallel executors in `twoknn-core` share index references across
// worker threads, so every index implementation must be `Send + Sync`. The
// structures are plain owned data without interior mutability, so the auto
// traits apply; these assertions turn an accidental regression (e.g. adding
// an `Rc` or `Cell` field) into a compile error instead of a downstream one.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GridIndex>();
    assert_send_sync::<QuadtreeIndex>();
    assert_send_sync::<StrRTree>();
    assert_send_sync::<Metrics>();
    assert_send_sync::<Neighborhood>();
    assert_send_sync::<BlockMeta>();
};
