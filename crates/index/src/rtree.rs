//! An STR (Sort-Tile-Recursive) bulk-loaded R-tree.
//!
//! The paper notes its algorithms apply to "an R-tree, or any of their
//! variants" (Section 2). For the purposes of the two-kNN algorithms, only
//! the *leaf level* matters: leaves are the blocks that carry point counts
//! and footprints. This implementation bulk-loads the data with the classic
//! STR packing (Leutenegger et al.): sort by x, slice into vertical strips,
//! sort each strip by y, and cut into leaves of at most `leaf_capacity`
//! points. Leaf MBRs are tight (unlike grid/quadtree cells, they do not tile
//! the space), which exercises the algorithms' independence from the block
//! geometry.

use twoknn_geometry::{GeomResult, GeometryError, Point, Rect};

use crate::block::{BlockId, BlockMeta};
use crate::points::{BlockPoints, PointBlock};
use crate::traits::SpatialIndex;

/// A bulk-loaded R-tree exposing its leaves as blocks.
#[derive(Debug, Clone)]
pub struct StrRTree {
    bounds: Rect,
    leaf_capacity: usize,
    blocks: Vec<BlockMeta>,
    /// Points of each leaf in SoA layout, indexed by block id.
    leaf_points: Vec<PointBlock>,
    num_points: usize,
}

impl StrRTree {
    /// Bulk-loads an STR R-tree with leaves of at most `leaf_capacity` points.
    ///
    /// # Errors
    ///
    /// Returns an error when `points` is empty or `leaf_capacity` is zero.
    pub fn build(mut points: Vec<Point>, leaf_capacity: usize) -> GeomResult<Self> {
        if leaf_capacity == 0 {
            return Err(GeometryError::EmptyPointSet);
        }
        let bounds = Rect::bounding(&points)?;
        let num_points = points.len();

        let n = points.len();
        let leaves_needed = n.div_ceil(leaf_capacity);
        let strips = (leaves_needed as f64).sqrt().ceil() as usize;
        let points_per_strip = n.div_ceil(strips);

        points.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("finite coordinates"));

        let mut blocks = Vec::with_capacity(leaves_needed);
        let mut leaf_points = Vec::with_capacity(leaves_needed);
        for strip in points.chunks(points_per_strip.max(1)) {
            let mut strip: Vec<Point> = strip.to_vec();
            strip.sort_by(|a, b| a.y.partial_cmp(&b.y).expect("finite coordinates"));
            for leaf in strip.chunks(leaf_capacity) {
                let mbr = Rect::bounding(leaf).expect("leaf chunks are non-empty");
                let id = blocks.len() as BlockId;
                blocks.push(BlockMeta::new(id, mbr, leaf.len()));
                leaf_points.push(PointBlock::from_points(leaf));
            }
        }

        Ok(Self {
            bounds,
            leaf_capacity,
            blocks,
            leaf_points,
            num_points,
        })
    }

    /// The maximum number of points stored in a leaf.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }
}

impl SpatialIndex for StrRTree {
    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn num_points(&self) -> usize {
        self.num_points
    }

    fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    fn block_points(&self, id: BlockId) -> BlockPoints<'_> {
        self.leaf_points[id as usize].view()
    }

    fn locate(&self, p: &Point) -> Option<BlockId> {
        // Leaf MBRs may overlap and do not tile the space: prefer a leaf that
        // actually stores a point with the same id or coordinates, fall back
        // to any containing leaf.
        let mut containing = None;
        for b in &self.blocks {
            if b.mbr.contains(p) {
                containing.get_or_insert(b.id);
                if self.leaf_points[b.id as usize]
                    .iter()
                    .any(|q| q.id == p.id && q.x == p.x && q.y == p.y)
                {
                    return Some(b.id);
                }
            }
        }
        containing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_index_invariants;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    ((i * 37) % 101) as f64 * 1.7,
                    ((i * 61) % 89) as f64 * 2.3,
                )
            })
            .collect()
    }

    #[test]
    fn build_and_invariants() {
        let t = StrRTree::build(pts(1234), 32).unwrap();
        assert_eq!(t.num_points(), 1234);
        check_index_invariants(&t).unwrap();
        for b in t.blocks() {
            assert!(b.count <= t.leaf_capacity());
            assert!(b.count > 0, "STR leaves are never empty");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(StrRTree::build(vec![], 16).is_err());
        assert!(StrRTree::build(pts(10), 0).is_err());
    }

    #[test]
    fn locate_prefers_the_storing_leaf() {
        let t = StrRTree::build(pts(500), 16).unwrap();
        for p in t.all_points().iter().take(200) {
            let id = t.locate(p).expect("indexed point is locatable");
            assert!(t
                .block_points(id)
                .iter()
                .any(|q| q.id == p.id && q.x == p.x && q.y == p.y));
        }
    }

    #[test]
    fn all_points_preserved() {
        let input = pts(777);
        let t = StrRTree::build(input.clone(), 25).unwrap();
        let mut got: Vec<u64> = t.all_points().iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = input.iter().map(|p| p.id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn single_point_tree() {
        let t = StrRTree::build(vec![Point::new(9, 1.0, 2.0)], 8).unwrap();
        assert_eq!(t.num_blocks(), 1);
        assert_eq!(t.blocks()[0].count, 1);
        assert_eq!(t.locate(&Point::new(9, 1.0, 2.0)), Some(0));
    }
}
