//! Reusable per-query scratch space and the batched "scan block, update
//! kth-distance threshold" kernel.
//!
//! Every `getkNN` call needs the same transient structures: two block-order
//! heaps (the MAXDIST and MINDIST phases of locality construction), the
//! locality block list and its membership bitmap, a distance buffer for the
//! batched block scan, and the bounded candidate heap that tracks the current
//! k-th distance. Allocating them per query dominates the cost of small-`k`
//! selects, so [`ScratchSpace`] owns all of them and the `*_in` variants of
//! [`crate::get_knn`] reuse one scratch across any number of queries.
//!
//! ## Lifecycle
//!
//! Callers that hold a long-lived scratch (benchmarks, tight re-evaluation
//! loops) pass it explicitly to [`crate::get_knn_in`]. Everyone else goes
//! through the plain entry points, which borrow a **thread-local** scratch
//! via [`with_thread_scratch`]: a batch of queries executed on one worker
//! thread (the executor's `execute_batch` partitions, the continuous-query
//! maintainer's re-evaluation sweep) therefore shares a single set of
//! allocations automatically — after the first query on a thread, the select
//! hot path allocates nothing but the returned [`Neighborhood`].
//!
//! ## The kth-distance kernel
//!
//! [`KthHeap`] is a bounded max-heap over `(squared distance, point id)` —
//! the same total order [`Neighborhood::from_unsorted`] sorts by, so the
//! surviving k points are exactly the ones the row-oriented implementation
//! kept. [`KthHeap::scan_block`] processes a whole SoA block before touching
//! the heap: one vectorizable [`euclidean_sq_batch`] pass fills the distance
//! buffer, then a tight merge loop folds the buffer into the heap. Once the
//! heap is full, its root is the running k-th distance τ; blocks whose
//! MINDIST exceeds τ are skipped entirely (strictly greater, so distance
//! ties keep resolving by id exactly as before).

use std::cell::RefCell;
use std::collections::BinaryHeap;

use twoknn_geometry::{euclidean_sq_batch, Point};

use crate::block::BlockMeta;
use crate::neighborhood::{Neighbor, Neighborhood};
use crate::ordering::{OrderStorage, OrderedF64};

/// An entry of the bounded candidate heap: a point and its squared distance
/// from the query. Max-heap order over `(distance, id)`, matching the sort
/// order of [`Neighborhood::from_unsorted`].
#[derive(Debug, Clone, Copy)]
struct KthEntry {
    key: OrderedF64,
    point: Point,
}

impl PartialEq for KthEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.point.id == other.point.id
    }
}
impl Eq for KthEntry {}
impl PartialOrd for KthEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KthEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| self.point.id.cmp(&other.point.id))
    }
}

/// A bounded max-heap tracking the `k` nearest points seen so far, keyed by
/// `(squared distance, point id)`.
///
/// Public so the `kernel_micro` bench can measure the heap-update kernel in
/// isolation; algorithm code reaches it through [`ScratchSpace`].
#[derive(Debug, Default)]
pub struct KthHeap {
    k: usize,
    heap: BinaryHeap<KthEntry>,
}

impl KthHeap {
    /// An empty heap bounded at `k` entries.
    pub fn new(k: usize) -> Self {
        let mut heap = Self::default();
        heap.reset(k);
        heap
    }

    /// Clears the heap and re-bounds it at `k`, retaining the allocation.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
    }

    /// Number of candidates currently held (≤ `k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the heap holds `k` candidates (the threshold is live).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The squared k-th distance τ² — the pruning threshold. Infinite until
    /// the heap is full.
    #[inline]
    pub fn threshold_sq(&self) -> f64 {
        match self.heap.peek() {
            Some(top) if self.is_full() => top.key.0,
            _ => f64::INFINITY,
        }
    }

    /// Offers one candidate to the heap.
    #[inline]
    pub fn insert(&mut self, dist_sq: f64, point: Point) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(KthEntry {
                key: OrderedF64(dist_sq),
                point,
            });
            return;
        }
        let mut top = self.heap.peek_mut().expect("heap is full and k >= 1");
        if (OrderedF64(dist_sq), point.id) < (top.key, top.point.id) {
            *top = KthEntry {
                key: OrderedF64(dist_sq),
                point,
            };
        }
    }

    /// The block-scan kernel: computes the squared distances from `q` to the
    /// whole SoA block in one batched column pass (into `dist`), then merges
    /// the buffer into the heap in a second tight loop.
    pub fn scan_block(
        &mut self,
        q: &Point,
        block: crate::points::BlockPoints<'_>,
        dist: &mut Vec<f64>,
    ) {
        let n = block.len();
        if n == 0 {
            return;
        }
        dist.clear();
        dist.resize(n, 0.0);
        euclidean_sq_batch(q.x, q.y, block.xs(), block.ys(), dist);
        let (ids, xs, ys) = (block.ids(), block.xs(), block.ys());
        for i in 0..n {
            self.insert(dist[i], Point::new(ids[i], xs[i], ys[i]));
        }
    }

    /// The predicate-masked variant of [`KthHeap::scan_block`]: the batched
    /// distance pass runs over the whole block exactly as before, but only
    /// lanes whose `mask` bit is set are offered to the heap.
    ///
    /// Used by the filtered kNN kernel: τ then tracks the k-th *matching*
    /// distance, which is never smaller than the unfiltered one, so MINDIST
    /// pruning against it stays conservative (sound) under filtering.
    pub fn scan_block_masked(
        &mut self,
        q: &Point,
        block: crate::points::BlockPoints<'_>,
        mask: &[bool],
        dist: &mut Vec<f64>,
    ) {
        let n = block.len();
        debug_assert_eq!(mask.len(), n, "mask must cover the block");
        if n == 0 {
            return;
        }
        dist.clear();
        dist.resize(n, 0.0);
        euclidean_sq_batch(q.x, q.y, block.xs(), block.ys(), dist);
        let (ids, xs, ys) = (block.ids(), block.xs(), block.ys());
        for i in 0..n {
            if mask[i] {
                self.insert(dist[i], Point::new(ids[i], xs[i], ys[i]));
            }
        }
    }

    /// Drains the heap into a [`Neighborhood`] of the query point, sorted and
    /// truncated by the usual `(distance, id)` order.
    pub fn finish(&mut self, query: Point, k: usize) -> Neighborhood {
        let mut members = Vec::with_capacity(self.heap.len());
        members.extend(self.heap.drain().map(|e| Neighbor {
            point: e.point,
            distance: e.key.0.sqrt(),
        }));
        Neighborhood::from_unsorted(query, k, members)
    }
}

/// Scratch structures for locality construction: the two block-order heaps,
/// the collected block list, and the membership bitmap.
#[derive(Debug, Default)]
pub(crate) struct LocalityScratch {
    /// Blocks of the locality, in discovery order (phase 1 then phase 2).
    pub(crate) blocks: Vec<BlockMeta>,
    /// Per-block "already in the locality" bitmap, indexed by block id.
    pub(crate) in_locality: Vec<bool>,
    /// Reusable storage of the phase-1 MAXDIST heap.
    pub(crate) max_order: OrderStorage,
    /// Reusable storage of the phase-2 MINDIST heap.
    pub(crate) min_order: OrderStorage,
}

/// All the per-query transient state of the kNN hot path, reusable across
/// queries. See the module docs for the lifecycle.
#[derive(Debug, Default)]
pub struct ScratchSpace {
    /// Distance buffer of the batched block scan.
    pub(crate) dist: Vec<f64>,
    /// The bounded candidate heap.
    pub(crate) kth: KthHeap,
    /// Locality-construction scratch.
    pub(crate) locality: LocalityScratch,
    /// Storage of the best-first search's priority queue.
    pub(crate) best_first: Vec<crate::knn::BestFirstEntry>,
    /// `(MINDIST², partition index)` order buffer of the scatter-gather
    /// driver over a sharded index's partitions.
    pub(crate) shard_order: Vec<(OrderedF64, u32)>,
    /// Reusable predicate mask of the filtered block kernel: one bool per
    /// lane of the block being scanned, refilled per block.
    pub(crate) mask: Vec<bool>,
    /// `(MINDIST², block index)` order buffer of the filtered kernel's
    /// whole-index block walk.
    pub(crate) block_order: Vec<(OrderedF64, u32)>,
}

impl ScratchSpace {
    /// A fresh scratch space with no capacity reserved; buffers grow to the
    /// working-set size on first use and are retained afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<ScratchSpace> = RefCell::new(ScratchSpace::new());
}

/// Runs `f` with the calling thread's shared [`ScratchSpace`].
///
/// This is how the plain (non-`_in`) kNN entry points reuse allocations: all
/// queries executed on one thread — in particular a worker thread draining
/// its share of an `execute_batch` partition, or the continuous-query
/// maintainer re-evaluating subscriptions — share one scratch. Re-entrant
/// calls (an `f` that itself calls a kNN entry point) fall back to a fresh
/// scratch instead of panicking on the `RefCell`.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut ScratchSpace) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut ScratchSpace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::PointBlock;

    fn block(pts: &[(u64, f64, f64)]) -> PointBlock {
        pts.iter().map(|&(id, x, y)| Point::new(id, x, y)).collect()
    }

    #[test]
    fn kth_heap_keeps_the_k_smallest_by_distance_then_id() {
        let q = Point::anonymous(0.0, 0.0);
        let b = block(&[
            (9, 1.0, 0.0), // d²=1, ties with id 4 and 7
            (4, 0.0, 1.0),
            (7, -1.0, 0.0),
            (1, 5.0, 0.0),
        ]);
        let mut heap = KthHeap::new(2);
        let mut dist = Vec::new();
        heap.scan_block(&q, b.view(), &mut dist);
        let n = heap.finish(q, 2);
        // Same tie-break as Neighborhood::from_unsorted: smallest ids win.
        assert_eq!(n.ids(), vec![4, 7]);
        assert_eq!(n.radius(), 1.0);
    }

    #[test]
    fn threshold_goes_live_only_when_full() {
        let mut heap = KthHeap::new(3);
        assert!(heap.threshold_sq().is_infinite());
        heap.insert(4.0, Point::new(1, 2.0, 0.0));
        heap.insert(1.0, Point::new(2, 1.0, 0.0));
        assert!(!heap.is_full());
        assert!(heap.threshold_sq().is_infinite());
        heap.insert(9.0, Point::new(3, 3.0, 0.0));
        assert!(heap.is_full());
        assert_eq!(heap.threshold_sq(), 9.0);
        // A closer point replaces the current k-th and tightens τ².
        heap.insert(0.25, Point::new(4, 0.5, 0.0));
        assert_eq!(heap.threshold_sq(), 4.0);
        assert_eq!(heap.len(), 3);
    }

    #[test]
    fn reset_retains_capacity_and_rebounds_k() {
        let mut heap = KthHeap::new(4);
        for i in 0..4 {
            heap.insert(i as f64, Point::new(i, i as f64, 0.0));
        }
        heap.reset(1);
        assert!(heap.is_empty());
        heap.insert(1.0, Point::new(10, 1.0, 0.0));
        heap.insert(0.5, Point::new(11, 0.5, 0.0));
        assert_eq!(heap.finish(Point::anonymous(0.0, 0.0), 1).ids(), vec![11]);
    }

    #[test]
    fn k_zero_heap_accepts_nothing() {
        let mut heap = KthHeap::new(0);
        heap.insert(1.0, Point::new(1, 1.0, 0.0));
        assert!(heap.is_empty());
        assert!(heap.finish(Point::anonymous(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn thread_scratch_is_reentrancy_safe() {
        let outer = with_thread_scratch(|s| {
            s.dist.push(1.0);
            with_thread_scratch(|inner| inner.dist.len())
        });
        assert_eq!(outer, 0, "re-entrant borrow gets a fresh scratch");
    }
}
