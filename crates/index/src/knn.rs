//! `getkNN`: computing the neighborhood of a point.
//!
//! The paper (Section 2): "One can use any algorithm to compute the
//! neighborhood of a point. In this paper, we employ the locality algorithm
//! of [15]. Given a point, say p, the main idea of the algorithm is to build
//! the minimum locality of p, and then compute the neighborhood of p only
//! from its locality."
//!
//! Three implementations are provided:
//!
//! * [`get_knn`] — the locality-based algorithm used throughout the paper
//!   (and throughout this workspace).
//! * [`get_knn_best_first`] — the classic best-first (Hjaltason–Samet)
//!   incremental kNN, used for cross-checking and index ablations.
//! * [`brute_force_knn`] — an `O(n log n)` scan, the ground truth for tests.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use twoknn_geometry::Point;

use crate::locality::Locality;
use crate::metrics::Metrics;
use crate::neighborhood::{Neighbor, Neighborhood};
use crate::ordering::OrderedF64;
use crate::traits::SpatialIndex;

/// Computes the neighborhood (the `k` nearest neighbors) of `p` using the
/// locality algorithm, counting the work into `metrics`.
///
/// When `p` itself is stored in the index (same id and coordinates), it is
/// *not* excluded: the paper's operators query focal points and outer-relation
/// points against *other* relations, so self-exclusion is handled by callers
/// that need it.
pub fn get_knn<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    metrics: &mut Metrics,
) -> Neighborhood {
    metrics.neighborhoods_computed += 1;
    if k == 0 || index.num_points() == 0 {
        return Neighborhood::empty(*p, k);
    }
    let locality = Locality::build(index, p, k, metrics);
    neighborhood_from_locality(index, p, k, &locality, metrics)
}

/// Computes the neighborhood of `p` restricted to a search threshold: only
/// blocks with MINDIST ≤ `threshold` are examined (Procedure 5's bounded
/// locality). The result is exact for every member whose distance from `p`
/// is at most `threshold`; members farther than the threshold may be missing.
pub fn get_knn_bounded<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    threshold: f64,
    metrics: &mut Metrics,
) -> Neighborhood {
    metrics.neighborhoods_computed += 1;
    if k == 0 || index.num_points() == 0 {
        return Neighborhood::empty(*p, k);
    }
    let locality = Locality::build_bounded(index, p, k, threshold, metrics);
    neighborhood_from_locality(index, p, k, &locality, metrics)
}

/// Extracts the `k` nearest points of `p` from the blocks of a locality.
pub fn neighborhood_from_locality<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    locality: &Locality,
    metrics: &mut Metrics,
) -> Neighborhood {
    let mut members = Vec::with_capacity(locality.point_count().min(4 * k + 16));
    for block in locality.blocks() {
        for q in index.block_points(block.id) {
            metrics.points_scanned += 1;
            metrics.distance_computations += 1;
            members.push(Neighbor {
                point: *q,
                distance: p.distance(q),
            });
        }
    }
    Neighborhood::from_unsorted(*p, k, members)
}

/// Best-first incremental nearest-neighbor search (Hjaltason & Samet).
///
/// Maintains a priority queue of blocks (keyed by MINDIST) and points (keyed
/// by distance); pops the nearest element, expanding blocks into their points,
/// until `k` points have been reported. Provided as an independently
/// implemented cross-check of [`get_knn`] and for the index-ablation bench.
pub fn get_knn_best_first<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    metrics: &mut Metrics,
) -> Neighborhood {
    metrics.neighborhoods_computed += 1;
    if k == 0 || index.num_points() == 0 {
        return Neighborhood::empty(*p, k);
    }

    enum Entry {
        Block(u32),
        Point(Point),
    }
    struct Queued {
        dist: OrderedF64,
        seq: u64,
        entry: Entry,
    }
    impl PartialEq for Queued {
        fn eq(&self, other: &Self) -> bool {
            self.dist == other.dist && self.seq == other.seq
        }
    }
    impl Eq for Queued {}
    impl PartialOrd for Queued {
        fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Queued {
        fn cmp(&self, other: &Self) -> CmpOrdering {
            // Min-heap by distance; ties broken by insertion sequence so that
            // blocks at distance 0 are expanded before points at distance 0.
            other
                .dist
                .cmp(&self.dist)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    let mut heap: BinaryHeap<Queued> = BinaryHeap::with_capacity(index.num_blocks());
    let mut seq = 0u64;
    for b in index.blocks() {
        if b.count == 0 {
            continue;
        }
        heap.push(Queued {
            dist: OrderedF64(b.mindist(p)),
            seq,
            entry: Entry::Block(b.id),
        });
        seq += 1;
    }

    let mut members = Vec::with_capacity(k);
    while let Some(q) = heap.pop() {
        match q.entry {
            Entry::Block(id) => {
                metrics.blocks_scanned += 1;
                for pt in index.block_points(id) {
                    metrics.points_scanned += 1;
                    metrics.distance_computations += 1;
                    heap.push(Queued {
                        dist: OrderedF64(p.distance(pt)),
                        seq,
                        entry: Entry::Point(*pt),
                    });
                    seq += 1;
                }
            }
            Entry::Point(pt) => {
                members.push(Neighbor {
                    point: pt,
                    distance: q.dist.0,
                });
                if members.len() == k {
                    break;
                }
            }
        }
    }
    Neighborhood::from_unsorted(*p, k, members)
}

/// Ground-truth `k` nearest neighbors by scanning every indexed point.
pub fn brute_force_knn<I: SpatialIndex + ?Sized>(index: &I, p: &Point, k: usize) -> Neighborhood {
    let members = index
        .all_points()
        .into_iter()
        .map(|q| Neighbor {
            point: q,
            distance: p.distance(&q),
        })
        .collect();
    Neighborhood::from_unsorted(*p, k, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridIndex;
    use crate::quadtree::QuadtreeIndex;
    use crate::rtree::StrRTree;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    ((i * 7919) % 1009) as f64 * 0.11,
                    ((i * 6131) % 997) as f64 * 0.13,
                )
            })
            .collect()
    }

    fn assert_same_ids(a: &Neighborhood, b: &Neighborhood) {
        let mut ai = a.ids();
        let mut bi = b.ids();
        ai.sort_unstable();
        bi.sort_unstable();
        assert_eq!(ai, bi);
    }

    #[test]
    fn locality_knn_matches_brute_force_on_grid() {
        let g = GridIndex::build(pts(1500), 14).unwrap();
        let mut m = Metrics::default();
        for (x, y, k) in [
            (10.0, 20.0, 1),
            (55.0, 64.0, 7),
            (0.0, 0.0, 25),
            (111.0, 1.0, 64),
        ] {
            let q = Point::anonymous(x, y);
            let got = get_knn(&g, &q, k, &mut m);
            let want = brute_force_knn(&g, &q, k);
            assert_same_ids(&got, &want);
        }
    }

    #[test]
    fn locality_knn_matches_brute_force_on_quadtree_and_rtree() {
        let data = pts(1200);
        let qt = QuadtreeIndex::build(data.clone(), 24).unwrap();
        let rt = StrRTree::build(data, 24).unwrap();
        let mut m = Metrics::default();
        for (x, y, k) in [(30.0, 30.0, 5), (80.0, 10.0, 17)] {
            let q = Point::anonymous(x, y);
            assert_same_ids(&get_knn(&qt, &q, k, &mut m), &brute_force_knn(&qt, &q, k));
            assert_same_ids(&get_knn(&rt, &q, k, &mut m), &brute_force_knn(&rt, &q, k));
        }
    }

    #[test]
    fn best_first_matches_locality_based() {
        let g = GridIndex::build(pts(900), 10).unwrap();
        let mut m = Metrics::default();
        for (x, y, k) in [(42.0, 17.0, 3), (5.0, 99.0, 20)] {
            let q = Point::anonymous(x, y);
            assert_same_ids(
                &get_knn(&g, &q, k, &mut m),
                &get_knn_best_first(&g, &q, k, &mut m),
            );
        }
    }

    #[test]
    fn k_zero_and_empty_relation_yield_empty_neighborhoods() {
        let g = GridIndex::build(pts(100), 5).unwrap();
        let mut m = Metrics::default();
        let q = Point::anonymous(1.0, 1.0);
        assert!(get_knn(&g, &q, 0, &mut m).is_empty());

        let empty =
            GridIndex::build_with_bounds(vec![], twoknn_geometry::Rect::new(0.0, 0.0, 1.0, 1.0), 2)
                .unwrap();
        assert!(get_knn(&empty, &q, 3, &mut m).is_empty());
    }

    #[test]
    fn k_exceeding_dataset_returns_all_points() {
        let g = GridIndex::build(pts(37), 4).unwrap();
        let mut m = Metrics::default();
        let nbr = get_knn(&g, &Point::anonymous(3.0, 3.0), 100, &mut m);
        assert_eq!(nbr.len(), 37);
    }

    #[test]
    fn bounded_knn_is_exact_within_threshold() {
        let g = GridIndex::build(pts(2000), 18).unwrap();
        let mut m = Metrics::default();
        let q = Point::anonymous(50.0, 50.0);
        let k = 12;
        let exact = brute_force_knn(&g, &q, k);
        // Threshold comfortably larger than the true kNN radius: bounded
        // result must be identical.
        let threshold = exact.radius() * 2.0 + 1.0;
        let bounded = get_knn_bounded(&g, &q, k, threshold, &mut m);
        assert_same_ids(&bounded, &exact);
    }

    #[test]
    fn bounded_knn_members_within_threshold_are_correct() {
        let g = GridIndex::build(pts(2000), 18).unwrap();
        let mut m = Metrics::default();
        let q = Point::anonymous(50.0, 50.0);
        let k = 40;
        let threshold = 3.0; // deliberately small
        let exact = brute_force_knn(&g, &q, k);
        let bounded = get_knn_bounded(&g, &q, k, threshold, &mut m);
        // Every exact member within the threshold must appear in the bounded
        // result (the guarantee Procedure 5 relies on).
        let bounded_ids: std::collections::HashSet<u64> = bounded.ids().into_iter().collect();
        for nb in exact.members().iter().filter(|n| n.distance <= threshold) {
            assert!(bounded_ids.contains(&nb.point.id));
        }
    }

    #[test]
    fn metrics_count_neighborhood_computations() {
        let g = GridIndex::build(pts(200), 6).unwrap();
        let mut m = Metrics::default();
        get_knn(&g, &Point::anonymous(0.0, 0.0), 4, &mut m);
        get_knn(&g, &Point::anonymous(9.0, 9.0), 4, &mut m);
        assert_eq!(m.neighborhoods_computed, 2);
        assert!(m.points_scanned > 0);
        assert!(m.distance_computations >= m.points_scanned);
    }
}
