//! `getkNN`: computing the neighborhood of a point.
//!
//! The paper (Section 2): "One can use any algorithm to compute the
//! neighborhood of a point. In this paper, we employ the locality algorithm
//! of [15]. Given a point, say p, the main idea of the algorithm is to build
//! the minimum locality of p, and then compute the neighborhood of p only
//! from its locality."
//!
//! Three implementations are provided:
//!
//! * [`get_knn`] — the locality-based algorithm used throughout the paper
//!   (and throughout this workspace), now running the batched SoA block-scan
//!   kernel: per locality block, one vectorizable column pass fills the
//!   distance buffer, then the buffer folds into a bounded k-heap whose root
//!   is the running k-th distance τ. Blocks with MINDIST strictly greater
//!   than τ are skipped (counted as `blocks_pruned`), which the plain
//!   gather-everything implementation could not do.
//! * [`get_knn_best_first`] — the classic best-first (Hjaltason–Samet)
//!   incremental kNN, used for cross-checking and index ablations.
//! * [`brute_force_knn`] — an `O(n log n)` scan, the ground truth for tests.
//!
//! Every entry point has an `*_in` variant taking an explicit
//! [`ScratchSpace`]; the plain variants borrow the calling thread's shared
//! scratch (see [`crate::scratch`]), so a batch of queries on one worker
//! thread allocates the transient heaps and buffers once, not per query.
//! [`get_knn_scalar`] retains the pre-SoA gather-and-sort path as the
//! ablation baseline the `kernel_micro` bench measures speedups against.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use twoknn_geometry::{Point, Predicate};

use crate::locality::{collect_locality_blocks, collect_locality_blocks_in, Locality};
use crate::metrics::Metrics;
use crate::neighborhood::{Neighbor, Neighborhood};
use crate::ordering::OrderedF64;
use crate::partition::PartitionMeta;
use crate::scratch::{with_thread_scratch, ScratchSpace};
use crate::traits::SpatialIndex;

/// Computes the neighborhood (the `k` nearest neighbors) of `p` using the
/// locality algorithm, counting the work into `metrics`.
///
/// When `p` itself is stored in the index (same id and coordinates), it is
/// *not* excluded: the paper's operators query focal points and outer-relation
/// points against *other* relations, so self-exclusion is handled by callers
/// that need it.
///
/// Uses the calling thread's shared [`ScratchSpace`]; pass one explicitly
/// through [`get_knn_in`] to control the reuse scope yourself.
pub fn get_knn<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    metrics: &mut Metrics,
) -> Neighborhood {
    with_thread_scratch(|scratch| get_knn_in(index, p, k, metrics, scratch))
}

/// [`get_knn`] with an explicit, reusable [`ScratchSpace`].
pub fn get_knn_in<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    metrics: &mut Metrics,
    scratch: &mut ScratchSpace,
) -> Neighborhood {
    metrics.neighborhoods_computed += 1;
    if k == 0 || index.num_points() == 0 {
        return Neighborhood::empty(*p, k);
    }
    if let Some(parts) = sharded_partitions(index) {
        return get_knn_scatter_gather(index, parts, p, k, None, metrics, scratch);
    }
    collect_locality_blocks(index, p, k, None, metrics, &mut scratch.locality);
    scan_locality_blocks(index, p, k, metrics, scratch)
}

/// Computes the neighborhood of `p` restricted to a search threshold: only
/// blocks with MINDIST ≤ `threshold` are examined (Procedure 5's bounded
/// locality). The result is exact for every member whose distance from `p`
/// is at most `threshold`; members farther than the threshold may be missing.
pub fn get_knn_bounded<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    threshold: f64,
    metrics: &mut Metrics,
) -> Neighborhood {
    with_thread_scratch(|scratch| get_knn_bounded_in(index, p, k, threshold, metrics, scratch))
}

/// [`get_knn_bounded`] with an explicit, reusable [`ScratchSpace`].
pub fn get_knn_bounded_in<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    threshold: f64,
    metrics: &mut Metrics,
    scratch: &mut ScratchSpace,
) -> Neighborhood {
    metrics.neighborhoods_computed += 1;
    if k == 0 || index.num_points() == 0 {
        return Neighborhood::empty(*p, k);
    }
    if let Some(parts) = sharded_partitions(index) {
        return get_knn_scatter_gather(index, parts, p, k, Some(threshold), metrics, scratch);
    }
    collect_locality_blocks(index, p, k, Some(threshold), metrics, &mut scratch.locality);
    scan_locality_blocks(index, p, k, metrics, scratch)
}

/// Computes the `k` nearest points of `p` **matching a predicate** — the
/// "k nearest *matching* points" semantics of a pre-kNN filter placement.
///
/// Locality construction is deliberately **not** used here: block counts
/// overcount the matching points, so a locality sized by counts could stop
/// collecting blocks before `k` matching candidates are reachable. Instead,
/// every non-empty block is visited in increasing MINDIST² order and scanned
/// through the predicate-masked batched kernel
/// ([`crate::KthHeap::scan_block_masked`]); once the candidate heap holds `k`
/// *matching* points, the walk stops at the first block whose MINDIST²
/// exceeds τ² (strictly — id tie-breaks at exactly τ stay reachable). τ is
/// the k-th **matching** distance, never smaller than the unfiltered one, so
/// this pruning is conservative and the result is exact. The same walk is
/// correct on sharded indexes because composed block ids are global.
///
/// Uses the calling thread's shared [`ScratchSpace`]; see
/// [`get_knn_filtered_in`] for explicit reuse.
pub fn get_knn_filtered<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    predicate: &Predicate,
    metrics: &mut Metrics,
) -> Neighborhood {
    with_thread_scratch(|scratch| get_knn_filtered_in(index, p, k, predicate, metrics, scratch))
}

/// [`get_knn_filtered`] with an explicit, reusable [`ScratchSpace`]: the
/// predicate mask, block-order buffer, distance buffer, and candidate heap
/// are all borrowed from the scratch, so the filtered hot path allocates
/// nothing but the returned [`Neighborhood`] after warm-up.
pub fn get_knn_filtered_in<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    predicate: &Predicate,
    metrics: &mut Metrics,
    scratch: &mut ScratchSpace,
) -> Neighborhood {
    metrics.neighborhoods_computed += 1;
    if k == 0 || index.num_points() == 0 {
        return Neighborhood::empty(*p, k);
    }
    scratch.kth.reset(k);
    let ScratchSpace {
        dist,
        kth,
        mask,
        block_order,
        ..
    } = scratch;

    block_order.clear();
    for b in index.blocks() {
        if b.count > 0 {
            block_order.push((OrderedF64(b.mindist_sq(p)), b.id));
        }
    }
    block_order.sort_unstable();

    for i in 0..block_order.len() {
        let (mindist_sq, id) = block_order[i];
        if kth.is_full() && mindist_sq.0 > kth.threshold_sq() {
            metrics.blocks_pruned += (block_order.len() - i) as u64;
            break;
        }
        let points = index.block_points(id);
        metrics.blocks_scanned += 1;
        metrics.points_scanned += points.len() as u64;
        metrics.distance_computations += points.len() as u64;
        predicate.eval_block(points.ids(), points.xs(), points.ys(), mask);
        kth.scan_block_masked(p, points, mask, dist);
    }
    kth.finish(*p, k)
}

/// Ground-truth filtered kNN: filters every indexed point by the predicate,
/// then sorts. The reference the filtered kernel is tested against.
pub fn brute_force_knn_filtered<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    predicate: &Predicate,
) -> Neighborhood {
    let members = index
        .all_points()
        .into_iter()
        .filter(|q| predicate.matches_point(q))
        .map(|q| Neighbor {
            point: q,
            distance: p.distance(&q),
        })
        .collect();
    Neighborhood::from_unsorted(*p, k, members)
}

/// The partitions of `index` when scatter-gather is worthwhile: more than one
/// partition holds points. With zero or one populated shard the flat
/// single-locality scan is both simpler and at least as cheap.
#[inline]
fn sharded_partitions<I: SpatialIndex + ?Sized>(index: &I) -> Option<&[PartitionMeta]> {
    let parts = index.partitions()?;
    let populated = parts.iter().filter(|part| !part.is_empty()).count();
    (populated > 1).then_some(parts)
}

/// The scatter-gather kNN driver over a sharded index.
///
/// Partitions are visited in increasing MINDIST² from `p`, all feeding one
/// shared [`crate::KthHeap`]: per visited shard, a locality is built over
/// *that shard's* block slice only (bounded by the running τ once the heap is
/// full, and by the caller's search threshold if any) and scanned with the
/// usual batched τ-pruning kernel. As soon as the next shard's MINDIST²
/// exceeds τ² — strictly, so distance ties keep resolving by id — every
/// remaining shard is skipped wholesale (`shards_pruned`).
///
/// Exactness mirrors the block-level argument one level up: a true k-nearest
/// member inside some shard is within τ at every point of the scan (otherwise
/// the heap would already hold `k` strictly closer points), so its shard
/// passes the prefix test and the shard-local bounded locality retains its
/// block. Results are identical to the flat scan, including tie resolution.
fn get_knn_scatter_gather<I: SpatialIndex + ?Sized>(
    index: &I,
    parts: &[PartitionMeta],
    p: &Point,
    k: usize,
    threshold: Option<f64>,
    metrics: &mut Metrics,
    scratch: &mut ScratchSpace,
) -> Neighborhood {
    scratch.kth.reset(k);
    let ScratchSpace {
        dist,
        kth,
        locality,
        shard_order,
        ..
    } = scratch;
    let all_blocks = index.blocks();

    shard_order.clear();
    for (i, part) in parts.iter().enumerate() {
        if !part.is_empty() {
            shard_order.push((OrderedF64(part.mindist_sq(p)), i as u32));
        }
    }
    shard_order.sort_unstable();

    let threshold_sq = threshold.map(|t| t * t);
    for i in 0..shard_order.len() {
        let (mindist_sq, part_idx) = shard_order[i];
        let beyond_bound = threshold_sq.is_some_and(|t| mindist_sq.0 > t);
        if beyond_bound || (kth.is_full() && mindist_sq.0 > kth.threshold_sq()) {
            metrics.shards_pruned += (shard_order.len() - i) as u64;
            break;
        }
        metrics.shards_scanned += 1;

        // Shard-local search bound: the caller's threshold, tightened by the
        // running τ once it is live. Both are inclusive bounds, so members at
        // exactly τ (id tie-breaks) stay reachable.
        let tau_sq = kth.threshold_sq();
        let effective = match (threshold, tau_sq.is_finite()) {
            (Some(t), true) => Some(t.min(tau_sq.sqrt())),
            (Some(t), false) => Some(t),
            (None, true) => Some(tau_sq.sqrt()),
            (None, false) => None,
        };
        let shard_blocks = &all_blocks[parts[part_idx as usize].block_range()];
        collect_locality_blocks_in(shard_blocks, p, k, effective, metrics, locality);
        for block in &locality.blocks {
            if kth.is_full() && block.mindist_sq(p) > kth.threshold_sq() {
                metrics.blocks_pruned += 1;
                continue;
            }
            let points = index.block_points(block.id);
            metrics.points_scanned += points.len() as u64;
            metrics.distance_computations += points.len() as u64;
            kth.scan_block(p, points, dist);
        }
    }
    kth.finish(*p, k)
}

/// The fused block-scan phase shared by the `get_knn*` entry points: runs
/// the batched kth-distance kernel over the blocks collected in
/// `scratch.locality`, pruning blocks whose MINDIST exceeds the running τ.
///
/// τ-pruning is exact: once the heap holds `k` candidates, every candidate's
/// distance is ≤ τ, so a block with MINDIST **strictly** greater than τ
/// cannot contribute a closer point — and points *at* distance τ (which may
/// still win on id tie-break) live in blocks with MINDIST ≤ τ, which are
/// always scanned. Results are therefore identical to the gather-everything
/// baseline, including tie resolution.
fn scan_locality_blocks<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    metrics: &mut Metrics,
    scratch: &mut ScratchSpace,
) -> Neighborhood {
    scratch.kth.reset(k);
    let ScratchSpace {
        dist,
        kth,
        locality,
        ..
    } = scratch;
    for block in &locality.blocks {
        if kth.is_full() && block.mindist_sq(p) > kth.threshold_sq() {
            metrics.blocks_pruned += 1;
            continue;
        }
        let points = index.block_points(block.id);
        metrics.points_scanned += points.len() as u64;
        metrics.distance_computations += points.len() as u64;
        kth.scan_block(p, points, dist);
    }
    kth.finish(*p, k)
}

/// Extracts the `k` nearest points of `p` from the blocks of a locality.
///
/// This is the retained **scalar (pre-SoA) gather path**: every point of
/// every locality block is materialized as a [`Neighbor`] and the list is
/// sorted and truncated at the end. [`get_knn`] replaced it with the batched
/// kth-distance kernel; it stays public as the ablation baseline for the
/// `kernel_micro` bench and the SoA-equivalence property tests, and for
/// callers that hold a pre-built [`Locality`].
pub fn neighborhood_from_locality<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    locality: &Locality,
    metrics: &mut Metrics,
) -> Neighborhood {
    let mut members = Vec::with_capacity(locality.point_count().min(4 * k + 16));
    for block in locality.blocks() {
        for q in index.block_points(block.id) {
            metrics.points_scanned += 1;
            metrics.distance_computations += 1;
            members.push(Neighbor {
                point: q,
                distance: p.distance(&q),
            });
        }
    }
    Neighborhood::from_unsorted(*p, k, members)
}

/// The complete pre-SoA `getkNN`: locality construction followed by the
/// scalar gather of [`neighborhood_from_locality`], with no τ-pruning and no
/// scratch reuse. Kept as the end-to-end ablation baseline so `kernel_micro`
/// can report the batched-vs-scalar speedup of the whole select hot path.
pub fn get_knn_scalar<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    metrics: &mut Metrics,
) -> Neighborhood {
    metrics.neighborhoods_computed += 1;
    if k == 0 || index.num_points() == 0 {
        return Neighborhood::empty(*p, k);
    }
    let locality = Locality::build(index, p, k, metrics);
    neighborhood_from_locality(index, p, k, &locality, metrics)
}

#[derive(Debug)]
enum BestFirstItem {
    Block(u32),
    Point(Point),
}

/// A prioritized entry of the best-first search queue. Public within the
/// crate so [`ScratchSpace`] can own the queue's storage between queries.
#[derive(Debug)]
pub(crate) struct BestFirstEntry {
    dist: OrderedF64,
    seq: u64,
    item: BestFirstItem,
}

impl PartialEq for BestFirstEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.seq == other.seq
    }
}
impl Eq for BestFirstEntry {}
impl PartialOrd for BestFirstEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for BestFirstEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap by distance; ties broken by insertion sequence so that
        // blocks at distance 0 are expanded before points at distance 0.
        other
            .dist
            .cmp(&self.dist)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Best-first incremental nearest-neighbor search (Hjaltason & Samet).
///
/// Maintains a priority queue of blocks (keyed by MINDIST) and points (keyed
/// by distance); pops the nearest element, expanding blocks into their points,
/// until `k` points have been reported. Provided as an independently
/// implemented cross-check of [`get_knn`] and for the index-ablation bench.
pub fn get_knn_best_first<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    metrics: &mut Metrics,
) -> Neighborhood {
    with_thread_scratch(|scratch| get_knn_best_first_in(index, p, k, metrics, scratch))
}

/// [`get_knn_best_first`] with an explicit, reusable [`ScratchSpace`]: the
/// priority queue's storage is borrowed from (and returned to) the scratch,
/// replacing the old per-query `BinaryHeap::with_capacity(num_blocks)`.
pub fn get_knn_best_first_in<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    metrics: &mut Metrics,
    scratch: &mut ScratchSpace,
) -> Neighborhood {
    metrics.neighborhoods_computed += 1;
    if k == 0 || index.num_points() == 0 {
        return Neighborhood::empty(*p, k);
    }

    let mut storage = std::mem::take(&mut scratch.best_first);
    storage.clear();
    let mut heap: BinaryHeap<BestFirstEntry> = BinaryHeap::from(storage);
    let mut seq = 0u64;
    for b in index.blocks() {
        if b.count == 0 {
            continue;
        }
        heap.push(BestFirstEntry {
            dist: OrderedF64(b.mindist(p)),
            seq,
            item: BestFirstItem::Block(b.id),
        });
        seq += 1;
    }

    let mut members = Vec::with_capacity(k);
    while let Some(q) = heap.pop() {
        match q.item {
            BestFirstItem::Block(id) => {
                metrics.blocks_scanned += 1;
                for pt in index.block_points(id) {
                    metrics.points_scanned += 1;
                    metrics.distance_computations += 1;
                    heap.push(BestFirstEntry {
                        dist: OrderedF64(p.distance(&pt)),
                        seq,
                        item: BestFirstItem::Point(pt),
                    });
                    seq += 1;
                }
            }
            BestFirstItem::Point(pt) => {
                members.push(Neighbor {
                    point: pt,
                    distance: q.dist.0,
                });
                if members.len() == k {
                    break;
                }
            }
        }
    }
    scratch.best_first = heap.into_vec();
    Neighborhood::from_unsorted(*p, k, members)
}

/// Ground-truth `k` nearest neighbors by scanning every indexed point.
pub fn brute_force_knn<I: SpatialIndex + ?Sized>(index: &I, p: &Point, k: usize) -> Neighborhood {
    let members = index
        .all_points()
        .into_iter()
        .map(|q| Neighbor {
            point: q,
            distance: p.distance(&q),
        })
        .collect();
    Neighborhood::from_unsorted(*p, k, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridIndex;
    use crate::quadtree::QuadtreeIndex;
    use crate::rtree::StrRTree;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    ((i * 7919) % 1009) as f64 * 0.11,
                    ((i * 6131) % 997) as f64 * 0.13,
                )
            })
            .collect()
    }

    fn assert_same_ids(a: &Neighborhood, b: &Neighborhood) {
        let mut ai = a.ids();
        let mut bi = b.ids();
        ai.sort_unstable();
        bi.sort_unstable();
        assert_eq!(ai, bi);
    }

    #[test]
    fn locality_knn_matches_brute_force_on_grid() {
        let g = GridIndex::build(pts(1500), 14).unwrap();
        let mut m = Metrics::default();
        for (x, y, k) in [
            (10.0, 20.0, 1),
            (55.0, 64.0, 7),
            (0.0, 0.0, 25),
            (111.0, 1.0, 64),
        ] {
            let q = Point::anonymous(x, y);
            let got = get_knn(&g, &q, k, &mut m);
            let want = brute_force_knn(&g, &q, k);
            assert_same_ids(&got, &want);
        }
    }

    #[test]
    fn locality_knn_matches_brute_force_on_quadtree_and_rtree() {
        let data = pts(1200);
        let qt = QuadtreeIndex::build(data.clone(), 24).unwrap();
        let rt = StrRTree::build(data, 24).unwrap();
        let mut m = Metrics::default();
        for (x, y, k) in [(30.0, 30.0, 5), (80.0, 10.0, 17)] {
            let q = Point::anonymous(x, y);
            assert_same_ids(&get_knn(&qt, &q, k, &mut m), &brute_force_knn(&qt, &q, k));
            assert_same_ids(&get_knn(&rt, &q, k, &mut m), &brute_force_knn(&rt, &q, k));
        }
    }

    #[test]
    fn best_first_matches_locality_based() {
        let g = GridIndex::build(pts(900), 10).unwrap();
        let mut m = Metrics::default();
        for (x, y, k) in [(42.0, 17.0, 3), (5.0, 99.0, 20)] {
            let q = Point::anonymous(x, y);
            assert_same_ids(
                &get_knn(&g, &q, k, &mut m),
                &get_knn_best_first(&g, &q, k, &mut m),
            );
        }
    }

    /// The batched τ-pruning path and the retained scalar gather must return
    /// identical neighborhoods — members, order, distances, and tie choices.
    #[test]
    fn batched_knn_is_identical_to_scalar_baseline() {
        let g = GridIndex::build(pts(2000), 12).unwrap();
        let mut scratch = ScratchSpace::new();
        for (x, y, k) in [
            (10.0, 20.0, 1),
            (55.0, 64.0, 7),
            (0.0, 0.0, 25),
            (111.0, 1.0, 64),
            (-30.0, 200.0, 5),
        ] {
            let q = Point::anonymous(x, y);
            let mut m1 = Metrics::default();
            let mut m2 = Metrics::default();
            let batched = get_knn_in(&g, &q, k, &mut m1, &mut scratch);
            let scalar = get_knn_scalar(&g, &q, k, &mut m2);
            assert_eq!(batched, scalar, "query ({x},{y}) k={k}");
            assert!(
                m1.points_scanned <= m2.points_scanned,
                "τ-pruning must never scan more points than the full gather"
            );
        }
    }

    /// A minimal sharded index for driver tests: four quadrant GridIndexes
    /// with concatenated (re-identified) blocks and tight partition MBRs —
    /// the same shape the store's composed relation snapshot exposes.
    struct ShardedGrid {
        shards: Vec<GridIndex>,
        blocks: Vec<crate::BlockMeta>,
        parts: Vec<PartitionMeta>,
        bounds: twoknn_geometry::Rect,
        num_points: usize,
    }

    impl ShardedGrid {
        fn build(points: Vec<Point>, cells: usize) -> Self {
            use twoknn_geometry::Rect;
            let bounds = Rect::bounding(&points).unwrap();
            let (cx, cy) = {
                let c = bounds.center();
                (c.x, c.y)
            };
            let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); 4];
            for p in points {
                let q = (p.x >= cx) as usize + 2 * ((p.y >= cy) as usize);
                buckets[q].push(p);
            }
            let rects = [
                Rect::new(bounds.min_x, bounds.min_y, cx, cy),
                Rect::new(cx, bounds.min_y, bounds.max_x, cy),
                Rect::new(bounds.min_x, cy, cx, bounds.max_y),
                Rect::new(cx, cy, bounds.max_x, bounds.max_y),
            ];
            let shards: Vec<GridIndex> = buckets
                .into_iter()
                .zip(rects)
                .map(|(pts, r)| GridIndex::build_with_bounds(pts, r, cells).unwrap())
                .collect();
            let mut blocks = Vec::new();
            let mut parts = Vec::new();
            let mut num_points = 0;
            for (shard, rect) in shards.iter().zip(rects) {
                let first = blocks.len() as u32;
                let mut mbr: Option<Rect> = None;
                for b in shard.blocks() {
                    blocks.push(crate::BlockMeta::new(blocks.len() as u32, b.mbr, b.count));
                    if b.count > 0 {
                        mbr = Some(mbr.map_or(b.mbr, |m| m.union(&b.mbr)));
                    }
                }
                parts.push(PartitionMeta::new(
                    mbr.unwrap_or(rect),
                    first,
                    shard.num_blocks() as u32,
                    shard.num_points(),
                ));
                num_points += shard.num_points();
            }
            Self {
                shards,
                blocks,
                parts,
                bounds,
                num_points,
            }
        }
    }

    impl SpatialIndex for ShardedGrid {
        fn bounds(&self) -> twoknn_geometry::Rect {
            self.bounds
        }
        fn num_points(&self) -> usize {
            self.num_points
        }
        fn blocks(&self) -> &[crate::BlockMeta] {
            &self.blocks
        }
        fn block_points(&self, id: u32) -> crate::BlockPoints<'_> {
            let s = self
                .parts
                .iter()
                .position(|p| p.block_range().contains(&(id as usize)))
                .expect("block id in range");
            self.shards[s].block_points(id - self.parts[s].first_block)
        }
        fn locate(&self, p: &Point) -> Option<u32> {
            self.parts.iter().enumerate().find_map(|(s, part)| {
                self.shards[s]
                    .locate(p)
                    .map(|local| part.first_block + local)
            })
        }
        fn partitions(&self) -> Option<&[PartitionMeta]> {
            Some(&self.parts)
        }
    }

    #[test]
    fn scatter_gather_matches_brute_force_and_flat_scan() {
        let data = pts(1600);
        let sharded = ShardedGrid::build(data.clone(), 8);
        let flat = GridIndex::build(data, 16).unwrap();
        let mut scratch = ScratchSpace::new();
        for (x, y, k) in [
            (10.0, 20.0, 1),
            (55.0, 64.0, 7),
            (0.0, 0.0, 25),
            (111.0, 1.0, 64),
            (56.0, 65.0, 3),
        ] {
            let q = Point::anonymous(x, y);
            let mut m = Metrics::default();
            let got = get_knn_in(&sharded, &q, k, &mut m, &mut scratch);
            assert_eq!(got, brute_force_knn(&sharded, &q, k), "({x},{y}) k={k}");
            let mut mf = Metrics::default();
            assert_eq!(got, get_knn(&flat, &q, k, &mut mf));
            assert!(m.shards_scanned >= 1);
        }
    }

    #[test]
    fn scatter_gather_prunes_shards_beyond_tau() {
        // A dense cluster in one quadrant plus sparse points elsewhere: a
        // small-k query inside the cluster must resolve without visiting the
        // far quadrants.
        let mut data = Vec::new();
        for i in 0..500u64 {
            data.push(Point::new(
                i,
                10.0 + (i % 25) as f64 * 0.1,
                10.0 + (i / 25) as f64 * 0.1,
            ));
        }
        for i in 0..40u64 {
            data.push(Point::new(
                500 + i,
                80.0 + (i % 8) as f64,
                80.0 + (i / 8) as f64,
            ));
        }
        data.push(Point::new(990, 85.0, 12.0));
        data.push(Point::new(991, 12.0, 85.0));
        let sharded = ShardedGrid::build(data, 6);
        let q = Point::anonymous(11.0, 11.0);
        let mut m = Metrics::default();
        let got = get_knn(&sharded, &q, 5, &mut m);
        assert_eq!(got, brute_force_knn(&sharded, &q, 5));
        assert!(m.shards_pruned > 0, "{m}");
        assert!(m.shards_scanned < 4, "{m}");
        // Every pruned shard's MINDIST² must exceed the final τ².
        let tau_sq = got.radius() * got.radius();
        let visited = m.shards_scanned as usize;
        let mut order: Vec<(f64, usize)> = sharded
            .parts
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(i, p)| (p.mindist_sq(&q), i))
            .collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for &(mindist_sq, _) in &order[visited..] {
            assert!(mindist_sq > tau_sq, "pruned shard within τ");
        }
    }

    #[test]
    fn scatter_gather_bounded_is_exact_within_threshold() {
        let data = pts(1600);
        let sharded = ShardedGrid::build(data, 8);
        let mut m = Metrics::default();
        let q = Point::anonymous(50.0, 50.0);
        let k = 12;
        let exact = brute_force_knn(&sharded, &q, k);
        let wide = get_knn_bounded(&sharded, &q, k, exact.radius() * 2.0 + 1.0, &mut m);
        assert_eq!(wide, exact);
        // Small threshold: every exact member within it must still appear.
        let threshold = 3.0;
        let bounded = get_knn_bounded(&sharded, &q, k, threshold, &mut m);
        let bounded_ids: std::collections::HashSet<u64> = bounded.ids().into_iter().collect();
        for nb in exact.members().iter().filter(|n| n.distance <= threshold) {
            assert!(bounded_ids.contains(&nb.point.id));
        }
    }

    #[test]
    fn k_zero_and_empty_relation_yield_empty_neighborhoods() {
        let g = GridIndex::build(pts(100), 5).unwrap();
        let mut m = Metrics::default();
        let q = Point::anonymous(1.0, 1.0);
        assert!(get_knn(&g, &q, 0, &mut m).is_empty());

        let empty =
            GridIndex::build_with_bounds(vec![], twoknn_geometry::Rect::new(0.0, 0.0, 1.0, 1.0), 2)
                .unwrap();
        assert!(get_knn(&empty, &q, 3, &mut m).is_empty());
    }

    #[test]
    fn k_exceeding_dataset_returns_all_points() {
        let g = GridIndex::build(pts(37), 4).unwrap();
        let mut m = Metrics::default();
        let nbr = get_knn(&g, &Point::anonymous(3.0, 3.0), 100, &mut m);
        assert_eq!(nbr.len(), 37);
    }

    #[test]
    fn bounded_knn_is_exact_within_threshold() {
        let g = GridIndex::build(pts(2000), 18).unwrap();
        let mut m = Metrics::default();
        let q = Point::anonymous(50.0, 50.0);
        let k = 12;
        let exact = brute_force_knn(&g, &q, k);
        // Threshold comfortably larger than the true kNN radius: bounded
        // result must be identical.
        let threshold = exact.radius() * 2.0 + 1.0;
        let bounded = get_knn_bounded(&g, &q, k, threshold, &mut m);
        assert_same_ids(&bounded, &exact);
    }

    #[test]
    fn bounded_knn_members_within_threshold_are_correct() {
        let g = GridIndex::build(pts(2000), 18).unwrap();
        let mut m = Metrics::default();
        let q = Point::anonymous(50.0, 50.0);
        let k = 40;
        let threshold = 3.0; // deliberately small
        let exact = brute_force_knn(&g, &q, k);
        let bounded = get_knn_bounded(&g, &q, k, threshold, &mut m);
        // Every exact member within the threshold must appear in the bounded
        // result (the guarantee Procedure 5 relies on).
        let bounded_ids: std::collections::HashSet<u64> = bounded.ids().into_iter().collect();
        for nb in exact.members().iter().filter(|n| n.distance <= threshold) {
            assert!(bounded_ids.contains(&nb.point.id));
        }
    }

    #[test]
    fn metrics_count_neighborhood_computations() {
        let g = GridIndex::build(pts(200), 6).unwrap();
        let mut m = Metrics::default();
        get_knn(&g, &Point::anonymous(0.0, 0.0), 4, &mut m);
        get_knn(&g, &Point::anonymous(9.0, 9.0), 4, &mut m);
        assert_eq!(m.neighborhoods_computed, 2);
        assert!(m.points_scanned > 0);
        assert!(m.distance_computations >= m.points_scanned);
    }

    #[test]
    fn filtered_knn_matches_brute_force_across_index_families() {
        use twoknn_geometry::Rect;
        let data = pts(1500);
        let g = GridIndex::build(data.clone(), 14).unwrap();
        let qt = QuadtreeIndex::build(data.clone(), 24).unwrap();
        let rt = StrRTree::build(data, 24).unwrap();
        let preds = [
            Predicate::True,
            Predicate::InRect(Rect::new(20.0, 20.0, 70.0, 70.0)),
            Predicate::InCircle {
                center: Point::anonymous(55.0, 64.0),
                radius: 15.0,
            },
            Predicate::IdRange { lo: 100, hi: 700 },
            Predicate::And(vec![
                Predicate::InRect(Rect::new(0.0, 0.0, 90.0, 90.0)),
                Predicate::Not(Box::new(Predicate::IdRange { lo: 0, hi: 50 })),
            ]),
            // Zero-match filter: the neighborhood must come back empty.
            Predicate::False,
        ];
        let mut m = Metrics::default();
        for pred in &preds {
            for (x, y, k) in [(10.0, 20.0, 1), (55.0, 64.0, 7), (0.0, 0.0, 25)] {
                let q = Point::anonymous(x, y);
                let want = brute_force_knn_filtered(&g, &q, k, pred);
                assert_eq!(
                    get_knn_filtered(&g, &q, k, pred, &mut m),
                    want,
                    "{pred} grid"
                );
                assert_eq!(
                    get_knn_filtered(&qt, &q, k, pred, &mut m),
                    want,
                    "{pred} qt"
                );
                assert_eq!(
                    get_knn_filtered(&rt, &q, k, pred, &mut m),
                    want,
                    "{pred} rt"
                );
            }
        }
    }

    #[test]
    fn filtered_knn_matches_brute_force_on_sharded_index() {
        use twoknn_geometry::Rect;
        let data = pts(1600);
        let sharded = ShardedGrid::build(data, 8);
        let pred = Predicate::And(vec![
            Predicate::InRect(Rect::new(10.0, 10.0, 100.0, 100.0)),
            Predicate::IdRange { lo: 0, hi: 1200 },
        ]);
        let mut m = Metrics::default();
        for (x, y, k) in [(10.0, 20.0, 3), (55.0, 64.0, 12), (111.0, 1.0, 40)] {
            let q = Point::anonymous(x, y);
            assert_eq!(
                get_knn_filtered(&sharded, &q, k, &pred, &mut m),
                brute_force_knn_filtered(&sharded, &q, k, &pred),
                "({x},{y}) k={k}"
            );
        }
    }

    #[test]
    fn filtered_knn_with_permissive_filter_prunes_blocks() {
        // Selectivity 1.0: τ converges exactly as in the unfiltered kernel,
        // so the MINDIST-ordered walk must prune far blocks.
        let g = GridIndex::build(pts(2000), 18).unwrap();
        let q = Point::anonymous(50.0, 50.0);
        let mut m = Metrics::default();
        let got = get_knn_filtered(&g, &q, 8, &Predicate::True, &mut m);
        let mut mu = Metrics::default();
        assert_eq!(got, get_knn(&g, &q, 8, &mut mu));
        assert!(m.blocks_pruned > 0, "{m}");
        assert!(
            m.points_scanned < g.num_points() as u64,
            "τ-pruning must avoid the full scan: {m}"
        );
    }

    #[test]
    fn filtered_knn_survives_a_filter_eliminating_the_tau_neighborhood() {
        // The filter excludes everything near the query: the k nearest
        // *matching* points are far away, so τ stays wide and the walk must
        // keep going past the (unfiltered) τ-neighborhood without losing
        // exactness.
        let g = GridIndex::build(pts(1500), 14).unwrap();
        let q = Point::anonymous(55.0, 64.0);
        let near = Predicate::InCircle {
            center: q,
            radius: 30.0,
        };
        let pred = Predicate::Not(Box::new(near));
        let mut m = Metrics::default();
        let got = get_knn_filtered(&g, &q, 5, &pred, &mut m);
        assert_eq!(got, brute_force_knn_filtered(&g, &q, 5, &pred));
        assert!(got.radius() > 30.0, "all matches are outside the disk");
    }

    /// Reusing one scratch across queries must not leak state between them.
    #[test]
    fn scratch_reuse_does_not_leak_state_across_queries() {
        let g = GridIndex::build(pts(800), 9).unwrap();
        let mut scratch = ScratchSpace::new();
        let mut m = Metrics::default();
        let queries = [(3.0, 3.0, 9), (90.0, 90.0, 2), (40.0, 11.0, 30)];
        for &(x, y, k) in &queries {
            let q = Point::anonymous(x, y);
            let shared = get_knn_in(&g, &q, k, &mut m, &mut scratch);
            let fresh = get_knn_in(&g, &q, k, &mut m, &mut ScratchSpace::new());
            assert_eq!(shared, fresh);
            assert_same_ids(&shared, &brute_force_knn(&g, &q, k));
        }
    }
}
