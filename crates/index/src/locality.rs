//! The *locality* of a point (Definition 2) and the locality-construction
//! algorithm of Sankaranarayanan, Samet & Varshney (ref. [15] in the paper).
//!
//! Definition 2: "The locality of a point, say p, is a set of blocks inside
//! which the neighborhood of p exists." The construction (described in
//! Section 5.2 of the paper) is:
//!
//! 1. Scan blocks in increasing **MAXDIST** from `p`, accumulating their point
//!    counts, until the accumulated count reaches `k`. Record `M`, the largest
//!    MAXDIST seen so far. At this point at least `k` points are known to lie
//!    within distance `M` of `p`, so no point farther than `M` can be among
//!    the `k` nearest.
//! 2. Scan the remaining blocks in increasing **MINDIST** from `p` and add
//!    them to the locality until a block with MINDIST greater than `M` is
//!    found; all later blocks can be ignored.
//!
//! The 2-kNN-select algorithm (Procedure 5) uses a *bounded* variant: a block
//! is added to the locality only if its MINDIST from `p` does not exceed an
//! externally supplied *search threshold*. This crate exposes both variants
//! through [`Locality::build`] and [`Locality::build_bounded`].

use twoknn_geometry::Point;

use crate::block::BlockMeta;
use crate::metrics::Metrics;
use crate::ordering::BlockOrder;
use crate::scratch::LocalityScratch;
use crate::traits::SpatialIndex;

/// The set of blocks guaranteed to contain the `k` nearest neighbors of a
/// query point (possibly restricted by a search threshold).
#[derive(Debug, Clone)]
pub struct Locality {
    query: Point,
    k: usize,
    /// Blocks in the locality, in the order they were added.
    blocks: Vec<BlockMeta>,
    /// The MAXDIST bound `M` established by phase 1 (infinite when fewer than
    /// `k` points exist in the whole index).
    maxdist_bound: f64,
    /// The external search threshold, if the bounded variant was used.
    threshold: Option<f64>,
}

impl Locality {
    /// Builds the (minimal) locality of `p` for a `k`-nearest-neighbor query,
    /// following the two-phase algorithm of reference \[15\] of the paper.
    pub fn build<I: SpatialIndex + ?Sized>(
        index: &I,
        p: &Point,
        k: usize,
        metrics: &mut Metrics,
    ) -> Self {
        Self::build_impl(index, p, k, None, metrics)
    }

    /// Builds the locality of `p`, adding only blocks whose MINDIST from `p`
    /// is at most `threshold`.
    ///
    /// This is the Procedure 5 variant used by the 2-kNN-select algorithm:
    /// when the final answer is known to lie within `threshold` of `p`
    /// (because it must come from the other predicate's neighborhood), blocks
    /// beyond the threshold cannot change the outcome of the intersection and
    /// are skipped.
    pub fn build_bounded<I: SpatialIndex + ?Sized>(
        index: &I,
        p: &Point,
        k: usize,
        threshold: f64,
        metrics: &mut Metrics,
    ) -> Self {
        Self::build_impl(index, p, k, Some(threshold), metrics)
    }

    fn build_impl<I: SpatialIndex + ?Sized>(
        index: &I,
        p: &Point,
        k: usize,
        threshold: Option<f64>,
        metrics: &mut Metrics,
    ) -> Self {
        let mut scratch = LocalityScratch::default();
        let maxdist_bound = collect_locality_blocks(index, p, k, threshold, metrics, &mut scratch);
        Self {
            query: *p,
            k,
            blocks: std::mem::take(&mut scratch.blocks),
            maxdist_bound,
            threshold,
        }
    }

    /// The query point this locality was built for.
    pub fn query(&self) -> Point {
        self.query
    }

    /// The `k` this locality was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The blocks that make up the locality.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// The MAXDIST bound `M` established by the first phase.
    pub fn maxdist_bound(&self) -> f64 {
        self.maxdist_bound
    }

    /// The search threshold used, for the bounded variant.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// Total number of points inside the locality's blocks.
    pub fn point_count(&self) -> usize {
        self.blocks.iter().map(|b| b.count).sum()
    }
}

/// The two-phase locality construction, writing the resulting block list
/// into `scratch.blocks` (in discovery order) and returning the MAXDIST
/// bound `M`. This is the allocation-free core shared by [`Locality::build`]
/// (which copies the blocks into an owned `Locality`) and the fused
/// [`crate::get_knn_in`] hot path (which scans the blocks straight out of
/// the scratch).
pub(crate) fn collect_locality_blocks<I: SpatialIndex + ?Sized>(
    index: &I,
    p: &Point,
    k: usize,
    threshold: Option<f64>,
    metrics: &mut Metrics,
    scratch: &mut LocalityScratch,
) -> f64 {
    collect_locality_blocks_in(index.blocks(), p, k, threshold, metrics, scratch)
}

/// Slice-level core of the locality construction: operates on any contiguous
/// run of blocks with ascending ids (the whole index, or one shard's
/// partition of a composed snapshot). The membership bitmap is indexed
/// relative to the first block's id so partition slices don't pay for the
/// full index width. Appends discovered blocks to `scratch.blocks` (clearing
/// it first) and returns the MAXDIST bound `M`.
pub(crate) fn collect_locality_blocks_in(
    all_blocks: &[BlockMeta],
    p: &Point,
    k: usize,
    threshold: Option<f64>,
    metrics: &mut Metrics,
    scratch: &mut LocalityScratch,
) -> f64 {
    let id_base = all_blocks.first().map(|b| b.id).unwrap_or(0);
    scratch.blocks.clear();
    scratch.in_locality.clear();
    scratch.in_locality.resize(all_blocks.len(), false);
    let in_locality = &mut scratch.in_locality;
    let blocks = &mut scratch.blocks;
    let passes_threshold = |b: &BlockMeta| match threshold {
        Some(t) => b.mindist(p) <= t,
        None => true,
    };

    // Phase 1: MAXDIST order until `k` points have been accumulated.
    let mut count = 0usize;
    let mut maxdist_bound = f64::INFINITY;
    let mut max_order = BlockOrder::new_in(
        all_blocks,
        p,
        crate::ordering::OrderMetric::MaxDist,
        &mut scratch.max_order,
    );
    let mut seen_maxdist: f64 = 0.0;
    while count < k {
        let Some(ob) = max_order.next() else {
            break; // Fewer than k points in the whole index.
        };
        metrics.blocks_scanned += 1;
        seen_maxdist = seen_maxdist.max(ob.distance);
        if ob.block.count == 0 {
            continue;
        }
        count += ob.block.count;
        if passes_threshold(&ob.block) {
            in_locality[(ob.block.id - id_base) as usize] = true;
            blocks.push(ob.block);
            metrics.locality_blocks += 1;
        }
    }
    max_order.recycle(&mut scratch.max_order);
    if count >= k {
        maxdist_bound = seen_maxdist;
    }

    // Phase 2: remaining blocks in MINDIST order while MINDIST <= M.
    let mut min_order = BlockOrder::new_in(
        all_blocks,
        p,
        crate::ordering::OrderMetric::MinDist,
        &mut scratch.min_order,
    );
    while let Some(ob) = min_order.next() {
        if ob.distance > maxdist_bound {
            break;
        }
        if let Some(t) = threshold {
            if ob.distance > t {
                break;
            }
        }
        if in_locality[(ob.block.id - id_base) as usize] {
            continue;
        }
        metrics.blocks_scanned += 1;
        if ob.block.count == 0 {
            continue;
        }
        in_locality[(ob.block.id - id_base) as usize] = true;
        blocks.push(ob.block);
        metrics.locality_blocks += 1;
    }
    min_order.recycle(&mut scratch.min_order);

    maxdist_bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridIndex;
    use crate::traits::SpatialIndex;

    fn grid(n: usize, cells: usize) -> GridIndex {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    ((i * 37) % 211) as f64 * 0.45,
                    ((i * 59) % 197) as f64 * 0.55,
                )
            })
            .collect();
        GridIndex::build(pts, cells).unwrap()
    }

    /// The locality must contain the true k nearest neighbors.
    #[test]
    fn locality_covers_true_knn() {
        let g = grid(800, 12);
        let q = Point::anonymous(30.0, 40.0);
        let k = 13;
        let mut metrics = Metrics::default();
        let loc = Locality::build(&g, &q, k, &mut metrics);

        // Brute-force k nearest.
        let mut all = g.all_points();
        all.sort_by(|a, b| {
            q.distance_sq(a)
                .partial_cmp(&q.distance_sq(b))
                .unwrap()
                .then(a.id.cmp(&b.id))
        });
        let covered_ids: std::collections::HashSet<u64> = loc
            .blocks()
            .iter()
            .flat_map(|b| g.block_points(b.id))
            .map(|p| p.id)
            .collect();
        for p in all.iter().take(k) {
            assert!(
                covered_ids.contains(&p.id),
                "true neighbor {p} missing from locality"
            );
        }
        assert!(loc.point_count() >= k);
        assert!(metrics.locality_blocks > 0);
    }

    #[test]
    fn locality_is_much_smaller_than_the_index_for_small_k() {
        let g = grid(5000, 24);
        let q = Point::anonymous(45.0, 52.0);
        let mut m = Metrics::default();
        let loc = Locality::build(&g, &q, 8, &mut m);
        assert!(loc.blocks().len() < g.num_blocks() / 4);
    }

    #[test]
    fn bounded_locality_never_exceeds_threshold() {
        let g = grid(2000, 16);
        let q = Point::anonymous(10.0, 10.0);
        let threshold = 12.5;
        let mut m = Metrics::default();
        let loc = Locality::build_bounded(&g, &q, 64, threshold, &mut m);
        for b in loc.blocks() {
            assert!(b.mindist(&q) <= threshold + 1e-9);
        }
        assert_eq!(loc.threshold(), Some(threshold));
    }

    #[test]
    fn bounded_locality_is_subset_of_unbounded() {
        let g = grid(2000, 16);
        let q = Point::anonymous(60.0, 70.0);
        let mut m = Metrics::default();
        let unbounded: std::collections::HashSet<u32> = Locality::build(&g, &q, 32, &mut m)
            .blocks()
            .iter()
            .map(|b| b.id)
            .collect();
        let bounded = Locality::build_bounded(&g, &q, 32, 5.0, &mut m);
        for b in bounded.blocks() {
            assert!(unbounded.contains(&b.id));
        }
        assert!(bounded.blocks().len() <= unbounded.len());
    }

    #[test]
    fn k_larger_than_dataset_takes_every_nonempty_block() {
        let g = grid(50, 6);
        let q = Point::anonymous(0.0, 0.0);
        let mut m = Metrics::default();
        let loc = Locality::build(&g, &q, 10_000, &mut m);
        assert_eq!(loc.point_count(), 50);
        assert!(loc.maxdist_bound().is_infinite());
    }

    #[test]
    fn empty_blocks_do_not_enter_the_locality() {
        let g = grid(100, 20); // many empty cells
        let q = Point::anonymous(20.0, 20.0);
        let mut m = Metrics::default();
        let loc = Locality::build(&g, &q, 5, &mut m);
        for b in loc.blocks() {
            assert!(b.count > 0);
        }
    }
}
