//! Structure-of-arrays (SoA) block storage: [`PointBlock`] and its borrowed
//! view [`BlockPoints`].
//!
//! Every algorithm in this workspace bottoms out in per-block point scans.
//! Storing a block as `Vec<Point>` (array-of-structs) interleaves the 8-byte
//! id between the coordinates, giving the distance loop a 24-byte stride that
//! defeats auto-vectorization. A [`PointBlock`] stores the same points as
//! three parallel columns — `ids`, `xs`, `ys` — so the hot kernels
//! ([`twoknn_geometry::euclidean_sq_batch`], the kth-distance scan in
//! [`crate::scratch`]) run over contiguous `&[f64]` slices the compiler can
//! vectorize.
//!
//! [`BlockPoints`] is the `&[Point]`-shaped borrow of a block that
//! [`crate::SpatialIndex::block_points`] hands out: a `Copy` view over the
//! three columns. Its iterator yields [`Point`]s **by value** (reassembled
//! from the columns), so row-oriented consumers — result pair construction,
//! invariant checks — read exactly what they read before the layout change,
//! while column-oriented kernels grab `xs()`/`ys()` directly.

use twoknn_geometry::{GeomResult, GeometryError, Point, PointId, Rect};

/// An owned block of points in structure-of-arrays layout.
///
/// Invariant: the three columns always have identical lengths.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointBlock {
    ids: Vec<PointId>,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PointBlock {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty block with room for `n` points per column.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            ids: Vec::with_capacity(n),
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
        }
    }

    /// Columnarizes a row-oriented slice of points.
    pub fn from_points(points: &[Point]) -> Self {
        let mut block = Self::with_capacity(points.len());
        for p in points {
            block.push(*p);
        }
        block
    }

    /// Number of points in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends a point to the columns.
    #[inline]
    pub fn push(&mut self, p: Point) {
        self.ids.push(p.id);
        self.xs.push(p.x);
        self.ys.push(p.y);
    }

    /// The point at row `i`, reassembled from the columns.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Point {
        Point::new(self.ids[i], self.xs[i], self.ys[i])
    }

    /// Removes the point at row `i` by swapping in the last row (O(1), does
    /// not preserve order) and returns it.
    pub fn swap_remove(&mut self, i: usize) -> Point {
        Point::new(
            self.ids.swap_remove(i),
            self.xs.swap_remove(i),
            self.ys.swap_remove(i),
        )
    }

    /// The row storing the point with `id`, if any (linear scan over the
    /// contiguous id column).
    #[inline]
    pub fn position_by_id(&self, id: PointId) -> Option<usize> {
        self.ids.iter().position(|&q| q == id)
    }

    /// The borrowed SoA view of the block.
    #[inline]
    pub fn view(&self) -> BlockPoints<'_> {
        BlockPoints {
            ids: &self.ids,
            xs: &self.xs,
            ys: &self.ys,
        }
    }

    /// Iterator over the points, reassembled by value.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.view().iter()
    }

    /// The points as a row-oriented `Vec` (tests, compaction gather).
    pub fn to_vec(&self) -> Vec<Point> {
        self.iter().collect()
    }

    /// Tight bounding box of the block's points.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyPointSet`] for an empty block.
    pub fn bounding(&self) -> GeomResult<Rect> {
        self.view().bounding()
    }
}

impl FromIterator<Point> for PointBlock {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> Self {
        let iter = iter.into_iter();
        let mut block = Self::with_capacity(iter.size_hint().0);
        for p in iter {
            block.push(p);
        }
        block
    }
}

impl From<Vec<Point>> for PointBlock {
    fn from(points: Vec<Point>) -> Self {
        Self::from_points(&points)
    }
}

/// A borrowed, `Copy` view of a block's point columns — what
/// [`crate::SpatialIndex::block_points`] returns.
#[derive(Debug, Clone, Copy)]
pub struct BlockPoints<'a> {
    ids: &'a [PointId],
    xs: &'a [f64],
    ys: &'a [f64],
}

impl<'a> BlockPoints<'a> {
    /// A view over three parallel columns.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the columns' lengths differ.
    pub fn from_columns(ids: &'a [PointId], xs: &'a [f64], ys: &'a [f64]) -> Self {
        debug_assert!(
            ids.len() == xs.len() && xs.len() == ys.len(),
            "SoA columns must have equal lengths"
        );
        Self { ids, xs, ys }
    }

    /// The empty view.
    pub const fn empty() -> Self {
        Self {
            ids: &[],
            xs: &[],
            ys: &[],
        }
    }

    /// Number of points in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The id column.
    #[inline]
    pub fn ids(&self) -> &'a [PointId] {
        self.ids
    }

    /// The x-coordinate column.
    #[inline]
    pub fn xs(&self) -> &'a [f64] {
        self.xs
    }

    /// The y-coordinate column.
    #[inline]
    pub fn ys(&self) -> &'a [f64] {
        self.ys
    }

    /// The point at row `i`, reassembled from the columns.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Point {
        Point::new(self.ids[i], self.xs[i], self.ys[i])
    }

    /// Iterator over the points, reassembled by value.
    pub fn iter(&self) -> BlockPointsIter<'a> {
        BlockPointsIter {
            view: *self,
            front: 0,
        }
    }

    /// Tight bounding box of the viewed points.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyPointSet`] for an empty view.
    pub fn bounding(&self) -> GeomResult<Rect> {
        if self.is_empty() {
            return Err(GeometryError::EmptyPointSet);
        }
        // Column-wise min/max folds — branch-light and vectorizable, unlike
        // the row-at-a-time `Rect::bounding`.
        let fold = |col: &[f64]| {
            col.iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                })
        };
        let (min_x, max_x) = fold(self.xs);
        let (min_y, max_y) = fold(self.ys);
        Ok(Rect::new(min_x, min_y, max_x, max_y))
    }
}

impl<'a> IntoIterator for BlockPoints<'a> {
    type Item = Point;
    type IntoIter = BlockPointsIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a [`BlockPoints`] view, yielding [`Point`]s by value.
#[derive(Debug, Clone)]
pub struct BlockPointsIter<'a> {
    view: BlockPoints<'a>,
    front: usize,
}

impl Iterator for BlockPointsIter<'_> {
    type Item = Point;

    #[inline]
    fn next(&mut self) -> Option<Point> {
        if self.front < self.view.len() {
            let p = self.view.get(self.front);
            self.front += 1;
            Some(p)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.view.len() - self.front;
        (left, Some(left))
    }
}

impl ExactSizeIterator for BlockPointsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as u64, i as f64 * 1.5, 10.0 - i as f64))
            .collect()
    }

    #[test]
    fn columns_roundtrip_points() {
        let input = pts(7);
        let block = PointBlock::from_points(&input);
        assert_eq!(block.len(), 7);
        assert_eq!(block.to_vec(), input);
        for (i, p) in input.iter().enumerate() {
            assert_eq!(block.get(i), *p);
            assert_eq!(block.view().get(i), *p);
        }
        let collected: PointBlock = input.iter().copied().collect();
        assert_eq!(collected, block);
    }

    #[test]
    fn view_exposes_raw_columns() {
        let block = PointBlock::from_points(&pts(4));
        let v = block.view();
        assert_eq!(v.ids(), &[0, 1, 2, 3]);
        assert_eq!(v.xs(), &[0.0, 1.5, 3.0, 4.5]);
        assert_eq!(v.ys(), &[10.0, 9.0, 8.0, 7.0]);
        assert_eq!(v.iter().len(), 4);
    }

    #[test]
    fn swap_remove_and_position_by_id() {
        let mut block = PointBlock::from_points(&pts(5));
        assert_eq!(block.position_by_id(3), Some(3));
        let removed = block.swap_remove(1);
        assert_eq!(removed.id, 1);
        assert_eq!(block.len(), 4);
        // Row 1 now holds the former last point; columns stay aligned.
        assert_eq!(block.get(1), Point::new(4, 6.0, 6.0));
        assert_eq!(block.position_by_id(1), None);
    }

    #[test]
    fn bounding_matches_row_oriented_rect_bounding() {
        let input = pts(9);
        let block = PointBlock::from_points(&input);
        assert_eq!(block.bounding().unwrap(), Rect::bounding(&input).unwrap());
        assert!(PointBlock::new().bounding().is_err());
        assert!(BlockPoints::empty().bounding().is_err());
    }

    #[test]
    fn empty_view_iterates_nothing() {
        assert_eq!(BlockPoints::empty().iter().count(), 0);
        assert!(BlockPoints::empty().is_empty());
    }
}
