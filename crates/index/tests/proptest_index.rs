//! Property-style tests of the index layer: block orderings, neighborhood
//! semantics, and the locality algorithm, on deterministic random point sets.
//! (`proptest` is not available offline; each property loops over seeded
//! cases drawn from the workspace's own RNG — same invariants, reproducible
//! failures.)

use twoknn_datagen::rng::StdRng;
use twoknn_geometry::Point;
use twoknn_index::{
    brute_force_knn, check_index_invariants, get_knn, BlockOrder, GridIndex, Locality, Metrics,
    OrderMetric, QuadtreeIndex, SpatialIndex,
};

const CASES: u64 = 64;

/// Thin adapter keeping the property bodies terse.
struct TestRng(StdRng);

impl TestRng {
    fn new(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.gen_range(lo..hi)
    }

    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..hi)
    }

    fn points(&mut self, max_n: usize) -> Vec<Point> {
        let n = self.usize(1, max_n + 1);
        (0..n)
            .map(|i| Point::new(i as u64, self.f64(0.0, 200.0), self.f64(0.0, 200.0)))
            .collect()
    }
}

/// Block orderings yield every block exactly once, in non-decreasing distance
/// order, for both metrics.
#[test]
fn block_orderings_are_complete_and_sorted() {
    for case in 0..CASES {
        let mut rng = TestRng::new(case);
        let pts = rng.points(200);
        let cells = rng.usize(2, 10);
        let grid = GridIndex::build(pts, cells).unwrap();
        let q = Point::anonymous(rng.f64(-50.0, 250.0), rng.f64(-50.0, 250.0));
        for metric in [OrderMetric::MinDist, OrderMetric::MaxDist] {
            let mut seen = std::collections::HashSet::new();
            let mut prev = f64::NEG_INFINITY;
            for ob in BlockOrder::new(grid.blocks(), &q, metric) {
                assert!(ob.distance + 1e-9 >= prev, "case {case}");
                prev = ob.distance;
                assert!(seen.insert(ob.block.id), "case {case}");
            }
            assert_eq!(seen.len(), grid.num_blocks(), "case {case}");
        }
    }
}

/// The neighborhood returned by getkNN has the documented shape: at most k
/// members, sorted by distance, all within the brute-force radius.
#[test]
fn neighborhood_shape_and_radius() {
    for case in 0..CASES {
        let mut rng = TestRng::new(1_000 + case);
        let pts = rng.points(250);
        let cells = rng.usize(2, 12);
        let k = rng.usize(1, 25);
        let grid = GridIndex::build(pts, cells).unwrap();
        let q = Point::anonymous(rng.f64(0.0, 200.0), rng.f64(0.0, 200.0));
        let mut m = Metrics::default();
        let nbr = get_knn(&grid, &q, k, &mut m);
        assert!(nbr.len() <= k, "case {case}");
        assert_eq!(nbr.len(), k.min(grid.num_points()), "case {case}");
        let dists: Vec<f64> = nbr.members().iter().map(|n| n.distance).collect();
        assert!(
            dists.windows(2).all(|w| w[0] <= w[1] + 1e-12),
            "case {case}"
        );
        let oracle = brute_force_knn(&grid, &q, k);
        assert!((nbr.radius() - oracle.radius()).abs() < 1e-9, "case {case}");
    }
}

/// The locality's point count is at least min(k, n) and its blocks all hold
/// at least one point.
#[test]
fn locality_is_sufficient_and_nonempty() {
    for case in 0..CASES {
        let mut rng = TestRng::new(2_000 + case);
        let pts = rng.points(250);
        let n = pts.len();
        let k = rng.usize(1, 30);
        let grid = GridIndex::build(pts, 8).unwrap();
        let q = Point::anonymous(rng.f64(0.0, 200.0), rng.f64(0.0, 200.0));
        let mut m = Metrics::default();
        let loc = Locality::build(&grid, &q, k, &mut m);
        assert!(loc.point_count() >= k.min(n), "case {case}");
        assert!(loc.blocks().iter().all(|b| b.count > 0), "case {case}");
    }
}

/// Quadtree leaves partition the point set (every point is in exactly one
/// leaf) and the index invariants hold for random capacities.
#[test]
fn quadtree_partitions_points() {
    for case in 0..CASES {
        let mut rng = TestRng::new(3_000 + case);
        let pts = rng.points(300);
        let capacity = rng.usize(1, 40);
        let n = pts.len();
        let quad = QuadtreeIndex::build(pts, capacity).unwrap();
        check_index_invariants(&quad).unwrap_or_else(|e| panic!("case {case}: {e}"));
        let total: usize = quad.blocks().iter().map(|b| b.count).sum();
        assert_eq!(total, n, "case {case}");
    }
}
