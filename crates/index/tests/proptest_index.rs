//! Property-based tests of the index layer: block orderings, neighborhood
//! semantics, and the locality algorithm, on randomly generated point sets.

use proptest::prelude::*;
use twoknn_geometry::Point;
use twoknn_index::{
    brute_force_knn, check_index_invariants, get_knn, BlockOrder, GridIndex, Locality, Metrics,
    OrderMetric, QuadtreeIndex, SpatialIndex,
};

fn points(max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..200.0, 0.0f64..200.0), 1..=max_n).prop_map(|coords| {
        coords
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Point::new(i as u64, x, y))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Block orderings yield every block exactly once, in non-decreasing
    /// distance order, for both metrics.
    #[test]
    fn block_orderings_are_complete_and_sorted(
        pts in points(200),
        qx in -50.0f64..250.0,
        qy in -50.0f64..250.0,
        cells in 2usize..10,
    ) {
        let grid = GridIndex::build(pts, cells).unwrap();
        let q = Point::anonymous(qx, qy);
        for metric in [OrderMetric::MinDist, OrderMetric::MaxDist] {
            let mut seen = std::collections::HashSet::new();
            let mut prev = f64::NEG_INFINITY;
            for ob in BlockOrder::new(grid.blocks(), &q, metric) {
                prop_assert!(ob.distance + 1e-9 >= prev);
                prev = ob.distance;
                prop_assert!(seen.insert(ob.block.id));
            }
            prop_assert_eq!(seen.len(), grid.num_blocks());
        }
    }

    /// The neighborhood returned by getkNN has the documented shape: at most
    /// k members, sorted by distance, all within the brute-force radius.
    #[test]
    fn neighborhood_shape_and_radius(
        pts in points(250),
        qx in 0.0f64..200.0,
        qy in 0.0f64..200.0,
        k in 1usize..25,
        cells in 2usize..12,
    ) {
        let grid = GridIndex::build(pts, cells).unwrap();
        let q = Point::anonymous(qx, qy);
        let mut m = Metrics::default();
        let nbr = get_knn(&grid, &q, k, &mut m);
        prop_assert!(nbr.len() <= k);
        prop_assert_eq!(nbr.len(), k.min(grid.num_points()));
        let dists: Vec<f64> = nbr.members().iter().map(|n| n.distance).collect();
        prop_assert!(dists.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        let oracle = brute_force_knn(&grid, &q, k);
        prop_assert!((nbr.radius() - oracle.radius()).abs() < 1e-9);
    }

    /// The locality's point count is at least min(k, n) and its blocks all
    /// hold at least one point.
    #[test]
    fn locality_is_sufficient_and_nonempty(
        pts in points(250),
        qx in 0.0f64..200.0,
        qy in 0.0f64..200.0,
        k in 1usize..30,
    ) {
        let n = pts.len();
        let grid = GridIndex::build(pts, 8).unwrap();
        let q = Point::anonymous(qx, qy);
        let mut m = Metrics::default();
        let loc = Locality::build(&grid, &q, k, &mut m);
        prop_assert!(loc.point_count() >= k.min(n));
        prop_assert!(loc.blocks().iter().all(|b| b.count > 0));
    }

    /// Quadtree leaves partition the point set (every point is in exactly one
    /// leaf) and the index invariants hold for random capacities.
    #[test]
    fn quadtree_partitions_points(pts in points(300), capacity in 1usize..40) {
        let n = pts.len();
        let quad = QuadtreeIndex::build(pts, capacity).unwrap();
        check_index_invariants(&quad).map_err(|e| TestCaseError::fail(e))?;
        let total: usize = quad.blocks().iter().map(|b| b.count).sum();
        prop_assert_eq!(total, n);
    }
}
