//! Allocation accounting on the select hot path.
//!
//! The scratch-space refactor promises that once a thread's (or an explicit)
//! [`ScratchSpace`] has warmed up, `get_knn_in` allocates nothing beyond the
//! returned [`Neighborhood`]. This test pins that with a counting
//! `#[global_allocator]` wrapper: the library itself forbids `unsafe`, but an
//! integration test is its own crate, so the two `unsafe` trampolines below
//! (plain delegation to the `System` allocator) are fine here.
//!
//! The counter is process-global, so every check runs inside the single
//! `#[test]` below — Rust runs tests in one process, and a second test's
//! allocations would race the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use twoknn_geometry::{Point, Predicate, Rect};
use twoknn_index::{
    get_knn_best_first_in, get_knn_bounded_in, get_knn_filtered_in, get_knn_in, GridIndex, Metrics,
    Neighborhood, ScratchSpace, SpatialIndex,
};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// [`System`] with an allocation counter in front.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn relation(n: u64) -> GridIndex {
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15);
            Point::new(
                i,
                (h % 100_000) as f64 * 0.01,
                ((h >> 20) % 100_000) as f64 * 0.01,
            )
        })
        .collect();
    GridIndex::build(pts, 24).unwrap()
}

/// Allocations of `queries` warm kNN calls through `run`, after a warm-up
/// sweep over the same query set has grown the scratch to its working set.
fn warm_allocations(
    queries: &[Point],
    mut run: impl FnMut(&Point) -> Neighborhood,
) -> (u64, usize) {
    for q in queries {
        std::hint::black_box(run(q));
    }
    let before = allocations();
    let mut total_members = 0;
    for q in queries {
        total_members += std::hint::black_box(run(q)).len();
    }
    (allocations() - before, total_members)
}

#[test]
fn warm_knn_queries_allocate_only_the_returned_neighborhood() {
    let index = relation(20_000);
    let k = 12;
    let queries: Vec<Point> = (0..64)
        .map(|i| Point::anonymous((i * 17 % 1000) as f64, (i * 31 % 1000) as f64))
        .collect();

    // Locality-based batched path: the worst case is one Vec per returned
    // Neighborhood (members buffer) — `from_unsorted` may shrink/reallocate,
    // so allow 2 per query. The old code added two BinaryHeaps, the locality
    // block list, the bitmap, and per-block gather buffers on top.
    let mut scratch = ScratchSpace::new();
    let mut metrics = Metrics::default();
    let (allocs, members) = warm_allocations(&queries, |q| {
        get_knn_in(&index, q, k, &mut metrics, &mut scratch)
    });
    assert_eq!(members, k * queries.len(), "sanity: full neighborhoods");
    assert!(
        allocs <= 2 * queries.len() as u64,
        "locality path: {allocs} allocations for {} warm queries \
         (> 2 per returned neighborhood)",
        queries.len()
    );

    // Bounded variant shares the same scratch and the same guarantee.
    let (allocs, _) = warm_allocations(&queries, |q| {
        get_knn_bounded_in(&index, q, k, 1e6, &mut metrics, &mut scratch)
    });
    assert!(
        allocs <= 2 * queries.len() as u64,
        "bounded path: {allocs} allocations for {} warm queries",
        queries.len()
    );

    // Best-first: the priority-queue storage is borrowed from the scratch,
    // replacing the old per-query `BinaryHeap::with_capacity(num_blocks)`.
    let (allocs, _) = warm_allocations(&queries, |q| {
        get_knn_best_first_in(&index, q, k, &mut metrics, &mut scratch)
    });
    assert!(
        allocs <= 2 * queries.len() as u64,
        "best-first path: {allocs} allocations for {} warm queries",
        queries.len()
    );

    // Filtered kernel: the predicate mask and block-order buffer live in the
    // scratch too, so pre-kNN filter pushdown keeps the same guarantee.
    let predicate = Predicate::And(vec![
        Predicate::InRect(Rect::new(0.0, 0.0, 1000.0, 1000.0)),
        Predicate::IdRange { lo: 0, hi: 15_000 },
    ]);
    let (allocs, _) = warm_allocations(&queries, |q| {
        get_knn_filtered_in(&index, q, k, &predicate, &mut metrics, &mut scratch)
    });
    assert!(
        allocs <= 2 * queries.len() as u64,
        "filtered path: {allocs} allocations for {} warm queries",
        queries.len()
    );

    // The four paths stayed on the same index and really did the work.
    assert!(index.num_points() == 20_000 && metrics.neighborhoods_computed > 0);
}
