//! Errors reported by the query-processing layer.

/// Errors produced while building, validating or executing query plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A kNN predicate was given `k = 0`.
    ZeroK {
        /// Which predicate had the zero k (for diagnostics).
        predicate: &'static str,
    },
    /// A plan transformation was rejected because it would change the query's
    /// result (e.g. pushing a kNN-select below the inner relation of a
    /// kNN-join, Section 3 of the paper).
    InvalidTransformation {
        /// Human-readable explanation of why the transformation is invalid.
        reason: String,
    },
    /// The plan references a relation that was not supplied to the executor.
    UnknownRelation {
        /// Name of the missing relation.
        name: String,
    },
    /// The plan's shape does not match any supported two-predicate query.
    UnsupportedPlanShape {
        /// Human-readable description of the offending shape.
        description: String,
    },
    /// A continuous-query call referenced a subscription id that was never
    /// issued or has been unsubscribed.
    UnknownSubscription {
        /// The raw subscription id.
        id: u64,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ZeroK { predicate } => {
                write!(f, "kNN predicate `{predicate}` must have k >= 1")
            }
            QueryError::InvalidTransformation { reason } => {
                write!(f, "invalid plan transformation: {reason}")
            }
            QueryError::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            QueryError::UnsupportedPlanShape { description } => {
                write!(f, "unsupported plan shape: {description}")
            }
            QueryError::UnknownSubscription { id } => {
                write!(f, "unknown subscription `sub#{id}`")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(QueryError::ZeroK { predicate: "join" }
            .to_string()
            .contains("join"));
        assert!(QueryError::InvalidTransformation { reason: "x".into() }
            .to_string()
            .contains("invalid"));
        assert!(QueryError::UnknownRelation {
            name: "Hotels".into()
        }
        .to_string()
        .contains("Hotels"));
        assert!(QueryError::UnsupportedPlanShape {
            description: "three joins".into()
        }
        .to_string()
        .contains("three joins"));
        assert!(QueryError::UnknownSubscription { id: 9 }
            .to_string()
            .contains("sub#9"));
    }
}
