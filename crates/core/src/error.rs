//! Errors reported by the query-processing layer.

/// A syntax error produced by the textual query parser, carrying the byte
/// span of the offending token in the original query string.
///
/// The [`std::fmt::Display`] impl renders the error caret-style under the
/// query line, so `eprintln!("{err}")` shows exactly where parsing stopped:
///
/// ```text
/// parse error at byte 27: expected `)`
///   FIND Sites WHERE KNN(5, 10 20)
///                              ^^
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser expected or rejected.
    pub message: String,
    /// The query text being parsed (kept for caret rendering).
    pub query: String,
    /// Byte offset where the offending token starts.
    pub start: usize,
    /// Byte offset one past the offending token (`start == end` at EOF).
    pub end: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "parse error at byte {}: {}", self.start, self.message)?;
        writeln!(f, "  {}", self.query)?;
        let pad = self.query[..self.start.min(self.query.len())]
            .chars()
            .count();
        let width = self.query[self.start.min(self.query.len())..self.end.min(self.query.len())]
            .chars()
            .count()
            .max(1);
        write!(f, "  {}{}", " ".repeat(pad), "^".repeat(width))
    }
}

impl std::error::Error for ParseError {}

/// Errors produced while building, validating or executing query plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A kNN predicate was given `k = 0`.
    ZeroK {
        /// Which predicate had the zero k (for diagnostics).
        predicate: &'static str,
    },
    /// A plan transformation was rejected because it would change the query's
    /// result (e.g. pushing a kNN-select below the inner relation of a
    /// kNN-join, Section 3 of the paper).
    InvalidTransformation {
        /// Human-readable explanation of why the transformation is invalid.
        reason: String,
    },
    /// The plan references a relation that was not supplied to the executor.
    UnknownRelation {
        /// Name of the missing relation.
        name: String,
    },
    /// The plan's shape does not match any supported two-predicate query.
    UnsupportedPlanShape {
        /// Human-readable description of the offending shape.
        description: String,
    },
    /// A continuous-query call referenced a subscription id that was never
    /// issued or has been unsubscribed.
    UnknownSubscription {
        /// The raw subscription id.
        id: u64,
    },
    /// A textual query failed to parse.
    Parse(ParseError),
}

impl From<ParseError> for QueryError {
    fn from(err: ParseError) -> Self {
        QueryError::Parse(err)
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ZeroK { predicate } => {
                write!(f, "kNN predicate `{predicate}` must have k >= 1")
            }
            QueryError::InvalidTransformation { reason } => {
                write!(f, "invalid plan transformation: {reason}")
            }
            QueryError::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            QueryError::UnsupportedPlanShape { description } => {
                write!(f, "unsupported plan shape: {description}")
            }
            QueryError::UnknownSubscription { id } => {
                write!(f, "unknown subscription `sub#{id}`")
            }
            QueryError::Parse(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Parse(err) => Some(err),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(QueryError::ZeroK { predicate: "join" }
            .to_string()
            .contains("join"));
        assert!(QueryError::InvalidTransformation { reason: "x".into() }
            .to_string()
            .contains("invalid"));
        assert!(QueryError::UnknownRelation {
            name: "Hotels".into()
        }
        .to_string()
        .contains("Hotels"));
        assert!(QueryError::UnsupportedPlanShape {
            description: "three joins".into()
        }
        .to_string()
        .contains("three joins"));
        assert!(QueryError::UnknownSubscription { id: 9 }
            .to_string()
            .contains("sub#9"));
    }

    #[test]
    fn parse_error_renders_a_caret_under_the_span() {
        let err = ParseError {
            message: "expected `)`".into(),
            query: "FIND Sites WHERE KNN(5, 10 20)".into(),
            start: 27,
            end: 29,
        };
        let rendered = err.to_string();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("byte 27"));
        assert!(lines[0].contains("expected `)`"));
        assert_eq!(lines[1], "  FIND Sites WHERE KNN(5, 10 20)");
        assert_eq!(lines[2], &format!("  {}^^", " ".repeat(27)));

        // At EOF the span is empty but the caret still renders.
        let eof = ParseError {
            message: "unexpected end of query".into(),
            query: "FIND".into(),
            start: 4,
            end: 4,
        };
        assert!(eof.to_string().ends_with('^'));

        // Folds into QueryError with the same rendering and a source chain.
        let wrapped: QueryError = err.clone().into();
        assert_eq!(wrapped.to_string(), err.to_string());
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
