//! One versioned relation: independently versioned spatial shards behind an
//! atomically swapped composed snapshot.
//!
//! # Concurrency model
//!
//! * **Readers** call [`VersionedRelation::load`], which clones the current
//!   composed snapshot `Arc` under a read lock held only for the clone — a
//!   few nanoseconds. The query then runs entirely against its pinned
//!   [`RelationSnapshot`], lock-free.
//! * **Writers** serialize on one relation-level `ingest_lock` only to
//!   *route* a batch (each op's target shard depends on what earlier ops
//!   made visible). The actual work happens under the **per-shard** writer
//!   mutexes of just the shards the batch touches — a write burst confined
//!   to one shard contends on that shard alone, and a per-shard compaction
//!   publish never blocks ingest into other shards.
//! * **Per-shard compaction** captures `(shard snapshot, log length)` under
//!   that shard's writer lock, rebuilds the shard's base *outside* all
//!   locks (ingest everywhere continues concurrently), then re-enters the
//!   shard lock to replay the shard ops logged since the capture and swap
//!   the shard in. Each shard has its own in-flight slot, so rebuilds of
//!   different shards overlap freely on the worker pool.
//! * **Publishing** — the only place shard state becomes visible — happens
//!   under the `compose_lock`: the affected shard pointers are swapped and a
//!   new composed [`RelationSnapshot`] (concatenated blocks + partition
//!   tier) is built and swapped in as one step, so readers never observe a
//!   torn batch. Lock order is always `ingest_lock → shard writers
//!   (ascending) → compose_lock`, which keeps the paths deadlock-free.
//! * **Durability** (when enabled): the original batch is appended to the
//!   relation's WAL as one record *between* apply and publish, while every
//!   touched shard's writer lock is held. A concurrent compaction capture
//!   of a touched shard therefore reads the WAL head either before the
//!   append (the batch stays in the uncovered suffix) or after the publish
//!   (the captured snapshot already contains the batch) — never in between,
//!   so `covered_seq` can never claim an op the persisted base misses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use twoknn_geometry::{Point, PointId, Rect};
use twoknn_index::Metrics;

use crate::exec::WorkerPool;

use super::delta::{Delta, WriteOp};
use super::overlay::OverlayConfig;
use super::recover::RelationDurability;
use super::shard::{RelationSnapshot, ShardConfig, ShardMap};
use super::snapshot::{BaseIndex, IndexConfig, ShardSnapshot};
use super::StoreConfig;

/// One spatial shard's mutable state: its current snapshot, its writer log
/// (the ops since the shard's base was built), and its compaction slot.
struct ShardState {
    current: RwLock<Arc<ShardSnapshot>>,
    /// Ops applied to this shard since its last compaction publish.
    writer: Mutex<Vec<WriteOp>>,
    /// Guards against more than one in-flight rebuild of this shard.
    compacting: AtomicBool,
}

impl ShardState {
    fn snapshot(&self) -> Arc<ShardSnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Everything one ingest batch produced, captured race-free under the
/// relation's ingest lock: per-op outcomes plus the snapshots on either side
/// of the publish. The continuous-query maintainer consumes `prev` (to
/// recover old positions of moved/removed points) and the published version
/// (the version standing queries re-evaluate against).
pub(crate) struct IngestReceipt {
    /// Number of ops that changed the visible point set.
    pub effective: usize,
    /// The published composed snapshot's version.
    pub version: u64,
    /// Per op: whether it changed the visible point set.
    pub changed: Vec<bool>,
    /// Per op: whether the op's id was visible immediately before it
    /// (within the batch: earlier ops of the same batch count).
    pub visible_before: Vec<bool>,
    /// The composed snapshot the batch was applied to — the pre-publish
    /// state the maintainer recovers old positions from. (Re-evaluations
    /// deliberately pin the *current* snapshot rather than the published
    /// one, so later evaluations always cover earlier publishes; the receipt
    /// therefore does not carry the published snapshot itself.)
    pub prev: Arc<RelationSnapshot>,
}

/// A relation whose current snapshot is replaced, never mutated, stored as
/// independently versioned spatial shards.
pub struct VersionedRelation {
    name: String,
    /// The composed view readers pin.
    current: RwLock<Arc<RelationSnapshot>>,
    map: ShardMap,
    shards: Vec<ShardState>,
    /// Serializes batch routing (op → shard resolution orders batches).
    ingest_lock: Mutex<()>,
    /// Serializes publishes of the composed snapshot.
    compose_lock: Mutex<()>,
    config: IndexConfig,
    compaction_threshold: usize,
    overlay: OverlayConfig,
    /// WAL + manifest of this relation, when the store is durable.
    durability: Option<Arc<RelationDurability>>,
}

impl VersionedRelation {
    pub(crate) fn new(
        name: String,
        base: BaseIndex,
        config: IndexConfig,
        compaction_threshold: usize,
        overlay: OverlayConfig,
        sharding: ShardConfig,
        durability: Option<Arc<RelationDurability>>,
    ) -> Self {
        let map = ShardMap::new(base.bounds(), sharding.shards_per_axis);
        let shard_snaps: Vec<Arc<ShardSnapshot>> = if map.num_shards() == 1 {
            // Unsharded: the registered index is used as-is.
            vec![Arc::new(ShardSnapshot::clean(base, 0, overlay))]
        } else {
            // Split the registered points by shard and build one base per
            // shard over its routing cell (extended by its points' bounds).
            let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); map.num_shards()];
            for p in base.all_points() {
                buckets[map.shard_of(&p)].push(p);
            }
            buckets
                .into_iter()
                .enumerate()
                .map(|(s, pts)| {
                    let shard_base = config.build(pts, map.shard_rect(s));
                    Arc::new(ShardSnapshot::clean(shard_base, 0, overlay))
                })
                .collect()
        };
        Self::assemble(
            name,
            map,
            shard_snaps,
            config,
            compaction_threshold,
            overlay,
            durability,
        )
    }

    /// Rebuilds a relation from recovered state: one pre-loaded base (the
    /// opened block file) per shard, with the shard map restored from the
    /// persisted registration `bounds` and `per_axis` — the relation keeps
    /// its persisted structure even if the store was reopened with a
    /// different [`super::ShardConfig`]. Runtime knobs (compaction
    /// threshold, overlay sizing) come from the current `store` config.
    pub(crate) fn from_recovered(
        name: String,
        bounds: Rect,
        per_axis: usize,
        bases: Vec<BaseIndex>,
        config: IndexConfig,
        store: &StoreConfig,
        durability: Arc<RelationDurability>,
    ) -> Self {
        let map = ShardMap::new(bounds, per_axis);
        debug_assert_eq!(map.num_shards(), bases.len());
        let shard_snaps = bases
            .into_iter()
            .map(|base| Arc::new(ShardSnapshot::clean(base, 0, store.overlay)))
            .collect();
        Self::assemble(
            name,
            map,
            shard_snaps,
            config,
            store.compaction_threshold,
            store.overlay,
            Some(durability),
        )
    }

    fn assemble(
        name: String,
        map: ShardMap,
        shard_snaps: Vec<Arc<ShardSnapshot>>,
        config: IndexConfig,
        compaction_threshold: usize,
        overlay: OverlayConfig,
        durability: Option<Arc<RelationDurability>>,
    ) -> Self {
        let shards = shard_snaps
            .iter()
            .map(|snap| ShardState {
                current: RwLock::new(Arc::clone(snap)),
                writer: Mutex::new(Vec::new()),
                compacting: AtomicBool::new(false),
            })
            .collect();
        let composed = RelationSnapshot::compose(map, shard_snaps, 0);
        Self {
            name,
            current: RwLock::new(Arc::new(composed)),
            map,
            shards,
            ingest_lock: Mutex::new(()),
            compose_lock: Mutex::new(()),
            config,
            compaction_threshold,
            overlay,
            durability,
        }
    }

    /// The relation's durable state, when the store is durable.
    pub(crate) fn durability(&self) -> Option<&Arc<RelationDurability>> {
        self.durability.as_ref()
    }

    /// Writes every shard's current base as a block file and commits the
    /// manifest — the registration-time persist that makes a fresh durable
    /// relation recoverable. (Shard bases at this point cover no WAL
    /// records, hence `covered_seq` 0.)
    pub(crate) fn persist_initial(&self) -> std::io::Result<()> {
        if let Some(d) = &self.durability {
            for (s, state) in self.shards.iter().enumerate() {
                d.persist_shard(s, state.snapshot().base().as_ref(), 0)?;
            }
        }
        Ok(())
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rebuild config compaction uses.
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// The per-shard delta size at which ingest schedules a background
    /// rebuild of that shard.
    pub fn compaction_threshold(&self) -> usize {
        self.compaction_threshold
    }

    /// Number of spatial shards (≥ 1).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Pins the current composed snapshot. The returned `Arc` stays valid
    /// (and immutable) regardless of concurrent ingest or compaction.
    pub fn load(&self) -> Arc<RelationSnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Rebuilds and swaps the composed snapshot from the current shard
    /// snapshots at `current version + 1`, returning the new version.
    /// Callers must hold the `compose_lock`.
    fn recompose_locked(&self) -> u64 {
        let version = self.load().version() + 1;
        let snaps = self.shards.iter().map(ShardState::snapshot).collect();
        let composed = RelationSnapshot::compose(self.map, snaps, version);
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(composed);
        version
    }

    /// Applies a batch of write operations as **one** atomic visibility
    /// step: queries either see all of the batch or none of it.
    ///
    /// (Non-test code goes through
    /// [`VersionedRelation::ingest_with_receipt`], which this wraps.)
    #[cfg(test)]
    pub(crate) fn ingest(&self, ops: &[WriteOp]) -> (usize, u64) {
        let receipt = self.ingest_with_receipt(ops);
        (receipt.effective, receipt.version)
    }

    /// Ingests one batch, reporting — per op, race-free under the ingest
    /// lock — the full [`IngestReceipt`]: visibility before each op
    /// (`Database::update` uses this for its return value) and the pre-batch
    /// composed snapshot (the continuous-query maintainer uses it for guard
    /// probing).
    ///
    /// Each op is routed to the shard its coordinates map to; an upsert that
    /// moves a point across a shard boundary becomes a remove in the old
    /// shard plus the upsert in the new one, applied in the same publish so
    /// the point is never visible twice or not at all.
    pub(crate) fn ingest_with_receipt(&self, ops: &[WriteOp]) -> IngestReceipt {
        self.ingest_full(ops, false)
    }

    /// Recovery-time ingest: applies a WAL record through the normal routing
    /// and publish machinery but (a) never re-appends to the WAL and (b)
    /// retracts *every* stale copy of a touched id. Shards persist their
    /// bases independently, so after a crash a moved point can be visible in
    /// two shards at once (old position in a shard persisted before the
    /// move, new position in one persisted after); the move op itself has a
    /// sequence number past the less-advanced shard's `covered_seq`, so it
    /// is guaranteed to be among the replayed records and cleans up the
    /// duplicate here.
    pub(crate) fn ingest_replay(&self, ops: &[WriteOp]) {
        self.ingest_full(ops, true);
    }

    fn ingest_full(&self, ops: &[WriteOp], replay: bool) -> IngestReceipt {
        let _ingest = self
            .ingest_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let prev = self.load();
        let nshards = self.shards.len();

        // Route ops to per-shard sub-batches. Visibility is resolved against
        // the current shard snapshots (compaction never changes visibility,
        // so a concurrent publish cannot skew this) plus the batch's own
        // earlier ops.
        let shard_snaps: Vec<Arc<ShardSnapshot>> =
            self.shards.iter().map(ShardState::snapshot).collect();
        let mut where_is: HashMap<PointId, Option<usize>> = HashMap::new();
        let locate_id =
            |where_is: &HashMap<PointId, Option<usize>>, id: PointId| match where_is.get(&id) {
                Some(loc) => *loc,
                None => shard_snaps.iter().position(|s| s.contains_id(id)),
            };

        let mut sub: Vec<Vec<WriteOp>> = vec![Vec::new(); nshards];
        // In replay mode: pushes retractions for every shard beyond the
        // first that still holds `id` — live ingest maintains the ≤ 1-shard
        // invariant, but independently persisted shard bases can briefly
        // break it (see `ingest_replay`). `known` distinguishes ids the
        // batch itself already settled (the first touching op cleaned up).
        let retract_stale =
            |sub: &mut Vec<Vec<WriteOp>>, id: PointId, keep: Option<usize>, known: bool| {
                if !replay || known {
                    return;
                }
                for (s, snap) in shard_snaps.iter().enumerate() {
                    if Some(s) != keep && snap.contains_id(id) {
                        sub[s].push(WriteOp::Remove(id));
                    }
                }
            };
        // Per op: the (shard, sub-batch index) of its primary sub-op, `None`
        // for ineffective removes that route nowhere.
        let mut primary: Vec<Option<(usize, usize)>> = Vec::with_capacity(ops.len());
        let mut visible_before = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                WriteOp::Upsert(p) => {
                    let known = where_is.contains_key(&p.id);
                    let target = self.map.shard_of(p);
                    let old = locate_id(&where_is, p.id);
                    visible_before.push(old.is_some());
                    if let Some(o) = old {
                        if o != target {
                            // Cross-shard move: retract from the old shard in
                            // the same publish.
                            sub[o].push(WriteOp::Remove(p.id));
                        }
                    }
                    // Replay: also retract stale duplicates from any shard
                    // that is neither the routed-from nor the target shard.
                    retract_stale(&mut sub, p.id, old.filter(|o| *o == target), known);
                    primary.push(Some((target, sub[target].len())));
                    sub[target].push(*op);
                    where_is.insert(p.id, Some(target));
                }
                WriteOp::Remove(id) => {
                    let known = where_is.contains_key(id);
                    let old = locate_id(&where_is, *id);
                    visible_before.push(old.is_some());
                    match old {
                        Some(o) => {
                            primary.push(Some((o, sub[o].len())));
                            sub[o].push(*op);
                            where_is.insert(*id, None);
                        }
                        None => primary.push(None),
                    }
                    retract_stale(&mut sub, *id, old, known);
                }
            }
        }

        // Apply the sub-batches under the affected shards' writer locks
        // (ascending order), holding them through the publish.
        struct Applied<'a> {
            /// Held (not read) through the publish so no other batch or
            /// compaction can slip between apply and swap on this shard.
            _writer: std::sync::MutexGuard<'a, Vec<WriteOp>>,
            snapshot: Arc<ShardSnapshot>,
            changed: Vec<bool>,
        }
        let mut applied: Vec<Option<Applied<'_>>> = Vec::with_capacity(nshards);
        for (s, batch) in sub.iter().enumerate() {
            if batch.is_empty() {
                applied.push(None);
                continue;
            }
            let state = &self.shards[s];
            let mut writer = state.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let cur = state.snapshot();
            let (snapshot, outcome) = cur.apply_batch(batch, cur.version() + 1);
            // Only ops that changed the visible set enter the log:
            // ineffective ops would replay as no-ops anyway, and skipping
            // them keeps the log proportional to real work.
            for (op, changed) in batch.iter().zip(&outcome.changed) {
                if *changed {
                    writer.push(*op);
                }
            }
            // A delta that cancelled back to empty makes the shard equal its
            // base: the log has nothing a compaction would need to replay,
            // so drop it — unless a rebuild of this shard is in flight,
            // whose captured log position must stay valid until its publish
            // trims the log itself.
            if snapshot.delta().is_empty() && !state.compacting.load(Ordering::Acquire) {
                writer.clear();
            }
            applied.push(Some(Applied {
                _writer: writer,
                snapshot: Arc::new(snapshot),
                changed: outcome.changed,
            }));
        }

        let changed: Vec<bool> = primary
            .iter()
            .map(|slot| match slot {
                Some((s, i)) => applied[*s].as_ref().map(|a| a.changed[*i]).unwrap_or(false),
                None => false,
            })
            .collect();
        let effective = changed.iter().filter(|c| **c).count();

        // Log the batch — the ORIGINAL ops, so a cross-shard Remove+Upsert
        // pair is one atomic record — while every touched shard's writer
        // lock is still held (see the module doc's ordering argument).
        // Replay never re-appends, and a batch that touched no shard
        // (ineffective removes only) replays as a no-op, so skip it.
        if !replay && applied.iter().any(Option::is_some) {
            if let Some(d) = &self.durability {
                d.append_batch(ops)
                    .expect("WAL append failed; cannot publish an unlogged batch");
            }
        }

        // Publish: swap the affected shard pointers and the recomposed
        // relation snapshot as one step, then release the writer locks.
        let version = {
            let _compose = self
                .compose_lock
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for (s, slot) in applied.iter().enumerate() {
                if let Some(a) = slot {
                    *self.shards[s]
                        .current
                        .write()
                        .unwrap_or_else(PoisonError::into_inner) = Arc::clone(&a.snapshot);
                }
            }
            self.recompose_locked()
        };
        drop(applied);

        IngestReceipt {
            effective,
            version,
            changed,
            visible_before,
            prev,
        }
    }

    /// The shards whose delta has outgrown the compaction threshold and have
    /// no rebuild in flight, in shard order.
    pub(crate) fn shards_needing_compaction(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&s| {
                let state = &self.shards[s];
                !state.compacting.load(Ordering::Acquire)
                    && state.snapshot().delta_len() >= self.compaction_threshold
            })
            .collect()
    }

    /// Whether any shard currently wants a background rebuild.
    #[cfg(test)]
    pub(crate) fn needs_compaction(&self) -> bool {
        !self.shards_needing_compaction().is_empty()
    }

    /// Attempts to claim shard `s`'s in-flight compaction slot. Returns
    /// `false` if another rebuild of this shard already holds it.
    pub(crate) fn begin_shard_compaction(&self, s: usize) -> bool {
        !self.shards[s].compacting.swap(true, Ordering::AcqRel)
    }

    /// Releases shard `s`'s compaction slot (publish finished or rebuild
    /// failed).
    pub(crate) fn end_shard_compaction(&self, s: usize) {
        self.shards[s].compacting.store(false, Ordering::Release);
    }

    /// Captures shard `s`'s rebuild source under its writer lock: the shard
    /// snapshot to merge, the log length it corresponds to, and the WAL
    /// sequence number the rebuilt base will cover. Reading the WAL head
    /// under the shard's writer lock makes the coverage claim race-free:
    /// every logged record that touches this shard is already applied to
    /// the captured snapshot (batches append mid-publish, holding this
    /// lock). Records touching only *other* shards may over-count — their
    /// coverage claim for this shard is vacuously true.
    pub(crate) fn capture_shard_for_compaction(
        &self,
        s: usize,
    ) -> (Arc<ShardSnapshot>, usize, u64) {
        let state = &self.shards[s];
        let writer = state.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let covered_seq = self.durability.as_ref().map_or(0, |d| d.last_seq());
        (state.snapshot(), writer.len(), covered_seq)
    }

    /// Publishes a rebuilt base for shard `s`: replays the shard ops
    /// ingested since the capture onto the new base, swaps the shard and the
    /// recomposed relation snapshot in, and trims the shard log to the
    /// replayed tail. Returns the published composed version.
    pub(crate) fn publish_shard_compacted(
        &self,
        s: usize,
        base: BaseIndex,
        captured_len: usize,
    ) -> u64 {
        let state = &self.shards[s];
        let mut writer = state.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let cur = state.snapshot();
        let clean = ShardSnapshot::clean(base, cur.version() + 1, self.overlay);
        let tail = writer.split_off(captured_len);
        *writer = tail;
        let snapshot = if writer.is_empty() {
            clean
        } else {
            let mut delta = Delta::with_config(self.overlay);
            for op in writer.iter() {
                delta.apply(op, |id| clean.base_ids().get().contains_key(&id));
            }
            let version = clean.version();
            clean.with_delta(delta, version)
        };
        let _compose = self
            .compose_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *state
            .current
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Arc::new(snapshot);
        self.recompose_locked()
    }

    /// Runs one full compaction cycle of shard `s` **synchronously on the
    /// calling thread**: capture → merge → rebuild → publish. Returns `None`
    /// without doing work when another rebuild of this shard holds the
    /// in-flight slot or the shard's delta is empty; otherwise the published
    /// composed version.
    ///
    /// `gather` turns the captured shard snapshot into the merged point set
    /// — the background path supplies a pool-sharded gatherer, tests can
    /// pass [`ShardSnapshot::merged_points`].
    pub(crate) fn compact_shard_with(
        &self,
        s: usize,
        gather: impl FnOnce(&ShardSnapshot) -> Vec<Point>,
        metrics: &Mutex<Metrics>,
    ) -> Option<u64> {
        if !self.begin_shard_compaction(s) {
            return None;
        }
        // Release the slot on every exit path, including panics in the
        // index build (run_job would otherwise leave the shard permanently
        // uncompactable).
        struct Slot<'a>(&'a VersionedRelation, usize);
        impl Drop for Slot<'_> {
            fn drop(&mut self) {
                self.0.end_shard_compaction(self.1);
            }
        }
        let _slot = Slot(self, s);

        let (source, captured_len, covered_seq) = self.capture_shard_for_compaction(s);
        if source.delta().is_empty() {
            return None;
        }
        let points = gather(&source);
        let gathered = points.len() as u64;
        let base = self.config.build(points, source.base().bounds());
        // Persist the rebuilt base *before* the in-memory publish and
        // outside all locks. The block file's contents equal the captured
        // visible set — exactly the WAL prefix up to `covered_seq` as it
        // affects this shard — regardless of when the publish lands. A
        // failed persist keeps the manifest on the previous generation
        // (whose smaller covered_seq keeps the WAL suffix long enough), so
        // durability degrades to slower recovery, never to data loss.
        if let Some(d) = &self.durability {
            if let Err(e) = d.persist_shard(s, base.as_ref(), covered_seq) {
                eprintln!(
                    "two-knn: failed to persist shard {s} of `{}`: {e} \
                     (recovery will replay the WAL instead)",
                    self.name
                );
            }
        }
        let version = self.publish_shard_compacted(s, base, captured_len);
        let mut m = metrics.lock().unwrap_or_else(PoisonError::into_inner);
        m.compactions += 1;
        m.shards_compacted += 1;
        m.points_scanned += gathered;
        Some(version)
    }

    /// Checkpoints the relation: folds (and thereby persists) every dirty
    /// shard, advances clean shards' covered sequence to the WAL head, and
    /// trims WAL segments no shard needs anymore. No-op without durability.
    ///
    /// The clean-shard bump is sound because under the shard's writer lock,
    /// an empty delta **and** empty writer log mean the shard's visible set
    /// *is* its in-memory base, which (unless marked stale by a failed
    /// persist — checked by `bump_covered`) is byte-for-byte the manifest's
    /// block file; every logged record that touches the shard is reflected
    /// in that visible set.
    pub(crate) fn checkpoint(
        &self,
        pool: &WorkerPool,
        metrics: &Mutex<Metrics>,
        obs: &crate::obs::Observability,
    ) {
        let Some(d) = &self.durability else { return };
        let _ = super::compact::compact_relation(self, pool, metrics, obs);
        let head = d.last_seq();
        for (s, state) in self.shards.iter().enumerate() {
            let writer = state.writer.lock().unwrap_or_else(PoisonError::into_inner);
            if writer.is_empty() && state.snapshot().delta().is_empty() {
                d.bump_covered(s, head);
            }
        }
        if let Err(e) = d.sync_manifest_and_trim() {
            eprintln!(
                "two-knn: checkpoint of `{}` could not rewrite its manifest: {e} \
                 (WAL segments are kept; recovery stays correct)",
                self.name
            );
        }
    }
}

impl std::fmt::Debug for VersionedRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedRelation")
            .field("name", &self.name)
            .field("version", &self.load().version())
            .field("num_shards", &self.shards.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_index::{check_index_invariants, GridIndex, SpatialIndex};

    fn points(n: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(0x2545F4914F6CDD1D);
                Point::new(i, (h % 631) as f64 * 0.17, ((h / 631) % 631) as f64 * 0.17)
            })
            .collect()
    }

    fn relation_sharded(threshold: usize, shards_per_axis: usize) -> VersionedRelation {
        let base: BaseIndex = Arc::new(GridIndex::build(points(200), 5).unwrap());
        VersionedRelation::new(
            "R".into(),
            base,
            IndexConfig::Grid { cells_per_axis: 5 },
            threshold,
            OverlayConfig::default(),
            ShardConfig::per_axis(shards_per_axis),
            None,
        )
    }

    fn relation(threshold: usize) -> VersionedRelation {
        relation_sharded(threshold, 1)
    }

    fn log_len(rel: &VersionedRelation) -> usize {
        rel.shards
            .iter()
            .map(|s| s.writer.lock().unwrap().len())
            .sum()
    }

    #[test]
    fn ingest_batches_are_atomic_and_versioned() {
        let rel = relation(1_000);
        let before = rel.load();
        let (effective, v1) = rel.ingest(&[
            WriteOp::Upsert(Point::new(900, 1.0, 1.0)),
            WriteOp::Remove(3),
            WriteOp::Remove(9_999), // not present: ineffective
        ]);
        assert_eq!(effective, 2);
        assert_eq!(v1, 1);
        // The pinned pre-ingest snapshot is untouched.
        assert_eq!(before.version(), 0);
        assert_eq!(before.num_points(), 200);
        assert!(!before.contains_id(900));
        let after = rel.load();
        assert_eq!(after.version(), 1);
        assert_eq!(after.num_points(), 200);
        assert!(after.contains_id(900));
        assert!(!after.contains_id(3));
    }

    #[test]
    fn write_log_stays_proportional_to_the_delta() {
        let rel = relation(1_000_000); // never compacts on its own
                                       // Ineffective ops (removes of absent ids) must not grow the log.
        for _ in 0..100 {
            rel.ingest(&[WriteOp::Remove(555_555)]);
        }
        assert_eq!(log_len(&rel), 0, "no-op writes must not be logged");
        // A delta that cancels back to empty clears the log: an
        // upsert/remove cycle of a fresh id leaves nothing to replay.
        for round in 0..50 {
            rel.ingest(&[WriteOp::Upsert(Point::new(777, 1.0, 1.0))]);
            rel.ingest(&[WriteOp::Remove(777)]);
            assert!(
                log_len(&rel) <= 2,
                "log grew to {} after {round} cancelling cycles",
                log_len(&rel)
            );
        }
        assert_eq!(rel.load().delta_len(), 0);
        assert_eq!(log_len(&rel), 0);
        // visible_before is exact, including within one batch.
        let receipt = rel.ingest_with_receipt(&[
            WriteOp::Upsert(Point::new(888, 2.0, 2.0)), // fresh id
            WriteOp::Upsert(Point::new(888, 3.0, 3.0)), // now visible
            WriteOp::Remove(888),
            WriteOp::Upsert(Point::new(0, 4.0, 4.0)), // base id: visible
        ]);
        assert_eq!(receipt.visible_before, vec![false, true, true, true]);
        assert_eq!(receipt.changed.len(), 4);
        assert_eq!(receipt.prev.version() + 1, receipt.version);
    }

    #[test]
    fn compaction_folds_the_delta_into_a_fresh_base() {
        let rel = relation(4);
        rel.ingest(&[
            WriteOp::Upsert(Point::new(900, 1.0, 1.0)),
            WriteOp::Upsert(Point::new(901, 2.0, 2.0)),
            WriteOp::Remove(0),
        ]);
        assert!(!rel.needs_compaction(), "threshold is 4, delta is 3");
        rel.ingest(&[WriteOp::Remove(1)]);
        assert!(rel.needs_compaction());
        assert_eq!(rel.shards_needing_compaction(), vec![0]);

        let metrics = Mutex::new(Metrics::default());
        let version = rel
            .compact_shard_with(0, |s| s.merged_points(), &metrics)
            .expect("compaction must run");
        let snap = rel.load();
        assert_eq!(snap.version(), version);
        assert_eq!(snap.delta_len(), 0, "delta folded into the base");
        assert_eq!(snap.num_points(), 200);
        assert!(snap.contains_id(900) && !snap.contains_id(0));
        check_index_invariants(&*snap).unwrap();
        let m = metrics.lock().unwrap();
        assert_eq!(m.compactions, 1, "epoch counter advanced");
        assert_eq!(m.shards_compacted, 1);
        assert!(!rel.needs_compaction());
    }

    #[test]
    fn writes_during_compaction_survive_the_publish() {
        let rel = relation(1);
        rel.ingest(&[WriteOp::Upsert(Point::new(500, 3.0, 3.0))]);
        // Simulate a concurrent write landing between capture and publish:
        // capture first, ingest, then finish the rebuild from the capture.
        assert!(rel.begin_shard_compaction(0));
        let (source, captured_len, _covered) = rel.capture_shard_for_compaction(0);
        rel.ingest(&[
            WriteOp::Upsert(Point::new(501, 4.0, 4.0)),
            WriteOp::Remove(7),
        ]);
        let base = rel
            .config()
            .build(source.merged_points(), source.base().bounds());
        rel.publish_shard_compacted(0, base, captured_len);
        rel.end_shard_compaction(0);

        let snap = rel.load();
        assert!(snap.contains_id(500), "compacted write present in the base");
        assert!(snap.contains_id(501), "concurrent write replayed on top");
        assert!(!snap.contains_id(7), "concurrent remove replayed on top");
        assert_eq!(snap.delta_len(), 2, "only the replayed tail remains");
        check_index_invariants(&*snap).unwrap();
    }

    #[test]
    fn compaction_slot_is_exclusive() {
        let rel = relation(1);
        rel.ingest(&[WriteOp::Remove(0)]);
        assert!(rel.begin_shard_compaction(0));
        let metrics = Mutex::new(Metrics::default());
        assert_eq!(
            rel.compact_shard_with(0, |s| s.merged_points(), &metrics),
            None,
            "second compaction must refuse while one is in flight"
        );
        rel.end_shard_compaction(0);
        assert!(rel
            .compact_shard_with(0, |s| s.merged_points(), &metrics)
            .is_some());
    }

    #[test]
    fn sharded_relation_routes_and_stays_equivalent() {
        let sharded = relation_sharded(1_000_000, 3);
        let flat = relation(1_000_000);
        assert_eq!(sharded.num_shards(), 9);
        let snap = sharded.load();
        assert_eq!(snap.num_points(), 200);
        snap.check_overlay_invariants().unwrap();

        // The same mixed batch lands identically in both layouts.
        let batch = vec![
            WriteOp::Upsert(Point::new(900, 1.0, 1.0)),
            WriteOp::Upsert(Point::new(901, 100.0, 100.0)),
            WriteOp::Remove(3),
            WriteOp::Remove(9_999),
            WriteOp::Upsert(Point::new(5, 105.0, 2.0)), // moves a base point
        ];
        let rs = sharded.ingest_with_receipt(&batch);
        let rf = flat.ingest_with_receipt(&batch);
        assert_eq!(rs.effective, rf.effective);
        assert_eq!(rs.changed, rf.changed);
        assert_eq!(rs.visible_before, rf.visible_before);

        let (s, f) = (sharded.load(), flat.load());
        assert_eq!(s.num_points(), f.num_points());
        s.check_overlay_invariants().unwrap();
        let mut sp = s.merged_points();
        let mut fp = f.merged_points();
        sp.sort_by_key(|p| p.id);
        fp.sort_by_key(|p| p.id);
        assert_eq!(sp, fp);
    }

    #[test]
    fn cross_shard_move_is_atomic() {
        let rel = relation_sharded(1_000_000, 2);
        let snap = rel.load();
        // Pick a base point and move it to the far corner (another shard).
        let victim = snap.position_of(0).expect("base id 0 exists");
        let old_shard = snap.shard_map().shard_of(&victim);
        let moved = Point::new(0, 105.0, 105.0);
        let new_shard = snap.shard_map().shard_of(&moved);
        assert_ne!(old_shard, new_shard, "test point must cross shards");

        let (effective, _) = rel.ingest(&[WriteOp::Upsert(moved)]);
        assert_eq!(effective, 1);
        let after = rel.load();
        assert_eq!(after.num_points(), 200, "a move never duplicates");
        assert_eq!(after.position_of(0), Some(moved));
        after.check_overlay_invariants().unwrap();

        // Moving it back also works (and in-batch double moves settle on
        // the final position).
        rel.ingest(&[
            WriteOp::Upsert(Point::new(0, 105.0, 2.0)),
            WriteOp::Upsert(victim),
        ]);
        let back = rel.load();
        assert_eq!(back.num_points(), 200);
        assert_eq!(back.position_of(0), Some(victim));
        back.check_overlay_invariants().unwrap();
    }

    #[test]
    fn per_shard_compaction_leaves_other_shards_untouched() {
        let rel = relation_sharded(4, 2);
        // Burst confined to the first shard's region (near the origin).
        let burst: Vec<WriteOp> = (0..8u64)
            .map(|i| WriteOp::Upsert(Point::new(1_000 + i, 1.0 + i as f64 * 0.1, 1.0)))
            .collect();
        rel.ingest(&burst);
        let dirty = rel.shards_needing_compaction();
        assert_eq!(dirty.len(), 1, "burst must land in exactly one shard");
        let dirty_shard = dirty[0];
        let before: Vec<u64> = rel.shards.iter().map(|s| s.snapshot().version()).collect();

        let metrics = Mutex::new(Metrics::default());
        rel.compact_shard_with(dirty_shard, |s| s.merged_points(), &metrics)
            .expect("dirty shard compacts");
        for (s, state) in rel.shards.iter().enumerate() {
            if s == dirty_shard {
                assert_eq!(state.snapshot().delta_len(), 0);
                assert!(state.snapshot().version() > before[s]);
            } else {
                assert_eq!(
                    state.snapshot().version(),
                    before[s],
                    "untouched shard must keep its snapshot"
                );
            }
        }
        let m = metrics.lock().unwrap();
        assert_eq!((m.compactions, m.shards_compacted), (1, 1));
        assert_eq!(
            m.points_scanned,
            rel.shards[dirty_shard].snapshot().num_points() as u64,
            "rebuild gathered only the dirty shard's points"
        );
        rel.load().check_overlay_invariants().unwrap();
    }
}
