//! One versioned relation: an atomically swapped current snapshot, a
//! serialized writer path, and the write log that lets a background rebuild
//! publish without losing concurrent ingest.
//!
//! # Concurrency model
//!
//! * **Readers** call [`VersionedRelation::load`], which clones the current
//!   snapshot `Arc` under a read lock held only for the clone — a few
//!   nanoseconds. Writers hold the matching write lock only to swap the
//!   pointer, so readers never wait on ingest or compaction *work*, only on
//!   pointer swaps. The query then runs entirely against its pinned
//!   [`RelationSnapshot`], lock-free.
//! * **Writers** (ingest batches and compaction publishes) serialize on one
//!   writer mutex. Each ingest batch clones the current delta, applies its
//!   ops, assembles a new snapshot and swaps it in — one atomic visibility
//!   step per batch.
//! * **Compaction** captures `(current snapshot, log length)` under the
//!   writer lock, rebuilds the base *outside* the lock (ingest continues
//!   concurrently), then re-enters the lock to replay the ops logged since
//!   the capture onto the new base and swap the result in. The log is
//!   trimmed to exactly those replayed ops, so it never grows beyond one
//!   compaction cycle of writes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use twoknn_index::Metrics;

use super::delta::{Delta, WriteOp};
use super::overlay::OverlayConfig;
use super::snapshot::{BaseIndex, IndexConfig, RelationSnapshot};

/// Writer-side state: the ops applied since the current base was built.
struct WriterState {
    /// Ops since the last compaction publish (equivalently: the ops the
    /// current snapshot's delta represents).
    log: Vec<WriteOp>,
}

/// Everything one ingest batch produced, captured race-free under the
/// relation's writer lock: per-op outcomes plus the snapshots on either side
/// of the publish. The continuous-query maintainer consumes `prev` (to
/// recover old positions of moved/removed points) and `published` (the
/// version standing queries re-evaluate against).
pub(crate) struct IngestReceipt {
    /// Number of ops that changed the visible point set.
    pub effective: usize,
    /// The published snapshot's version.
    pub version: u64,
    /// Per op: whether it changed the visible point set.
    pub changed: Vec<bool>,
    /// Per op: whether the op's id was visible immediately before it
    /// (within the batch: earlier ops of the same batch count).
    pub visible_before: Vec<bool>,
    /// The snapshot the batch was applied to — the pre-publish state the
    /// maintainer recovers old positions from. (Re-evaluations deliberately
    /// pin the *current* snapshot rather than the published one, so later
    /// evaluations always cover earlier publishes; the receipt therefore
    /// does not carry the published snapshot itself.)
    pub prev: Arc<RelationSnapshot>,
}

/// A relation whose current snapshot is replaced, never mutated.
pub struct VersionedRelation {
    name: String,
    current: RwLock<Arc<RelationSnapshot>>,
    writer: Mutex<WriterState>,
    /// Guards against more than one in-flight compaction per relation.
    compacting: AtomicBool,
    config: IndexConfig,
    compaction_threshold: usize,
    overlay: OverlayConfig,
}

impl VersionedRelation {
    pub(crate) fn new(
        name: String,
        base: BaseIndex,
        config: IndexConfig,
        compaction_threshold: usize,
        overlay: OverlayConfig,
    ) -> Self {
        Self {
            name,
            current: RwLock::new(Arc::new(RelationSnapshot::clean(base, 0, overlay))),
            writer: Mutex::new(WriterState { log: Vec::new() }),
            compacting: AtomicBool::new(false),
            config,
            compaction_threshold,
            overlay,
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rebuild config compaction uses.
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// The delta size at which ingest schedules a background rebuild.
    pub fn compaction_threshold(&self) -> usize {
        self.compaction_threshold
    }

    /// Pins the current snapshot. The returned `Arc` stays valid (and
    /// immutable) regardless of concurrent ingest or compaction.
    pub fn load(&self) -> Arc<RelationSnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Swaps the published snapshot. Callers must hold the writer mutex.
    fn publish(&self, snapshot: RelationSnapshot) {
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(snapshot);
    }

    /// Applies a batch of write operations as **one** atomic visibility
    /// step: queries either see all of the batch or none of it.
    ///
    /// Returns the number of ops that changed the visible point set and the
    /// new snapshot's version. Whether the relation now *wants* compaction is
    /// reported through [`VersionedRelation::needs_compaction`]; scheduling
    /// is the store's job (it owns the pool handle).
    ///
    /// (Non-test code goes through
    /// [`VersionedRelation::ingest_with_visibility`], which this wraps.)
    #[cfg(test)]
    pub(crate) fn ingest(&self, ops: &[WriteOp]) -> (usize, u64) {
        let receipt = self.ingest_with_receipt(ops);
        (receipt.effective, receipt.version)
    }

    /// [`VersionedRelation::ingest`], additionally reporting — per op,
    /// race-free under the writer lock — the full [`IngestReceipt`]:
    /// visibility before each op (`Database::update` uses this for its
    /// return value) and the pre/post snapshots (the continuous-query
    /// maintainer uses these for guard probing).
    pub(crate) fn ingest_with_receipt(&self, ops: &[WriteOp]) -> IngestReceipt {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let prev = self.load();
        let version = prev.version() + 1;
        let (snapshot, outcome) = prev.apply_batch(ops, version);
        // Only ops that changed the visible set enter the log: ineffective
        // ops (removes of absent ids) would replay as no-ops anyway, and
        // skipping them keeps the log proportional to real work.
        for (op, changed) in ops.iter().zip(&outcome.changed) {
            if *changed {
                writer.log.push(*op);
            }
        }
        // A delta that cancelled back to empty makes the snapshot equal its
        // base: the log has nothing a compaction would need to replay, so
        // drop it — unless a rebuild is in flight, whose captured log
        // position must stay valid until its publish trims the log itself.
        if snapshot.delta().is_empty() && !self.compacting.load(Ordering::Acquire) {
            writer.log.clear();
        }
        let effective = outcome.effective();
        self.publish(snapshot);
        IngestReceipt {
            effective,
            version,
            changed: outcome.changed,
            visible_before: outcome.visible_before,
            prev,
        }
    }

    /// Whether the current delta has outgrown the compaction threshold and
    /// no rebuild is already in flight.
    pub(crate) fn needs_compaction(&self) -> bool {
        !self.compacting.load(Ordering::Acquire)
            && self.load().delta_len() >= self.compaction_threshold
    }

    /// Attempts to claim the single in-flight compaction slot. Returns
    /// `false` if another rebuild already holds it.
    pub(crate) fn begin_compaction(&self) -> bool {
        !self.compacting.swap(true, Ordering::AcqRel)
    }

    /// Releases the compaction slot (publish finished or rebuild failed).
    pub(crate) fn end_compaction(&self) {
        self.compacting.store(false, Ordering::Release);
    }

    /// Captures the rebuild source under the writer lock: the snapshot to
    /// merge and the log length it corresponds to.
    pub(crate) fn capture_for_compaction(&self) -> (Arc<RelationSnapshot>, usize) {
        let writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        (self.load(), writer.log.len())
    }

    /// Publishes a rebuilt base: replays the ops ingested since the capture
    /// onto the new base, swaps the snapshot in, and trims the log to the
    /// replayed tail. Returns the published version.
    pub(crate) fn publish_compacted(&self, base: BaseIndex, captured_len: usize) -> u64 {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let prev = self.load();
        let clean = RelationSnapshot::clean(base, prev.version() + 1, self.overlay);
        writer.log = writer.log.split_off(captured_len);
        let snapshot = if writer.log.is_empty() {
            clean
        } else {
            let mut delta = Delta::with_config(self.overlay);
            for op in &writer.log {
                delta.apply(op, |id| clean.base_ids().contains_key(&id));
            }
            let version = clean.version();
            clean.with_delta(delta, version)
        };
        let version = snapshot.version();
        self.publish(snapshot);
        version
    }

    /// Runs one full compaction cycle **synchronously on the calling
    /// thread**: capture → merge → rebuild → publish. Returns `None` without
    /// doing work when another compaction holds the in-flight slot or the
    /// delta is empty; otherwise the published version.
    ///
    /// `gather` turns the captured snapshot into the merged point set — the
    /// background path supplies a pool-sharded gatherer, tests can pass
    /// [`RelationSnapshot::merged_points`].
    pub(crate) fn compact_with(
        &self,
        gather: impl FnOnce(&RelationSnapshot) -> Vec<twoknn_geometry::Point>,
        metrics: &Mutex<Metrics>,
    ) -> Option<u64> {
        if !self.begin_compaction() {
            return None;
        }
        // Release the slot on every exit path, including panics in the
        // index build (run_job would otherwise leave the relation
        // permanently uncompactable).
        struct Slot<'a>(&'a VersionedRelation);
        impl Drop for Slot<'_> {
            fn drop(&mut self) {
                self.0.end_compaction();
            }
        }
        let _slot = Slot(self);

        let (source, captured_len) = self.capture_for_compaction();
        if source.delta().is_empty() {
            return None;
        }
        let points = gather(&source);
        let gathered = points.len() as u64;
        let base = self.config.build(points, source.base().bounds());
        let version = self.publish_compacted(base, captured_len);
        let mut m = metrics.lock().unwrap_or_else(PoisonError::into_inner);
        m.compactions += 1;
        m.points_scanned += gathered;
        Some(version)
    }
}

impl std::fmt::Debug for VersionedRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedRelation")
            .field("name", &self.name)
            .field("version", &self.load().version())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_geometry::Point;
    use twoknn_index::{check_index_invariants, GridIndex, SpatialIndex};

    fn relation(threshold: usize) -> VersionedRelation {
        let pts: Vec<Point> = (0..200u64)
            .map(|i| {
                let h = i.wrapping_mul(0x2545F4914F6CDD1D);
                Point::new(i, (h % 631) as f64 * 0.17, ((h / 631) % 631) as f64 * 0.17)
            })
            .collect();
        let base: BaseIndex = Arc::new(GridIndex::build(pts, 5).unwrap());
        VersionedRelation::new(
            "R".into(),
            base,
            IndexConfig::Grid { cells_per_axis: 5 },
            threshold,
            OverlayConfig::default(),
        )
    }

    #[test]
    fn ingest_batches_are_atomic_and_versioned() {
        let rel = relation(1_000);
        let before = rel.load();
        let (effective, v1) = rel.ingest(&[
            WriteOp::Upsert(Point::new(900, 1.0, 1.0)),
            WriteOp::Remove(3),
            WriteOp::Remove(9_999), // not present: ineffective
        ]);
        assert_eq!(effective, 2);
        assert_eq!(v1, 1);
        // The pinned pre-ingest snapshot is untouched.
        assert_eq!(before.version(), 0);
        assert_eq!(before.num_points(), 200);
        assert!(!before.contains_id(900));
        let after = rel.load();
        assert_eq!(after.version(), 1);
        assert_eq!(after.num_points(), 200);
        assert!(after.contains_id(900));
        assert!(!after.contains_id(3));
    }

    fn log_len(rel: &VersionedRelation) -> usize {
        rel.writer.lock().unwrap().log.len()
    }

    #[test]
    fn write_log_stays_proportional_to_the_delta() {
        let rel = relation(1_000_000); // never compacts on its own
                                       // Ineffective ops (removes of absent ids) must not grow the log.
        for _ in 0..100 {
            rel.ingest(&[WriteOp::Remove(555_555)]);
        }
        assert_eq!(log_len(&rel), 0, "no-op writes must not be logged");
        // A delta that cancels back to empty clears the log: an
        // upsert/remove cycle of a fresh id leaves nothing to replay.
        for round in 0..50 {
            rel.ingest(&[WriteOp::Upsert(Point::new(777, 1.0, 1.0))]);
            rel.ingest(&[WriteOp::Remove(777)]);
            assert!(
                log_len(&rel) <= 2,
                "log grew to {} after {round} cancelling cycles",
                log_len(&rel)
            );
        }
        assert_eq!(rel.load().delta_len(), 0);
        assert_eq!(log_len(&rel), 0);
        // visible_before is exact, including within one batch.
        let receipt = rel.ingest_with_receipt(&[
            WriteOp::Upsert(Point::new(888, 2.0, 2.0)), // fresh id
            WriteOp::Upsert(Point::new(888, 3.0, 3.0)), // now visible
            WriteOp::Remove(888),
            WriteOp::Upsert(Point::new(0, 4.0, 4.0)), // base id: visible
        ]);
        assert_eq!(receipt.visible_before, vec![false, true, true, true]);
        assert_eq!(receipt.changed.len(), 4);
        assert_eq!(receipt.prev.version() + 1, receipt.version);
    }

    #[test]
    fn compaction_folds_the_delta_into_a_fresh_base() {
        let rel = relation(4);
        rel.ingest(&[
            WriteOp::Upsert(Point::new(900, 1.0, 1.0)),
            WriteOp::Upsert(Point::new(901, 2.0, 2.0)),
            WriteOp::Remove(0),
        ]);
        assert!(!rel.needs_compaction(), "threshold is 4, delta is 3");
        rel.ingest(&[WriteOp::Remove(1)]);
        assert!(rel.needs_compaction());

        let metrics = Mutex::new(Metrics::default());
        let version = rel
            .compact_with(|s| s.merged_points(), &metrics)
            .expect("compaction must run");
        let snap = rel.load();
        assert_eq!(snap.version(), version);
        assert!(snap.delta().is_empty(), "delta folded into the base");
        assert_eq!(snap.num_points(), 200);
        assert!(snap.contains_id(900) && !snap.contains_id(0));
        check_index_invariants(&*snap).unwrap();
        assert_eq!(
            metrics.lock().unwrap().compactions,
            1,
            "epoch counter advanced"
        );
        assert!(!rel.needs_compaction());
    }

    #[test]
    fn writes_during_compaction_survive_the_publish() {
        let rel = relation(1);
        rel.ingest(&[WriteOp::Upsert(Point::new(500, 3.0, 3.0))]);
        // Simulate a concurrent write landing between capture and publish:
        // capture first, ingest, then finish the rebuild from the capture.
        assert!(rel.begin_compaction());
        let (source, captured_len) = rel.capture_for_compaction();
        rel.ingest(&[
            WriteOp::Upsert(Point::new(501, 4.0, 4.0)),
            WriteOp::Remove(7),
        ]);
        let base = rel
            .config()
            .build(source.merged_points(), source.base().bounds());
        rel.publish_compacted(base, captured_len);
        rel.end_compaction();

        let snap = rel.load();
        assert!(snap.contains_id(500), "compacted write present in the base");
        assert!(snap.contains_id(501), "concurrent write replayed on top");
        assert!(!snap.contains_id(7), "concurrent remove replayed on top");
        assert_eq!(snap.delta_len(), 2, "only the replayed tail remains");
        check_index_invariants(&*snap).unwrap();
    }

    #[test]
    fn compaction_slot_is_exclusive() {
        let rel = relation(1);
        rel.ingest(&[WriteOp::Remove(0)]);
        assert!(rel.begin_compaction());
        let metrics = Mutex::new(Metrics::default());
        assert_eq!(
            rel.compact_with(|s| s.merged_points(), &metrics),
            None,
            "second compaction must refuse while one is in flight"
        );
        rel.end_compaction();
        assert!(rel.compact_with(|s| s.merged_points(), &metrics).is_some());
    }
}
