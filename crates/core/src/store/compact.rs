//! Background per-shard index rebuilds on the shared worker pool.
//!
//! When a spatial shard's delta outgrows the relation's compaction
//! threshold, the store schedules a rebuild job **for that shard alone** via
//! [`WorkerPool::spawn`] — the same queue (and the same thread budget) that
//! batch and operator tasks use, so rebuilds never oversubscribe the machine
//! and `execute_batch` keeps making progress on the caller thread while
//! workers rebuild. Because each shard has its own writer lock and
//! compaction slot, a hot shard rebuilding never blocks ingest into (or
//! rebuilds of) the others, and the gather/build cost is proportional to the
//! dirty shard, not the whole relation.
//!
//! The per-shard rebuild pipeline:
//!
//! 1. **Capture** `(shard snapshot, shard log position)` under that shard's
//!    writer lock (nanoseconds — ingest continues right after);
//! 2. **Gather** the shard's visible points, partitioned over block ranges
//!    with [`run_partitioned_on`] so large shards use the whole pool.
//!    Overlay-grid cells are ordinary blocks of the shard snapshot, so a
//!    large un-compacted burst is gathered cell-parallel exactly like the
//!    base — the gather ranges cover base and overlay blocks uniformly;
//! 3. **Build** a fresh shard base with the relation's [`IndexConfig`];
//! 4. **Publish**: replay the shard ops ingested since the capture onto the
//!    new base, swap the shard in, and atomically recompose the relation
//!    snapshot.
//!
//! On a parallelism-1 pool (e.g. `TWOKNN_THREADS=1`) there are no workers,
//! so [`WorkerPool::spawn`] degrades to running the rebuild inline in the
//! ingest call — synchronous, but semantically identical.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use twoknn_geometry::Point;
use twoknn_index::{BlockId, Metrics, SpatialIndex};

use crate::exec::{run_partitioned_on, WorkerPool};
use crate::obs::{EventKind, HistogramKind, Observability};

use super::version::VersionedRelation;

/// Number of blocks a single gather range covers. Small shards collapse to
/// one range (a plain serial copy); large ones fan out over the pool.
const GATHER_SHARD_BLOCKS: usize = 64;

/// Collects an index's visible points, partitioned over block-range chunks
/// on `pool`. Ordering follows block order (and point order within blocks),
/// matching the serial `merged_points`.
pub(crate) fn gather_points_sharded<I>(snapshot: &I, pool: &WorkerPool) -> Vec<Point>
where
    I: SpatialIndex + Sync + ?Sized,
{
    let num_blocks = snapshot.num_blocks();
    let chunks: Vec<std::ops::Range<usize>> = (0..num_blocks)
        .step_by(GATHER_SHARD_BLOCKS.max(1))
        .map(|start| start..(start + GATHER_SHARD_BLOCKS).min(num_blocks))
        .collect();
    let mut scratch = Metrics::default();
    run_partitioned_on(&chunks, pool, &mut scratch, |chunk, out, metrics| {
        for id in chunk.clone() {
            metrics.blocks_scanned += 1;
            out.extend(snapshot.block_points(id as BlockId));
        }
    })
}

/// Runs one compaction cycle of shard `s` on the calling thread, sharding
/// the gather phase over `pool`. Returns the published composed version, or
/// `None` when another rebuild holds the shard's slot or its delta is empty.
pub(crate) fn compact_shard(
    rel: &VersionedRelation,
    s: usize,
    pool: &WorkerPool,
    metrics: &Mutex<Metrics>,
    obs: &Observability,
) -> Option<u64> {
    obs.event(
        EventKind::CompactionStarted,
        format!("{} shard {s}", rel.name()),
    );
    let start = Instant::now();
    let published =
        rel.compact_shard_with(s, |snapshot| gather_points_sharded(snapshot, pool), metrics);
    match published {
        Some(version) => {
            obs.record(HistogramKind::Compaction, start.elapsed());
            obs.event(
                EventKind::CompactionFinished,
                format!("{} shard {s} published version {version}", rel.name()),
            );
        }
        // Slot held or empty delta: nothing rebuilt, no duration recorded.
        None => obs.event(
            EventKind::CompactionFinished,
            format!("{} shard {s} skipped (slot held or clean)", rel.name()),
        ),
    }
    published
}

/// Synchronously folds **every** dirty shard of `rel` on the calling thread
/// (regardless of the background threshold — this is the `compact_now`
/// path, whose contract is "the delta is folded when I return"). Shards
/// whose rebuild slot is held by an in-flight background job are skipped.
/// Returns the last published composed version, or `None` when no shard had
/// anything to fold.
pub(crate) fn compact_relation(
    rel: &VersionedRelation,
    pool: &WorkerPool,
    metrics: &Mutex<Metrics>,
    obs: &Observability,
) -> Option<u64> {
    let mut published = None;
    for s in 0..rel.num_shards() {
        if let Some(version) = compact_shard(rel, s, pool, metrics, obs) {
            published = Some(version);
        }
    }
    published
}

/// Schedules background compactions on `pool` — one job per shard whose
/// delta has outgrown the threshold and has no rebuild in flight. Returns
/// whether any job was scheduled.
pub(crate) fn schedule_compaction(
    rel: &Arc<VersionedRelation>,
    pool: &Arc<WorkerPool>,
    metrics: &Arc<Mutex<Metrics>>,
    obs: &Arc<Observability>,
) -> bool {
    let dirty = rel.shards_needing_compaction();
    for &s in &dirty {
        let rel = Arc::clone(rel);
        let metrics = Arc::clone(metrics);
        let obs = Arc::clone(obs);
        pool.spawn(move || {
            // The serving pool (or, inline on a 1-pool, the bound submitting
            // pool) shards the gather; `compact_shard_with` re-checks the
            // per-shard in-flight slot, so racing duplicate jobs degenerate
            // to no-ops.
            let pool = WorkerPool::current();
            let _ = compact_shard(&rel, s, &pool, &metrics, &obs);
        });
    }
    !dirty.is_empty()
}

#[cfg(test)]
mod tests {
    use super::super::delta::WriteOp;
    use super::super::shard::ShardConfig;
    use super::super::snapshot::{BaseIndex, IndexConfig};
    use super::*;
    use twoknn_geometry::Point;
    use twoknn_index::GridIndex;

    fn relation_sharded(threshold: usize, shards_per_axis: usize) -> Arc<VersionedRelation> {
        let pts: Vec<Point> = (0..500u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                Point::new(i, (h % 997) as f64 * 0.13, ((h / 997) % 997) as f64 * 0.13)
            })
            .collect();
        let base: BaseIndex = Arc::new(GridIndex::build(pts, 9).unwrap());
        Arc::new(VersionedRelation::new(
            "R".into(),
            base,
            IndexConfig::Grid { cells_per_axis: 9 },
            threshold,
            crate::store::OverlayConfig::default(),
            ShardConfig::per_axis(shards_per_axis),
            None,
        ))
    }

    fn relation(threshold: usize) -> Arc<VersionedRelation> {
        relation_sharded(threshold, 1)
    }

    #[test]
    fn sharded_gather_matches_the_serial_merge() {
        let rel = relation(1_000);
        rel.ingest(&[
            WriteOp::Upsert(Point::new(9_000, 3.0, 3.0)),
            WriteOp::Remove(17),
            WriteOp::Upsert(Point::new(42, 50.0, 50.0)),
        ]);
        let snap = rel.load();
        let pool = WorkerPool::new(3);
        let sharded = gather_points_sharded(&*snap, &pool);
        assert_eq!(sharded, snap.merged_points());
    }

    #[test]
    fn sharded_gather_covers_a_partitioned_overlay_cell_parallel() {
        // A burst big enough to split into many overlay cells: the gather
        // chunks must cover every cell exactly once, in block order, just
        // like base blocks.
        let rel = relation(1_000_000);
        let burst: Vec<WriteOp> = (0..600u64)
            .map(|i| {
                WriteOp::Upsert(Point::new(
                    10_000 + i,
                    30.0 + (i % 25) as f64 * 0.31,
                    30.0 + (i / 25) as f64 * 0.29,
                ))
            })
            .collect();
        rel.ingest(&burst);
        let snap = rel.load();
        assert!(
            snap.overlay_block_count() > 1,
            "the burst must partition the overlay"
        );
        let pool = WorkerPool::new(4);
        let sharded = gather_points_sharded(&*snap, &pool);
        assert_eq!(sharded, snap.merged_points());
        assert_eq!(sharded.len(), snap.num_points());
    }

    #[test]
    fn scheduled_compaction_publishes_on_the_pool() {
        let rel = relation(2);
        let pool = Arc::new(WorkerPool::new(2));
        let metrics = Arc::new(Mutex::new(Metrics::default()));
        let obs = Arc::new(Observability::default());
        rel.ingest(&[
            WriteOp::Upsert(Point::new(9_000, 3.0, 3.0)),
            WriteOp::Remove(17),
        ]);
        assert!(schedule_compaction(&rel, &pool, &metrics, &obs));
        // No sleep/poll loop: the pool drains its queue, then the publish is
        // visible and the event ring holds the rebuild's lifecycle pair.
        pool.wait_idle();
        let snap = rel.load();
        assert_eq!(snap.delta_len(), 0, "background compaction published");
        assert_eq!(snap.num_points(), 500);
        assert!(snap.contains_id(9_000) && !snap.contains_id(17));
        assert_eq!(metrics.lock().unwrap().compactions, 1);
        let events = obs.drain_events();
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::CompactionStarted));
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::CompactionFinished && e.detail.contains("published")));
        assert_eq!(obs.histogram(HistogramKind::Compaction).count, 1);
        // Below threshold now: nothing to schedule.
        assert!(!schedule_compaction(&rel, &pool, &metrics, &obs));
    }

    #[test]
    fn scheduled_compaction_is_synchronous_on_a_one_thread_pool() {
        let rel = relation(1);
        let pool = Arc::new(WorkerPool::new(1));
        let metrics = Arc::new(Mutex::new(Metrics::default()));
        let obs = Arc::new(Observability::default());
        rel.ingest(&[WriteOp::Remove(3)]);
        assert!(schedule_compaction(&rel, &pool, &metrics, &obs));
        // Inline spawn: the publish already happened.
        assert_eq!(rel.load().delta_len(), 0);
        assert_eq!(rel.load().num_points(), 499);
    }

    #[test]
    fn scheduling_rebuilds_only_the_dirty_shards() {
        let rel = relation_sharded(4, 2);
        let pool = Arc::new(WorkerPool::new(1)); // inline spawn: deterministic
        let metrics = Arc::new(Mutex::new(Metrics::default()));
        let obs = Arc::new(Observability::default());
        let extent = rel.load().bounds();
        // One burst confined to the low-corner shard, one stray write in the
        // high corner: only the bursty shard crosses the threshold.
        let mut ops: Vec<WriteOp> = (0..6u64)
            .map(|i| {
                WriteOp::Upsert(Point::new(
                    9_000 + i,
                    extent.min_x + 0.5 + i as f64 * 0.1,
                    extent.min_y + 0.5,
                ))
            })
            .collect();
        ops.push(WriteOp::Upsert(Point::new(
            9_900,
            extent.max_x - 0.5,
            extent.max_y - 0.5,
        )));
        rel.ingest(&ops);
        assert!(schedule_compaction(&rel, &pool, &metrics, &obs));
        let m = *metrics.lock().unwrap();
        assert_eq!(
            (m.compactions, m.shards_compacted),
            (1, 1),
            "only the bursty shard rebuilds"
        );
        assert_eq!(rel.load().delta_len(), 1, "the stray write stays deltaed");
        // compact_relation (the compact_now path) folds the stragglers too.
        assert!(compact_relation(&rel, &pool, &metrics, &obs).is_some());
        assert_eq!(rel.load().delta_len(), 0);
        assert_eq!(metrics.lock().unwrap().shards_compacted, 2);
        assert_eq!(rel.load().num_points(), 507);
        rel.load().check_overlay_invariants().unwrap();
    }
}
