//! Background index rebuilds on the shared worker pool.
//!
//! When a relation's delta outgrows its compaction threshold, the store
//! schedules a rebuild job via [`WorkerPool::spawn`] — the same queue (and
//! the same thread budget) that batch and operator tasks use, so a rebuild
//! never oversubscribes the machine and `execute_batch` keeps making
//! progress on the caller thread while a worker rebuilds.
//!
//! The rebuild pipeline:
//!
//! 1. **Capture** `(snapshot, log position)` under the relation's writer
//!    lock (nanoseconds — ingest continues right after);
//! 2. **Gather** the snapshot's visible points, sharded over block ranges
//!    with [`run_partitioned_on`] so large relations use the whole pool.
//!    Overlay-grid cells are ordinary blocks of the snapshot, so a large
//!    un-compacted burst is gathered cell-parallel exactly like the base —
//!    the shards cover base and overlay blocks uniformly;
//! 3. **Build** a fresh base index with the relation's [`IndexConfig`];
//! 4. **Publish**: replay the ops ingested since the capture onto the new
//!    base and atomically swap the snapshot in.
//!
//! On a parallelism-1 pool (e.g. `TWOKNN_THREADS=1`) there are no workers,
//! so [`WorkerPool::spawn`] degrades to running the rebuild inline in the
//! ingest call — synchronous, but semantically identical.

use std::sync::{Arc, Mutex};

use twoknn_geometry::Point;
use twoknn_index::{BlockId, Metrics};

use crate::exec::{run_partitioned_on, WorkerPool};

use super::snapshot::RelationSnapshot;
use super::version::VersionedRelation;

/// Number of blocks a single gather shard covers. Small relations collapse
/// to one shard (a plain serial copy); large ones fan out over the pool.
const GATHER_SHARD_BLOCKS: usize = 64;

/// Collects a snapshot's visible points, partitioned over block-range shards
/// on `pool`. Ordering follows block order (and point order within blocks),
/// matching the serial [`RelationSnapshot::merged_points`].
pub(crate) fn gather_points_sharded(snapshot: &RelationSnapshot, pool: &WorkerPool) -> Vec<Point> {
    use twoknn_index::SpatialIndex;

    let num_blocks = snapshot.num_blocks();
    let shards: Vec<std::ops::Range<usize>> = (0..num_blocks)
        .step_by(GATHER_SHARD_BLOCKS.max(1))
        .map(|start| start..(start + GATHER_SHARD_BLOCKS).min(num_blocks))
        .collect();
    let mut scratch = Metrics::default();
    run_partitioned_on(&shards, pool, &mut scratch, |shard, out, metrics| {
        for id in shard.clone() {
            metrics.blocks_scanned += 1;
            out.extend(snapshot.block_points(id as BlockId));
        }
    })
}

/// Runs one compaction cycle for `rel` on the calling thread, sharding the
/// gather phase over `pool`. Returns the published version, or `None` when
/// another rebuild holds the slot or the delta is empty.
pub(crate) fn compact_relation(
    rel: &VersionedRelation,
    pool: &WorkerPool,
    metrics: &Mutex<Metrics>,
) -> Option<u64> {
    rel.compact_with(|snapshot| gather_points_sharded(snapshot, pool), metrics)
}

/// Schedules a background compaction of `rel` on `pool` if its delta has
/// outgrown the threshold and no rebuild is in flight. Returns whether a job
/// was scheduled.
pub(crate) fn schedule_compaction(
    rel: &Arc<VersionedRelation>,
    pool: &Arc<WorkerPool>,
    metrics: &Arc<Mutex<Metrics>>,
) -> bool {
    if !rel.needs_compaction() {
        return false;
    }
    let rel = Arc::clone(rel);
    let metrics = Arc::clone(metrics);
    pool.spawn(move || {
        // The serving pool (or, inline on a 1-pool, the bound submitting
        // pool) shards the gather; `compact_with` re-checks the in-flight
        // slot, so racing duplicate jobs degenerate to no-ops.
        let pool = WorkerPool::current();
        let _ = compact_relation(&rel, &pool, &metrics);
    });
    true
}

#[cfg(test)]
mod tests {
    use super::super::delta::WriteOp;
    use super::super::snapshot::{BaseIndex, IndexConfig};
    use super::*;
    use twoknn_geometry::Point;
    use twoknn_index::{GridIndex, SpatialIndex};

    fn relation(threshold: usize) -> Arc<VersionedRelation> {
        let pts: Vec<Point> = (0..500u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                Point::new(i, (h % 997) as f64 * 0.13, ((h / 997) % 997) as f64 * 0.13)
            })
            .collect();
        let base: BaseIndex = Arc::new(GridIndex::build(pts, 9).unwrap());
        Arc::new(VersionedRelation::new(
            "R".into(),
            base,
            IndexConfig::Grid { cells_per_axis: 9 },
            threshold,
            crate::store::OverlayConfig::default(),
        ))
    }

    #[test]
    fn sharded_gather_matches_the_serial_merge() {
        let rel = relation(1_000);
        rel.ingest(&[
            WriteOp::Upsert(Point::new(9_000, 3.0, 3.0)),
            WriteOp::Remove(17),
            WriteOp::Upsert(Point::new(42, 50.0, 50.0)),
        ]);
        let snap = rel.load();
        let pool = WorkerPool::new(3);
        let sharded = gather_points_sharded(&snap, &pool);
        assert_eq!(sharded, snap.merged_points());
    }

    #[test]
    fn sharded_gather_covers_a_partitioned_overlay_cell_parallel() {
        // A burst big enough to split into many overlay cells: the gather
        // shards must cover every cell exactly once, in block order, just
        // like base blocks.
        let rel = relation(1_000_000);
        let burst: Vec<WriteOp> = (0..600u64)
            .map(|i| {
                WriteOp::Upsert(Point::new(
                    10_000 + i,
                    30.0 + (i % 25) as f64 * 0.31,
                    30.0 + (i / 25) as f64 * 0.29,
                ))
            })
            .collect();
        rel.ingest(&burst);
        let snap = rel.load();
        assert!(
            snap.overlay_block_count() > 1,
            "the burst must partition the overlay"
        );
        let pool = WorkerPool::new(4);
        let sharded = gather_points_sharded(&snap, &pool);
        assert_eq!(sharded, snap.merged_points());
        assert_eq!(sharded.len(), snap.num_points());
    }

    #[test]
    fn scheduled_compaction_publishes_on_the_pool() {
        let rel = relation(2);
        let pool = WorkerPool::new(2);
        let metrics = Arc::new(Mutex::new(Metrics::default()));
        rel.ingest(&[
            WriteOp::Upsert(Point::new(9_000, 3.0, 3.0)),
            WriteOp::Remove(17),
        ]);
        assert!(schedule_compaction(&rel, &pool, &metrics));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while rel.load().delta_len() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "background compaction did not publish"
            );
            std::thread::yield_now();
        }
        let snap = rel.load();
        assert_eq!(snap.num_points(), 500);
        assert!(snap.contains_id(9_000) && !snap.contains_id(17));
        assert_eq!(metrics.lock().unwrap().compactions, 1);
        // Below threshold now: nothing to schedule.
        assert!(!schedule_compaction(&rel, &pool, &metrics));
    }

    #[test]
    fn scheduled_compaction_is_synchronous_on_a_one_thread_pool() {
        let rel = relation(1);
        let pool = WorkerPool::new(1);
        let metrics = Arc::new(Mutex::new(Metrics::default()));
        rel.ingest(&[WriteOp::Remove(3)]);
        assert!(schedule_compaction(&rel, &pool, &metrics));
        // Inline spawn: the publish already happened.
        assert_eq!(rel.load().delta_len(), 0);
        assert_eq!(rel.load().num_points(), 499);
    }
}
