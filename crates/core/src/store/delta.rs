//! The sorted insert/delete overlay a snapshot carries on top of its base
//! index.
//!
//! A [`Delta`] is always expressed **relative to one base index**: `inserts`
//! holds points that are visible but not stored in the base, `deletes` holds
//! ids of base points that are no longer visible. Both lists are kept sorted
//! (by point id) and duplicate-free, so membership tests are binary searches
//! and two deltas over the same base can be compared structurally.
//!
//! Alongside the id-sorted insert list, the delta maintains an
//! [`OverlayGrid`]: the same inserts bucketed by **position** into a small
//! grid of copy-on-write cells. The grid is what
//! [`RelationSnapshot`](super::RelationSnapshot) materializes as per-cell
//! overlay blocks with tight MBRs, keeping MINDIST pruning effective during
//! write bursts; the sorted list keeps id lookups O(log n). Both structures
//! are updated by [`Delta::apply`], so they can never drift apart.

use twoknn_geometry::{Point, PointId};

use super::overlay::{OverlayConfig, OverlayGrid};

/// One ingest operation against a versioned relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteOp {
    /// Insert a point, replacing any existing point with the same id (the
    /// moving-objects workload: an update is a position report for a known
    /// object id).
    Upsert(Point),
    /// Remove the point with this id, if present.
    Remove(PointId),
}

/// A sorted insert/delete overlay relative to one base index.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Points visible on top of the base, sorted by id, unique per id.
    inserts: Vec<Point>,
    /// Ids of base points that are tombstoned, sorted, unique. Only ids the
    /// base actually stores are ever recorded here.
    deletes: Vec<PointId>,
    /// The same inserts, bucketed by position into copy-on-write grid cells.
    grid: OverlayGrid,
}

impl Default for Delta {
    fn default() -> Self {
        Self::new()
    }
}

/// Logical equality: two deltas are equal when they describe the same
/// visible-set change, regardless of how the overlay grid happens to be
/// decomposed (the grid geometry depends on the op history, not just the
/// final contents).
impl PartialEq for Delta {
    fn eq(&self, other: &Self) -> bool {
        self.inserts == other.inserts && self.deletes == other.deletes
    }
}

impl Delta {
    /// An empty overlay with the default [`OverlayConfig`].
    pub fn new() -> Self {
        Self::with_config(OverlayConfig::default())
    }

    /// An empty overlay with explicit grid tuning.
    pub fn with_config(config: OverlayConfig) -> Self {
        Self {
            inserts: Vec::new(),
            deletes: Vec::new(),
            grid: OverlayGrid::new(config),
        }
    }

    /// The overlay's inserted points, sorted by id.
    pub fn inserts(&self) -> &[Point] {
        &self.inserts
    }

    /// The tombstoned base point ids, sorted.
    pub fn deletes(&self) -> &[PointId] {
        &self.deletes
    }

    /// The position-bucketed view of the inserts.
    pub(crate) fn grid(&self) -> &OverlayGrid {
        &self.grid
    }

    /// Number of overlay entries (inserts + deletes) — the quantity the
    /// compaction threshold is compared against.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the overlay is empty (the snapshot equals its base).
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Whether `id` is tombstoned.
    pub fn is_deleted(&self, id: PointId) -> bool {
        self.deletes.binary_search(&id).is_ok()
    }

    /// The inserted point with `id`, if any.
    pub fn inserted(&self, id: PointId) -> Option<&Point> {
        self.inserts
            .binary_search_by_key(&id, |p| p.id)
            .ok()
            .map(|at| &self.inserts[at])
    }

    /// Applies one write operation. `base_has` must report whether the
    /// **base index** stores a point with a given id; the overlay uses it to
    /// decide between tombstoning a base point and editing its own inserts.
    ///
    /// Returns `true` when the operation changed the visible point set
    /// (an upsert always does; a remove only if the id was visible).
    pub fn apply(&mut self, op: &WriteOp, base_has: impl Fn(PointId) -> bool) -> bool {
        let changed = match op {
            WriteOp::Upsert(p) => {
                match self.inserts.binary_search_by_key(&p.id, |q| q.id) {
                    Ok(at) => {
                        let old = self.inserts[at];
                        self.inserts[at] = *p;
                        self.grid.remove(&old);
                        self.grid.add(*p);
                    }
                    Err(at) => {
                        self.inserts.insert(at, *p);
                        self.grid.add(*p);
                    }
                }
                // The base copy (if any) is shadowed: tombstone it so block
                // scans don't report the stale position.
                if base_has(p.id) {
                    if let Err(at) = self.deletes.binary_search(&p.id) {
                        self.deletes.insert(at, p.id);
                    }
                }
                true
            }
            WriteOp::Remove(id) => {
                let mut removed = false;
                if let Ok(at) = self.inserts.binary_search_by_key(id, |q| q.id) {
                    let old = self.inserts.remove(at);
                    self.grid.remove(&old);
                    removed = true;
                }
                if base_has(*id) {
                    match self.deletes.binary_search(id) {
                        // Already tombstoned: visibility unchanged by this op
                        // (unless we just dropped a shadowing insert).
                        Ok(_) => {}
                        Err(at) => {
                            self.deletes.insert(at, *id);
                            removed = true;
                        }
                    }
                }
                removed
            }
        };
        // Cheap O(1) staleness check; the actual re-bucket is geometric, so
        // the amortized cost per applied op stays O(1).
        self.grid.maybe_rebucket(&self.inserts);
        debug_assert_eq!(self.grid.len(), self.inserts.len());
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has(ids: &'static [PointId]) -> impl Fn(PointId) -> bool {
        move |id| ids.contains(&id)
    }

    #[test]
    fn upsert_insert_and_remove_roundtrip() {
        let mut d = Delta::new();
        assert!(d.apply(&WriteOp::Upsert(Point::new(5, 1.0, 2.0)), has(&[])));
        assert!(d.apply(&WriteOp::Upsert(Point::new(3, 0.0, 0.0)), has(&[])));
        assert_eq!(d.inserts().len(), 2);
        assert_eq!(d.inserts()[0].id, 3, "inserts stay sorted by id");
        assert!(d.deletes().is_empty());
        assert_eq!(d.len(), 2);

        assert!(d.apply(&WriteOp::Remove(5), has(&[])));
        assert_eq!(d.inserts().len(), 1);
        // Removing an id that is neither inserted nor in the base is a no-op.
        assert!(!d.apply(&WriteOp::Remove(99), has(&[])));
    }

    #[test]
    fn upsert_of_a_base_point_tombstones_the_stale_copy() {
        let mut d = Delta::new();
        assert!(d.apply(&WriteOp::Upsert(Point::new(7, 9.0, 9.0)), has(&[7])));
        assert!(d.is_deleted(7), "the base copy must be shadowed");
        assert_eq!(d.inserted(7).unwrap().x, 9.0);
        // A second upsert replaces in place without duplicating tombstones.
        assert!(d.apply(&WriteOp::Upsert(Point::new(7, 1.0, 1.0)), has(&[7])));
        assert_eq!(d.inserts().len(), 1);
        assert_eq!(d.deletes().len(), 1);
        assert_eq!(d.inserted(7).unwrap().x, 1.0);
    }

    #[test]
    fn remove_of_a_base_point_is_a_tombstone() {
        let mut d = Delta::new();
        assert!(d.apply(&WriteOp::Remove(2), has(&[2])));
        assert!(d.is_deleted(2));
        assert_eq!(d.len(), 1);
        // Removing it again changes nothing.
        assert!(!d.apply(&WriteOp::Remove(2), has(&[2])));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn remove_after_upsert_of_base_point_keeps_the_tombstone() {
        let mut d = Delta::new();
        d.apply(&WriteOp::Upsert(Point::new(4, 5.0, 5.0)), has(&[4]));
        assert!(d.apply(&WriteOp::Remove(4), has(&[4])));
        assert!(d.inserts().is_empty());
        assert!(d.is_deleted(4), "base copy must stay invisible");
    }

    #[test]
    fn grid_tracks_every_insert_edit() {
        let mut d = Delta::new();
        // A burst large enough to force a multi-cell grid.
        for i in 0..200u64 {
            let p = Point::new(i, (i % 20) as f64, (i / 20) as f64);
            d.apply(&WriteOp::Upsert(p), has(&[]));
        }
        assert!(d.grid().cells_per_axis() > 1);
        assert_eq!(d.grid().len(), d.inserts().len());
        // Moves and removes keep the two structures in lockstep.
        d.apply(&WriteOp::Upsert(Point::new(7, 500.0, 500.0)), has(&[]));
        d.apply(&WriteOp::Remove(8), has(&[]));
        assert_eq!(d.grid().len(), d.inserts().len());
        let moved = d.inserted(7).copied().unwrap();
        let cell = d.grid().find_at(&moved).expect("moved point re-bucketed");
        assert!(d.grid().cell_points(cell).iter().any(|q| q.id == 7));
        // Logical equality ignores grid geometry.
        let mut replay = Delta::new();
        for p in d.inserts() {
            replay.apply(&WriteOp::Upsert(*p), has(&[]));
        }
        assert_eq!(d, replay);
    }
}
