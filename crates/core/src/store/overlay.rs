//! The partitioned overlay grid: cell-bucketed storage of a delta's inserts.
//!
//! Every algorithm of the paper lives or dies by per-block MINDIST/MAXDIST
//! bounds: the Counting threshold test, Block-Marking's Candidate/Safe marks
//! and locality construction all prune a block by looking at its MBR and
//! count. Keeping all un-compacted inserts in **one** overlay block (the PR 3
//! design) silently defeats that machinery under a write burst: the block's
//! MBR spans the whole write footprint, its MINDIST from almost any query
//! point is ~0, and every query degrades toward scanning the entire burst
//! until the next compaction.
//!
//! The [`OverlayGrid`] bounds that erosion. Inserts are bucketed into a
//! small fixed-fanout uniform grid of cells; each **occupied** cell is
//! exposed by [`RelationSnapshot`](super::RelationSnapshot) as its own
//! overlay block whose MBR is the **tight bounding box of the points
//! actually in the cell** (not the cell's footprint), so far-away overlay
//! cells prune exactly like base blocks.
//!
//! Maintenance is incremental and copy-on-write:
//!
//! * each cell's point list is `Arc`-shared with the previous snapshot's
//!   grid; applying a batch clones only the cells the batch dirties
//!   (`Arc::make_mut`), so ingest cost is proportional to the touched
//!   cells, not the delta size;
//! * the decomposition (extent + fanout) is re-anchored only when the
//!   insert count outgrows/undershoots the current fanout geometrically or
//!   when a significant fraction of inserts has drifted outside the extent
//!   (points outside clamp into edge cells in the meantime — their tight
//!   MBRs stay correct, only locally less selective). Re-bucketing is
//!   therefore O(inserts) **amortized O(1) per write**.
//!
//! The fanout is sized from the insert count (≈ `√(n / cell_target)` cells
//! per axis, capped), so a small delta degenerates to the old single-block
//! overlay and a large burst gets a decomposition matching its size. Setting
//! [`OverlayConfig::max_cells_per_axis`] to 1 reproduces the single-block
//! behavior exactly — the ablation baseline `ablation_ingest` measures
//! against.

use std::sync::Arc;

use twoknn_geometry::{Point, Rect};
use twoknn_index::{BlockPoints, PointBlock};

/// Tuning knobs of the partitioned delta overlay, part of
/// [`StoreConfig`](super::StoreConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayConfig {
    /// Target number of inserts per overlay cell; the grid fanout is sized
    /// as ≈ `√(inserts / cell_target)` cells per axis.
    pub cell_target: usize,
    /// Upper bound on the fanout (cells per axis). `1` reproduces the
    /// single-block overlay (the pre-partitioning behavior) — useful as an
    /// ablation baseline.
    pub max_cells_per_axis: usize,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        Self {
            cell_target: 32,
            max_cells_per_axis: 32,
        }
    }
}

impl OverlayConfig {
    /// The fanout the grid should have for `n` bucketed inserts.
    fn desired_fanout(&self, n: usize) -> usize {
        let target = self.cell_target.max(1);
        let f = (n as f64 / target as f64).sqrt().ceil() as usize;
        f.clamp(1, self.max_cells_per_axis.max(1))
    }
}

/// One overlay cell: its bucketed points (in SoA layout, so overlay blocks
/// feed the batched distance kernels exactly like base blocks) plus their
/// tight bounding box.
#[derive(Debug, Clone)]
struct Cell {
    /// The cell's points, `Arc`-shared with the previous grid version until
    /// a write dirties this cell.
    points: Arc<PointBlock>,
    /// Tight bounding box of `points`; meaningless while the cell is empty.
    mbr: Rect,
}

impl Cell {
    fn empty() -> Self {
        Self {
            points: Arc::new(PointBlock::new()),
            mbr: Rect::new(0.0, 0.0, 0.0, 0.0),
        }
    }
}

/// A uniform grid bucketing the delta's inserts by position.
///
/// The decomposition extent is fixed between re-buckets; points outside it
/// are clamped into the edge cells (their tight MBRs keep the index
/// invariants intact). An empty grid has fanout 0 and no cells.
#[derive(Debug, Clone)]
pub(crate) struct OverlayGrid {
    config: OverlayConfig,
    /// Decomposition extent, anchored at the last re-bucket.
    bounds: Rect,
    /// Cells per axis; 0 iff the grid holds no points.
    cells_per_axis: usize,
    cells: Vec<Cell>,
    /// Total bucketed points (= the delta's insert count).
    len: usize,
    /// Points currently clamped into edge cells because they lie outside
    /// `bounds` — the drift trigger for re-anchoring the decomposition.
    outside: usize,
}

impl OverlayGrid {
    /// An empty grid.
    pub(crate) fn new(config: OverlayConfig) -> Self {
        Self {
            config,
            bounds: Rect::new(0.0, 0.0, 0.0, 0.0),
            cells_per_axis: 0,
            cells: Vec::new(),
            len: 0,
            outside: 0,
        }
    }

    /// Total bucketed points.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Cells per axis of the current decomposition (0 when empty).
    #[cfg(test)]
    pub(crate) fn cells_per_axis(&self) -> usize {
        self.cells_per_axis
    }

    /// The cell index `p`'s coordinates clamp into. Requires a non-empty
    /// grid.
    fn cell_of(&self, p: &Point) -> usize {
        let n = self.cells_per_axis;
        debug_assert!(n > 0, "cell_of on an empty grid");
        let cell_w = self.bounds.width() / n as f64;
        let cell_h = self.bounds.height() / n as f64;
        let clamp = |v: isize| v.clamp(0, n as isize - 1) as usize;
        let ix = clamp(((p.x - self.bounds.min_x) / cell_w).floor() as isize);
        let iy = clamp(((p.y - self.bounds.min_y) / cell_h).floor() as isize);
        iy * n + ix
    }

    /// Adds one point to its cell, dirtying only that cell.
    pub(crate) fn add(&mut self, p: Point) {
        if self.cells_per_axis == 0 {
            // First point: a degenerate 1-cell grid anchored at the point.
            // `cell_of` clamps, so the zero-extent bounds are harmless; the
            // next `maybe_rebucket` re-anchors once the delta grows.
            self.bounds = Rect::new(p.x, p.y, p.x, p.y);
            self.cells_per_axis = 1;
            self.cells = vec![Cell::empty()];
        }
        if !self.bounds.contains(&p) {
            self.outside += 1;
        }
        let idx = self.cell_of(&p);
        let cell = &mut self.cells[idx];
        let tight = Rect::new(p.x, p.y, p.x, p.y);
        cell.mbr = if cell.points.is_empty() {
            tight
        } else {
            cell.mbr.union(&tight)
        };
        Arc::make_mut(&mut cell.points).push(p);
        self.len += 1;
    }

    /// Removes the stored point with `p`'s id from the cell `p`'s
    /// coordinates map to (the caller passes the stored copy, so coordinates
    /// and id both match). Dirty-cell MBRs are recomputed tightly.
    pub(crate) fn remove(&mut self, p: &Point) {
        let idx = self.cell_of(p);
        let cell = &mut self.cells[idx];
        let points = Arc::make_mut(&mut cell.points);
        let at = points
            .position_by_id(p.id)
            .expect("removed insert must be bucketed in its coordinate cell");
        points.swap_remove(at);
        self.len -= 1;
        if !self.bounds.contains(p) {
            self.outside -= 1;
        }
        if let Ok(tight) = points.bounding() {
            cell.mbr = tight;
        }
        if self.len == 0 {
            *self = Self::new(self.config);
        }
    }

    /// Re-anchors the decomposition when the insert population has outgrown
    /// it: fanout off by ≥ 2× either way (geometric growth/shrink keeps the
    /// amortized cost O(1) per write), or ≥ ¼ of the points clamped outside
    /// the extent (a drifting workload). `inserts` must be the delta's
    /// complete insert list. Returns whether a re-bucket happened.
    pub(crate) fn maybe_rebucket(&mut self, inserts: &[Point]) -> bool {
        debug_assert_eq!(inserts.len(), self.len, "grid out of sync with inserts");
        if inserts.is_empty() {
            return false;
        }
        let desired = self.config.desired_fanout(inserts.len());
        let fanout_stale = desired >= self.cells_per_axis.saturating_mul(2)
            || desired.saturating_mul(2) <= self.cells_per_axis;
        let drifted = self.outside * 4 >= self.len.max(1);
        if !fanout_stale && !drifted {
            return false;
        }
        self.rebucket(inserts, desired);
        true
    }

    /// Rebuilds every cell over a fresh extent (the inserts' bounding box).
    fn rebucket(&mut self, inserts: &[Point], fanout: usize) {
        self.bounds = Rect::bounding(inserts).expect("rebucket requires inserts");
        self.cells_per_axis = fanout;
        self.cells = vec![Cell::empty(); fanout * fanout];
        self.len = 0;
        self.outside = 0;
        for p in inserts {
            self.add(*p);
        }
    }

    /// The occupied cells in ascending cell-index order:
    /// `(cell index, tight MBR, points)`.
    pub(crate) fn occupied(&self) -> impl Iterator<Item = (usize, Rect, BlockPoints<'_>)> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.points.is_empty())
            .map(|(idx, c)| (idx, c.mbr, c.points.view()))
    }

    /// The points bucketed in cell `idx`, as a SoA column view.
    pub(crate) fn cell_points(&self, idx: usize) -> BlockPoints<'_> {
        self.cells[idx].points.view()
    }

    /// The cell storing a point at exactly `p`'s coordinates, if any — an
    /// O(cell) lookup (only the cell `p` clamps into can store them).
    pub(crate) fn find_at(&self, p: &Point) -> Option<usize> {
        if self.cells_per_axis == 0 {
            return None;
        }
        let idx = self.cell_of(p);
        self.cells[idx]
            .points
            .iter()
            .any(|q| q.x == p.x && q.y == p.y)
            .then_some(idx)
    }

    /// Whether `points` is the same `Arc` as cell `idx`'s list — lets tests
    /// prove un-dirtied cells are shared, not copied, across versions.
    #[cfg(test)]
    pub(crate) fn shares_cell_with(&self, other: &OverlayGrid, idx: usize) -> bool {
        Arc::ptr_eq(&self.cells[idx].points, &other.cells[idx].points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, cx: f64, cy: f64, id_base: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                Point::new(
                    id_base + i as u64,
                    cx + (h % 1000) as f64 * 0.01,
                    cy + ((h / 1000) % 1000) as f64 * 0.01,
                )
            })
            .collect()
    }

    fn filled(points: &[Point]) -> OverlayGrid {
        let mut g = OverlayGrid::new(OverlayConfig::default());
        for p in points {
            g.add(*p);
        }
        g.maybe_rebucket(points);
        g
    }

    #[test]
    fn fanout_grows_with_insert_count_and_caps() {
        let cfg = OverlayConfig::default();
        assert_eq!(cfg.desired_fanout(0), 1);
        assert_eq!(cfg.desired_fanout(32), 1);
        assert_eq!(cfg.desired_fanout(33), 2);
        assert_eq!(cfg.desired_fanout(10_000), 18);
        assert_eq!(cfg.desired_fanout(10_000_000), 32, "capped");
        let single = OverlayConfig {
            max_cells_per_axis: 1,
            ..OverlayConfig::default()
        };
        assert_eq!(single.desired_fanout(1_000_000), 1);
    }

    #[test]
    fn cells_partition_the_inserts_with_tight_mbrs() {
        let pts = cluster(500, 40.0, 40.0, 0);
        let g = filled(&pts);
        assert!(g.cells_per_axis() > 1, "a 500-point burst must partition");
        let mut covered = 0;
        for (_, mbr, cell_pts) in g.occupied() {
            covered += cell_pts.len();
            let tight = cell_pts.bounding().unwrap();
            assert_eq!(mbr, tight, "cell MBR must be exactly tight");
        }
        assert_eq!(covered, 500, "every insert in exactly one cell");
        // Every point is findable via the O(cell) coordinate lookup.
        for p in &pts {
            let idx = g.find_at(p).expect("stored point must be findable");
            assert!(g.cell_points(idx).iter().any(|q| q.id == p.id));
        }
        assert!(g.find_at(&Point::anonymous(-999.0, -999.0)).is_none());
    }

    #[test]
    fn removal_keeps_mbrs_tight_and_empties_reset() {
        let pts = cluster(100, 10.0, 10.0, 0);
        let mut g = filled(&pts);
        for p in &pts {
            g.remove(p);
        }
        assert_eq!(g.len(), 0);
        assert_eq!(g.cells_per_axis(), 0, "fully drained grid resets");
        assert_eq!(g.occupied().count(), 0);
    }

    #[test]
    fn undirtied_cells_are_arc_shared_across_clones() {
        let pts = cluster(400, 20.0, 20.0, 0);
        let g = filled(&pts);
        let mut next = g.clone();
        // Dirty exactly one cell.
        let victim = pts[0];
        next.remove(&victim);
        let dirty = g.cell_of(&victim);
        let mut shared = 0;
        let mut total = 0;
        for idx in 0..g.cells.len() {
            if g.cells[idx].points.is_empty() {
                continue;
            }
            total += 1;
            if next.shares_cell_with(&g, idx) {
                shared += 1;
            } else {
                assert_eq!(idx, dirty, "only the dirtied cell may be copied");
            }
        }
        assert_eq!(shared, total - 1, "all un-dirtied cells stay shared");
    }

    #[test]
    fn drift_outside_the_extent_triggers_a_rebucket() {
        let mut pts = cluster(200, 0.0, 0.0, 0);
        let mut g = filled(&pts);
        let anchored = g.bounds;
        // A second cluster far away: clamped into edge cells at first…
        let far = cluster(200, 500.0, 500.0, 10_000);
        for p in &far {
            g.add(*p);
        }
        pts.extend(far);
        assert!(g.outside > 0, "far points start clamped");
        // …until the batch-end rebucket re-anchors the decomposition.
        assert!(g.maybe_rebucket(&pts));
        assert!(g.bounds.contains_rect(&anchored));
        assert_eq!(g.outside, 0);
        for (_, mbr, cell_pts) in g.occupied() {
            assert_eq!(mbr, cell_pts.bounding().unwrap());
        }
    }

    #[test]
    fn single_cell_cap_reproduces_the_single_block_overlay() {
        let mut g = OverlayGrid::new(OverlayConfig {
            max_cells_per_axis: 1,
            ..OverlayConfig::default()
        });
        let pts = cluster(300, 5.0, 5.0, 0);
        for p in &pts {
            g.add(*p);
        }
        g.maybe_rebucket(&pts);
        assert_eq!(g.cells_per_axis(), 1);
        assert_eq!(g.occupied().count(), 1);
        let (_, mbr, cell_pts) = g.occupied().next().unwrap();
        assert_eq!(cell_pts.len(), 300);
        assert_eq!(mbr, Rect::bounding(&pts).unwrap());
    }
}
