//! Crash recovery: relation manifests, per-relation durability state, and
//! the store-open path that rebuilds a catalog from disk.
//!
//! On-disk layout of a durable store rooted at `dir`:
//!
//! ```text
//! dir/
//! └── rel-<hex(name)>/             one directory per relation
//!     ├── MANIFEST                 commit point: index family, sharding,
//!     │                            and per shard {block file, covered seq}
//!     ├── shard-<s>-<gen>.blk      immutable shard base images
//!     └── wal-<n>.log              WAL segments (see `super::wal`)
//! ```
//!
//! The **manifest rewrite is the commit point** of every persistence step:
//! a new shard block file only "exists" once the manifest (written via temp
//! file + rename) references it. If the process dies between writing a
//! block file and flipping the manifest, recovery uses the previous
//! generation and the WAL suffix still carries the missing ops — nothing is
//! lost, some work is redone.
//!
//! [`recover_relations`] opens each relation directory: block files become
//! the shard bases (checksum-verified, columns decoded lazily), the WAL is
//! scanned (torn tail truncated), and every record with a sequence number
//! past the *minimum* shard `covered_seq` is replayed through the ingest
//! path in replay mode. Replaying a record a shard already covers is
//! idempotent on the visible set, and replay mode additionally retracts the
//! stale copy of a point whose cross-shard move was persisted by one shard
//! but not the other — shards checkpoint independently, so their bases may
//! cover different WAL prefixes.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use twoknn_geometry::Rect;
use twoknn_index::{Metrics, SpatialIndex};

use crate::obs::{EventKind, HistogramKind, Observability};

use super::blockfile::{write_block_file, BlockFileIndex};
use super::delta::WriteOp;
use super::snapshot::{BaseIndex, IndexConfig};
use super::version::VersionedRelation;
use super::wal::{crc32, SyncPolicy, Wal, WalRecord};
use super::StoreConfig;

/// Why opening a durable store failed.
///
/// Recovery *repairs* what a crash can legitimately produce (a torn WAL
/// tail) and *reports* what it cannot trust (checksum mismatches, missing
/// files) — it never panics on disk contents.
#[derive(Debug)]
pub enum RecoveryError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The originating I/O error.
        source: std::io::Error,
    },
    /// A file's contents failed validation (bad magic, checksum mismatch,
    /// inconsistent structure).
    Corrupt {
        /// The file that failed validation.
        path: PathBuf,
        /// What check failed.
        detail: String,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, source } => {
                write!(f, "recovery I/O error on {}: {source}", path.display())
            }
            Self::Corrupt { path, detail } => {
                write!(f, "corrupt store file {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Corrupt { .. } => None,
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> RecoveryError {
    RecoveryError::Io {
        path: path.to_path_buf(),
        source,
    }
}

const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_MAGIC: &[u8; 4] = b"TKMF";

/// The directory name a relation persists under: a hex encoding of the name
/// bytes, so arbitrary relation names map to filesystem-safe paths.
pub(crate) fn relation_dir_name(name: &str) -> String {
    let mut out = String::with_capacity(4 + name.len() * 2);
    out.push_str("rel-");
    for b in name.as_bytes() {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// One shard's entry in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ShardManifest {
    /// Highest WAL sequence number the shard's block file covers.
    pub covered_seq: u64,
    /// Block file name within the relation directory (empty until the
    /// registration-time persist completes).
    pub file: String,
}

/// The durable description of one relation: everything needed to rebuild
/// its [`VersionedRelation`] besides the block files and the WAL.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Manifest {
    pub name: String,
    /// Index family compaction rebuilds with (structural, persisted).
    pub index: IndexConfig,
    /// Spatial sharding grid side (structural: `per_axis²` shards).
    pub per_axis: usize,
    /// The registration bounds the shard map routes against.
    pub bounds: Rect,
    pub shards: Vec<ShardManifest>,
}

fn encode_index_config(config: &IndexConfig, out: &mut Vec<u8>) {
    let (tag, a, b): (u8, u64, u64) = match config {
        IndexConfig::Grid { cells_per_axis } => (0, *cells_per_axis as u64, 0),
        IndexConfig::Quadtree {
            capacity,
            max_depth,
        } => (1, *capacity as u64, *max_depth as u64),
        IndexConfig::RTree { leaf_capacity } => (2, *leaf_capacity as u64, 0),
    };
    out.push(tag);
    out.extend_from_slice(&a.to_le_bytes());
    out.extend_from_slice(&b.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let slice = self
            .buf
            .get(self.at..self.at + n)
            .ok_or_else(|| format!("truncated at byte {}", self.at))?;
        self.at += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }
}

fn decode_index_config(c: &mut Cursor<'_>) -> Result<IndexConfig, String> {
    let tag = c.take(1)?[0];
    let a = c.u64()? as usize;
    let b = c.u64()? as usize;
    match tag {
        0 => Ok(IndexConfig::Grid { cells_per_axis: a }),
        1 => Ok(IndexConfig::Quadtree {
            capacity: a,
            max_depth: b,
        }),
        2 => Ok(IndexConfig::RTree { leaf_capacity: a }),
        _ => Err(format!("unknown index config tag {tag}")),
    }
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        payload.extend_from_slice(self.name.as_bytes());
        encode_index_config(&self.index, &mut payload);
        payload.extend_from_slice(&(self.per_axis as u64).to_le_bytes());
        for v in [
            self.bounds.min_x,
            self.bounds.min_y,
            self.bounds.max_x,
            self.bounds.max_y,
        ] {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        payload.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for shard in &self.shards {
            payload.extend_from_slice(&shard.covered_seq.to_le_bytes());
            payload.extend_from_slice(&(shard.file.len() as u32).to_le_bytes());
            payload.extend_from_slice(shard.file.as_bytes());
        }
        let mut out = Vec::with_capacity(12 + payload.len());
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn decode(buf: &[u8]) -> Result<Self, String> {
        if buf.len() < 12 || &buf[0..4] != MANIFEST_MAGIC {
            return Err("bad magic (not a manifest)".into());
        }
        let len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        let payload = buf
            .get(12..12 + len)
            .ok_or_else(|| "truncated payload".to_string())?;
        if crc32(payload) != crc {
            return Err("checksum mismatch".into());
        }
        let mut c = Cursor {
            buf: payload,
            at: 0,
        };
        let name = c.string()?;
        let index = decode_index_config(&mut c)?;
        let per_axis = c.u64()? as usize;
        let bounds = Rect::new(c.f64()?, c.f64()?, c.f64()?, c.f64()?);
        let nshards = c.u32()? as usize;
        if per_axis == 0 || nshards != per_axis * per_axis {
            return Err(format!("{nshards} shards for a {per_axis}×{per_axis} grid"));
        }
        let mut shards = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let covered_seq = c.u64()?;
            let file = c.string()?;
            shards.push(ShardManifest { covered_seq, file });
        }
        if c.at != payload.len() {
            return Err("trailing bytes after manifest payload".into());
        }
        Ok(Self {
            name,
            index,
            per_axis,
            bounds,
            shards,
        })
    }

    fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        let tmp = dir.join("MANIFEST.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, dir.join(MANIFEST_NAME))
    }

    fn read_from(dir: &Path) -> Result<Self, RecoveryError> {
        let path = dir.join(MANIFEST_NAME);
        let buf = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        Self::decode(&buf).map_err(|detail| RecoveryError::Corrupt { path, detail })
    }
}

struct DurState {
    manifest: Manifest,
    /// Next block-file generation number.
    gen: u64,
    /// Per shard: the manifest's block file no longer matches the shard's
    /// in-memory base (a persist failed). Checkpoints must not advance such
    /// a shard's `covered_seq` — the WAL keeps it correct instead.
    stale: Vec<bool>,
}

/// The durable state of one relation: its directory, WAL, and manifest.
///
/// Shared (via `Arc`) between the [`VersionedRelation`] — whose ingest path
/// appends batches and whose compaction publish persists shard bases — and
/// the store's checkpoint/deregister paths.
pub(crate) struct RelationDurability {
    dir: PathBuf,
    wal: Wal,
    state: Mutex<DurState>,
    metrics: Arc<Mutex<Metrics>>,
    obs: Arc<Observability>,
}

impl RelationDurability {
    /// Creates the durable state for a freshly registered relation: wipes
    /// any previous directory of the same name and starts an empty WAL. The
    /// manifest is not written until the first
    /// [`RelationDurability::persist_shard`] — a crash before all shards
    /// persist leaves an incomplete directory that recovery skips.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn create(
        root: &Path,
        name: &str,
        index: IndexConfig,
        per_axis: usize,
        bounds: Rect,
        sync: SyncPolicy,
        segment_bytes: u64,
        metrics: Arc<Mutex<Metrics>>,
        obs: Arc<Observability>,
    ) -> std::io::Result<Self> {
        let dir = root.join(relation_dir_name(name));
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;
        let wal = Wal::create(&dir, sync, segment_bytes)?;
        let shards = (0..per_axis * per_axis)
            .map(|_| ShardManifest {
                covered_seq: 0,
                file: String::new(),
            })
            .collect();
        Ok(Self {
            dir,
            wal,
            state: Mutex::new(DurState {
                manifest: Manifest {
                    name: name.to_string(),
                    index,
                    per_axis,
                    bounds,
                    shards,
                },
                gen: 0,
                stale: vec![false; per_axis * per_axis],
            }),
            metrics,
            obs,
        })
    }

    /// Reopens the durable state from an existing relation directory,
    /// returning the persisted manifest and the intact WAL records.
    pub(crate) fn open(
        dir: &Path,
        sync: SyncPolicy,
        segment_bytes: u64,
        metrics: Arc<Mutex<Metrics>>,
        obs: Arc<Observability>,
    ) -> Result<(Self, Manifest, Vec<WalRecord>), RecoveryError> {
        let manifest = Manifest::read_from(dir)?;
        let base_seq = manifest
            .shards
            .iter()
            .map(|s| s.covered_seq)
            .max()
            .unwrap_or(0);
        let (wal, records) = Wal::open(dir, sync, segment_bytes, base_seq)?;
        // Continue generation numbers past every referenced block file.
        let gen = manifest
            .shards
            .iter()
            .filter_map(|s| {
                s.file
                    .strip_suffix(".blk")
                    .and_then(|stem| stem.rsplit('-').next())
                    .and_then(|g| g.parse::<u64>().ok())
            })
            .max()
            .unwrap_or(0);
        let nshards = manifest.shards.len();
        Ok((
            Self {
                dir: dir.to_path_buf(),
                wal,
                state: Mutex::new(DurState {
                    manifest: manifest.clone(),
                    gen,
                    stale: vec![false; nshards],
                }),
                metrics,
                obs,
            },
            manifest,
            records,
        ))
    }

    /// Appends one batch record to the WAL (called with every touched
    /// shard's writer lock held — see the ordering argument in
    /// [`super::version`]). Returns the assigned sequence number.
    pub(crate) fn append_batch(&self, ops: &[WriteOp]) -> std::io::Result<u64> {
        let start = std::time::Instant::now();
        let (seq, bytes, fsync_wall) = self.wal.append(ops)?;
        self.obs.record(HistogramKind::WalAppend, start.elapsed());
        if let Some(wall) = fsync_wall {
            self.obs.record(HistogramKind::WalFsync, wall);
        }
        let mut m = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        m.wal_appends += 1;
        m.wal_bytes += bytes;
        Ok(seq)
    }

    /// The highest WAL sequence number assigned so far.
    pub(crate) fn last_seq(&self) -> u64 {
        self.wal.last_seq()
    }

    /// Persists shard `s`'s base as a new block-file generation and commits
    /// it by rewriting the manifest with `covered_seq`. The previous
    /// generation is deleted afterwards (best effort — an orphaned file is
    /// unreferenced and harmless).
    ///
    /// On failure the shard is marked stale: its manifest entry keeps the
    /// old (still correct) generation and checkpoints stop advancing its
    /// `covered_seq`, so the WAL suffix keeps carrying the missing ops.
    pub(crate) fn persist_shard(
        &self,
        s: usize,
        base: &dyn SpatialIndex,
        covered_seq: u64,
    ) -> std::io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.gen += 1;
        let file = format!("shard-{s}-{}.blk", state.gen);
        let result = write_block_file(&self.dir.join(&file), base).and_then(|_| {
            let old = std::mem::replace(
                &mut state.manifest.shards[s],
                ShardManifest { covered_seq, file },
            );
            state.manifest.write_to(&self.dir).map(|()| old)
        });
        match result {
            Ok(old) => {
                state.stale[s] = false;
                if !old.file.is_empty() && old.file != state.manifest.shards[s].file {
                    let _ = std::fs::remove_file(self.dir.join(&old.file));
                }
                Ok(())
            }
            Err(e) => {
                state.stale[s] = true;
                Err(e)
            }
        }
    }

    /// Advances shard `s`'s covered sequence in the in-memory manifest —
    /// valid only while the caller holds the shard's writer lock and has
    /// verified the shard is clean (empty delta and writer log, so its
    /// persisted base equals its visible set). No-op for stale shards.
    /// Callers follow up with [`RelationDurability::sync_manifest`].
    pub(crate) fn bump_covered(&self, s: usize, seq: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !state.stale[s] && seq > state.manifest.shards[s].covered_seq {
            state.manifest.shards[s].covered_seq = seq;
        }
    }

    /// Rewrites the manifest from the in-memory state and deletes WAL
    /// segments every shard's `covered_seq` has moved past. Returns the
    /// number of segments trimmed.
    pub(crate) fn sync_manifest_and_trim(&self) -> std::io::Result<usize> {
        let min_covered = {
            let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.manifest.write_to(&self.dir)?;
            state
                .manifest
                .shards
                .iter()
                .map(|s| s.covered_seq)
                .min()
                .unwrap_or(0)
        };
        let trimmed = self.wal.trim(min_covered);
        if trimmed > 0 {
            self.obs.event(
                EventKind::SegmentTrim,
                format!(
                    "{trimmed} WAL segment(s) trimmed up to seq {min_covered} in {}",
                    self.dir.display()
                ),
            );
        }
        Ok(trimmed)
    }

    /// Deletes the relation's directory (deregistration).
    pub(crate) fn wipe(&self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl std::fmt::Debug for RelationDurability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelationDurability")
            .field("dir", &self.dir)
            .field("wal", &self.wal)
            .finish_non_exhaustive()
    }
}

/// Rebuilds the relation catalog from a durable store directory: for every
/// complete relation directory, opens the manifest, loads the shard block
/// files as bases, and replays the WAL suffix past the minimum persisted
/// `covered_seq` through replay-mode ingest.
pub(crate) fn recover_relations(
    root: &Path,
    sync: SyncPolicy,
    segment_bytes: u64,
    config: &StoreConfig,
    metrics: &Arc<Mutex<Metrics>>,
    obs: &Arc<Observability>,
) -> Result<HashMap<String, Arc<VersionedRelation>>, RecoveryError> {
    let mut out = HashMap::new();
    if !root.is_dir() {
        return Ok(out);
    }
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(root).map_err(|e| io_err(root, e))? {
        let entry = entry.map_err(|e| io_err(root, e))?;
        let path = entry.path();
        if path.is_dir()
            && path
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("rel-"))
        {
            dirs.push(path);
        }
    }
    dirs.sort();
    for dir in dirs {
        // No manifest = a registration that never completed its first
        // persist; there is nothing consistent to recover.
        if !dir.join(MANIFEST_NAME).exists() {
            continue;
        }
        let rel = recover_relation(&dir, sync, segment_bytes, config, metrics, obs)?;
        let mut m = metrics.lock().unwrap_or_else(PoisonError::into_inner);
        m.recoveries += 1;
        drop(m);
        out.insert(rel.name().to_string(), rel);
    }
    Ok(out)
}

fn recover_relation(
    dir: &Path,
    sync: SyncPolicy,
    segment_bytes: u64,
    config: &StoreConfig,
    metrics: &Arc<Mutex<Metrics>>,
    obs: &Arc<Observability>,
) -> Result<Arc<VersionedRelation>, RecoveryError> {
    let (dur, manifest, records) = RelationDurability::open(
        dir,
        sync,
        segment_bytes,
        Arc::clone(metrics),
        Arc::clone(obs),
    )?;
    let mut bases: Vec<BaseIndex> = Vec::with_capacity(manifest.shards.len());
    for shard in &manifest.shards {
        if shard.file.is_empty() {
            return Err(RecoveryError::Corrupt {
                path: dir.join(MANIFEST_NAME),
                detail: "manifest references an unpersisted shard".into(),
            });
        }
        bases.push(Arc::new(BlockFileIndex::open(&dir.join(&shard.file))?));
    }
    let min_covered = manifest
        .shards
        .iter()
        .map(|s| s.covered_seq)
        .min()
        .unwrap_or(0);
    let rel = Arc::new(VersionedRelation::from_recovered(
        manifest.name.clone(),
        manifest.bounds,
        manifest.per_axis,
        bases,
        manifest.index,
        config,
        Arc::new(dur),
    ));
    for (seq, ops) in &records {
        if *seq > min_covered {
            rel.ingest_replay(ops);
        }
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_dir_names_are_hex_and_distinct() {
        assert_eq!(relation_dir_name("AB"), "rel-4142");
        assert_ne!(relation_dir_name("a/b"), relation_dir_name("a_b"));
    }

    #[test]
    fn manifest_roundtrips_and_rejects_corruption() {
        let m = Manifest {
            name: "Vehicles".into(),
            index: IndexConfig::Quadtree {
                capacity: 64,
                max_depth: 12,
            },
            per_axis: 2,
            bounds: Rect::new(-1.0, -2.0, 3.0, 4.0),
            shards: (0..4)
                .map(|s| ShardManifest {
                    covered_seq: s as u64 * 10,
                    file: format!("shard-{s}-1.blk"),
                })
                .collect(),
        };
        let mut bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x02;
        assert!(Manifest::decode(&bytes).is_err(), "bit flip must be caught");
        assert!(Manifest::decode(&bytes[..6]).is_err());
        assert!(Manifest::decode(b"not a manifest at all").is_err());
    }

    #[test]
    fn index_config_variants_all_roundtrip() {
        for config in [
            IndexConfig::Grid { cells_per_axis: 9 },
            IndexConfig::Quadtree {
                capacity: 32,
                max_depth: 8,
            },
            IndexConfig::RTree { leaf_capacity: 48 },
        ] {
            let m = Manifest {
                name: "R".into(),
                index: config,
                per_axis: 1,
                bounds: Rect::new(0.0, 0.0, 1.0, 1.0),
                shards: vec![ShardManifest {
                    covered_seq: 0,
                    file: "shard-0-1.blk".into(),
                }],
            };
            assert_eq!(Manifest::decode(&m.encode()).unwrap().index, config);
        }
    }
}
