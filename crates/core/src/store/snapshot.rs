//! Immutable shard snapshots: a base index plus a materialized delta
//! overlay, presented through the ordinary [`SpatialIndex`] trait.
//!
//! A [`ShardSnapshot`] is the per-shard storage unit of a relation: each
//! spatial shard of a [`super::RelationSnapshot`] is one `ShardSnapshot`
//! (an unsharded relation is simply one shard covering the whole extent).
//! It is immutable — ingest and compaction never mutate a published
//! snapshot, they build a *new* one and atomically swap the shard's current
//! pointer — so a query (or a whole batch) that pinned a composed snapshot
//! keeps a frozen, consistent view no matter what writers do concurrently.
//!
//! The overlay is folded into the block structure the trait exposes:
//!
//! * every **base block** keeps its id and footprint; blocks containing
//!   tombstoned points expose a filtered copy of their point list (the
//!   filtered copies are built once, when the snapshot is created — reads
//!   are plain slice borrows);
//! * the **inserted points** live in the delta's [`OverlayGrid`]: each
//!   occupied grid cell becomes one extra overlay block appended after the
//!   base blocks, with the **tight bounding box of the cell's points** as
//!   its footprint. A small delta degenerates to a single overlay block;
//!   a write burst is partitioned so MINDIST pruning and Block-Marking keep
//!   working instead of degrading toward a scan of the whole burst.
//!
//! Block ids therefore stay dense, counts stay consistent, and every
//! algorithm of the paper runs unmodified on a delta-bearing relation —
//! [`twoknn_index::check_index_invariants`] holds for any snapshot, and
//! [`ShardSnapshot::check_overlay_invariants`] additionally pins the
//! overlay-specific guarantees (exact per-cell counts/MBRs, tombstones
//! filtered everywhere, inserts locatable in O(cell)).
//!
//! Because a snapshot is immutable, its optimizer statistics are immutable
//! too: [`ShardSnapshot::profile`] memoizes the
//! [`RelationProfile`](crate::plan::RelationProfile) on first use; the
//! composed relation snapshot merges the per-shard state lazily the same
//! way, so a batch of queries planned against one snapshot profiles each
//! relation once, not once per query.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use twoknn_geometry::{Point, PointId, Rect};
use twoknn_index::{BlockId, BlockMeta, BlockPoints, PointBlock, SpatialIndex};

use crate::plan::stats::RelationProfile;

use super::delta::{Delta, WriteOp};
use super::overlay::OverlayConfig;

/// A shared, immutable base index.
pub type BaseIndex = Arc<dyn SpatialIndex + Send + Sync>;

/// Maps every base point id to the block storing it, so ingest can
/// tombstone by id in O(affected block) instead of scanning the index.
///
/// The map is built **lazily** on first use (write paths and id lookups)
/// and shared by all snapshots over the same base. Laziness matters for
/// recovered relations, whose bases are lazily decoded
/// [`BlockFileIndex`](super::blockfile::BlockFileIndex)es: a read-only
/// workload after a restart never touches the map, so it never forces every
/// block's columns to decode.
pub(crate) struct BaseIds {
    base: BaseIndex,
    map: OnceLock<HashMap<PointId, BlockId>>,
}

impl BaseIds {
    pub(crate) fn new(base: &BaseIndex) -> Arc<Self> {
        Arc::new(Self {
            base: Arc::clone(base),
            map: OnceLock::new(),
        })
    }

    /// The id → block map, built on first call (one O(n) scan of the base).
    pub(crate) fn get(&self) -> &HashMap<PointId, BlockId> {
        self.map.get_or_init(|| index_ids(self.base.as_ref()))
    }
}

/// A shared [`BaseIds`] — one per base index, shared by its snapshots.
pub(crate) type BaseIdMap = Arc<BaseIds>;

/// Builds the id → block map of a base index.
pub(crate) fn index_ids(base: &dyn SpatialIndex) -> HashMap<PointId, BlockId> {
    let mut ids = HashMap::with_capacity(base.num_points());
    for block in base.blocks() {
        for p in base.block_points(block.id) {
            ids.insert(p.id, block.id);
        }
    }
    ids
}

/// An immutable versioned view of a relation: base index + delta overlay.
///
/// Implements [`SpatialIndex`], so every query algorithm (and
/// [`RelationProfile`](crate::plan::RelationProfile)) consumes it exactly
/// like a plain index.
pub struct ShardSnapshot {
    base: BaseIndex,
    base_ids: BaseIdMap,
    delta: Delta,
    /// Base blocks with tombstone-adjusted counts, plus one overlay block
    /// per occupied overlay-grid cell starting at id `base.num_blocks()`.
    blocks: Vec<BlockMeta>,
    /// Overlay-block ordinal → overlay-grid cell index, ascending. Maps the
    /// dense block ids the trait exposes back to the grid cells that store
    /// the points.
    overlay_cells: Vec<usize>,
    /// Filtered point lists (SoA blocks) of the base blocks that lost points
    /// to tombstones. `Arc`'d so successive snapshots share the lists of
    /// blocks an ingest batch did not touch.
    tombstoned: HashMap<BlockId, Arc<PointBlock>>,
    bounds: Rect,
    num_points: usize,
    version: u64,
    /// Memoized optimizer statistics — computed at most once per published
    /// version, shared by every query planned against this snapshot.
    profile: OnceLock<RelationProfile>,
}

/// The per-op outcome of applying one ingest batch to a snapshot.
pub(crate) struct BatchOutcome {
    /// Per op: whether it changed the visible point set. (Per-op *prior
    /// visibility* is resolved one level up, during shard routing, where a
    /// batch's ops may span shards.)
    pub changed: Vec<bool>,
}

impl ShardSnapshot {
    /// Wraps a freshly built base index with an empty overlay.
    pub(crate) fn clean(base: BaseIndex, version: u64, overlay: OverlayConfig) -> Self {
        let base_ids = BaseIds::new(&base);
        Self::assemble(base, base_ids, Delta::with_config(overlay), version)
    }

    /// A new snapshot over the same base with a different overlay, rebuilt
    /// from scratch (used by the compaction publish path, where there is no
    /// previous overlay to share with).
    pub(crate) fn with_delta(&self, delta: Delta, version: u64) -> Self {
        Self::assemble(
            Arc::clone(&self.base),
            Arc::clone(&self.base_ids),
            delta,
            version,
        )
    }

    /// Applies one ingest batch, producing the successor snapshot plus the
    /// per-op [`BatchOutcome`].
    ///
    /// Incremental on the writer path: only the blocks that gained a
    /// tombstone **in this batch** get their filtered point list rebuilt;
    /// all other filtered lists are shared with `self` (tombstones never
    /// disappear between compactions, so stale sharing is impossible).
    pub(crate) fn apply_batch(&self, ops: &[WriteOp], version: u64) -> (Self, BatchOutcome) {
        let mut delta = self.delta.clone();
        let mut changed = Vec::with_capacity(ops.len());
        let mut touched: Vec<BlockId> = Vec::new();
        for op in ops {
            let id = match op {
                WriteOp::Upsert(p) => p.id,
                WriteOp::Remove(id) => *id,
            };
            let deletes_before = delta.deletes().len();
            changed.push(delta.apply(op, |id| self.base_ids.get().contains_key(&id)));
            if delta.deletes().len() != deletes_before {
                touched.push(self.base_ids.get()[&id]);
            }
        }
        let mut tombstoned = self.tombstoned.clone();
        touched.sort_unstable();
        touched.dedup();
        for block in touched {
            tombstoned.insert(
                block,
                Arc::new(
                    self.base
                        .block_points(block)
                        .iter()
                        .filter(|p| !delta.is_deleted(p.id))
                        .collect(),
                ),
            );
        }
        let snapshot = Self::finish(
            Arc::clone(&self.base),
            Arc::clone(&self.base_ids),
            delta,
            tombstoned,
            version,
        );
        (snapshot, BatchOutcome { changed })
    }

    fn assemble(base: BaseIndex, base_ids: BaseIdMap, delta: Delta, version: u64) -> Self {
        let mut affected: Vec<BlockId> = delta
            .deletes()
            .iter()
            .map(|id| {
                *base_ids
                    .get()
                    .get(id)
                    .expect("delta tombstones only reference ids stored in the base")
            })
            .collect();
        affected.sort_unstable();
        affected.dedup();
        let tombstoned: HashMap<BlockId, Arc<PointBlock>> = affected
            .into_iter()
            .map(|block| {
                let filtered: PointBlock = base
                    .block_points(block)
                    .iter()
                    .filter(|p| !delta.is_deleted(p.id))
                    .collect();
                (block, Arc::new(filtered))
            })
            .collect();
        Self::finish(base, base_ids, delta, tombstoned, version)
    }

    fn finish(
        base: BaseIndex,
        base_ids: BaseIdMap,
        delta: Delta,
        tombstoned: HashMap<BlockId, Arc<PointBlock>>,
        version: u64,
    ) -> Self {
        let mut blocks: Vec<BlockMeta> = base.blocks().to_vec();
        for (&block, filtered) in &tombstoned {
            blocks[block as usize] =
                BlockMeta::new(block, blocks[block as usize].mbr, filtered.len());
        }
        // One overlay block per occupied grid cell, each with the tight
        // bounding box of the points actually in the cell — far-away cells
        // prune under MINDIST exactly like base blocks. Assembling the metas
        // is O(cells); the cell contents themselves are Arc-shared with the
        // previous snapshot except where the batch dirtied them.
        let mut bounds = base.bounds();
        let mut overlay_cells = Vec::new();
        for (cell, mbr, points) in delta.grid().occupied() {
            blocks.push(BlockMeta::new(blocks.len() as BlockId, mbr, points.len()));
            overlay_cells.push(cell);
            bounds = bounds.union(&mbr);
        }
        let num_points = base.num_points() - delta.deletes().len() + delta.inserts().len();
        let snapshot = Self {
            base,
            base_ids,
            delta,
            blocks,
            overlay_cells,
            tombstoned,
            bounds,
            num_points,
            version,
            profile: OnceLock::new(),
        };
        debug_assert_eq!(snapshot.check_overlay_invariants(), Ok(()));
        snapshot
    }

    /// The snapshot's version: strictly increasing across a relation's
    /// publishes (ingest batches and compactions alike).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The delta overlay this snapshot carries on top of its base.
    pub fn delta(&self) -> &Delta {
        &self.delta
    }

    /// Number of overlay entries (inserts + deletes) — what the compaction
    /// threshold compares against.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// The shared base index.
    pub fn base(&self) -> &BaseIndex {
        &self.base
    }

    pub(crate) fn base_ids(&self) -> &BaseIdMap {
        &self.base_ids
    }

    /// Whether a point with `id` is visible in this snapshot.
    pub fn contains_id(&self, id: PointId) -> bool {
        self.delta.inserted(id).is_some()
            || (self.base_ids.get().contains_key(&id) && !self.delta.is_deleted(id))
    }

    /// The visible position of the point with `id`, if any — an O(block)
    /// lookup (overlay inserts by binary search, base points via the
    /// id → block map). The continuous-query maintainer uses this on the
    /// pre-ingest snapshot to recover the *old* position of moved or
    /// removed points for guard probing.
    pub fn position_of(&self, id: PointId) -> Option<Point> {
        if let Some(p) = self.delta.inserted(id) {
            return Some(*p);
        }
        if self.delta.is_deleted(id) {
            return None;
        }
        let block = *self.base_ids.get().get(&id)?;
        self.base.block_points(block).iter().find(|p| p.id == id)
    }

    /// Number of overlay blocks (occupied overlay-grid cells) this snapshot
    /// exposes after its base blocks.
    pub fn overlay_block_count(&self) -> usize {
        self.overlay_cells.len()
    }

    /// The memoized optimizer statistics of this snapshot, computed on
    /// first use. Snapshots are immutable, so the profile of a published
    /// version never changes — `execute_batch` plans every query of a batch
    /// against one profile computation per relation instead of recomputing
    /// `O(num_blocks)` statistics per query.
    pub fn profile(&self) -> RelationProfile {
        *self.profile.get_or_init(|| RelationProfile::compute(self))
    }

    /// All currently visible points: filtered base points plus inserts.
    /// Mostly for tests and the serial compaction path; the background
    /// rebuild gathers points block-parallel instead.
    pub fn merged_points(&self) -> Vec<Point> {
        self.all_points()
    }

    /// Checks the overlay-specific structural invariants on top of
    /// [`twoknn_index::check_index_invariants`]:
    ///
    /// * every overlay block's count and MBR reflect its grid cell's
    ///   tombstone-free contents **exactly** (the MBR is the tight bounding
    ///   box, not a stale or padded footprint);
    /// * every delta insert is bucketed in exactly one overlay block and is
    ///   locatable through [`SpatialIndex::locate`];
    /// * no tombstoned id is visible in any block (base or overlay);
    /// * the visible point count adds up.
    pub fn check_overlay_invariants(&self) -> Result<(), String> {
        twoknn_index::check_index_invariants(self)?;
        let base_blocks = self.base.num_blocks();
        let mut bucketed = 0usize;
        for (ordinal, &cell) in self.overlay_cells.iter().enumerate() {
            let meta = self.blocks[base_blocks + ordinal];
            let points = self.delta.grid().cell_points(cell);
            if points.is_empty() {
                return Err(format!("overlay block {} maps to an empty cell", meta.id));
            }
            if meta.count != points.len() {
                return Err(format!(
                    "overlay block {} count {} != cell contents {}",
                    meta.id,
                    meta.count,
                    points.len()
                ));
            }
            let tight = points.bounding().expect("cell is non-empty");
            if meta.mbr != tight {
                return Err(format!(
                    "overlay block {} MBR {} is not the tight bounding box {tight}",
                    meta.id, meta.mbr
                ));
            }
            for p in points {
                if self.delta.inserted(p.id) != Some(&p) {
                    return Err(format!(
                        "overlay block {} holds {p}, which drifted from the delta's inserts",
                        meta.id
                    ));
                }
            }
            bucketed += points.len();
        }
        if bucketed != self.delta.inserts().len() {
            return Err(format!(
                "overlay blocks hold {bucketed} points, delta has {} inserts",
                self.delta.inserts().len()
            ));
        }
        for block in 0..base_blocks {
            for p in self.block_points(block as BlockId) {
                if self.delta.is_deleted(p.id) {
                    return Err(format!(
                        "tombstoned point {p} visible in base block {block}"
                    ));
                }
            }
        }
        for p in self.delta.inserts() {
            match self.locate(p) {
                Some(at) if (at as usize) >= base_blocks => {
                    if !self.block_points(at).iter().any(|q| q.id == p.id) {
                        return Err(format!("insert {p} locates to block {at} not storing it"));
                    }
                }
                other => {
                    return Err(format!(
                        "insert {p} must locate to its overlay block, got {other:?}"
                    ))
                }
            }
        }
        Ok(())
    }
}

impl SpatialIndex for ShardSnapshot {
    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn num_points(&self) -> usize {
        self.num_points
    }

    fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    fn block_points(&self, id: BlockId) -> BlockPoints<'_> {
        if let Some(ordinal) = (id as usize).checked_sub(self.base.num_blocks()) {
            return self.delta.grid().cell_points(self.overlay_cells[ordinal]);
        }
        match self.tombstoned.get(&id) {
            Some(filtered) => filtered.view(),
            None => self.base.block_points(id),
        }
    }

    fn locate(&self, p: &Point) -> Option<BlockId> {
        // Prefer the block that actually stores a point at these coordinates
        // (the trait's contract for overlapping footprints): results that
        // came from inserted points must locate to their overlay block so
        // that block-marking algorithms mark it as a Candidate. The grid
        // routes the check to the single cell `p`'s coordinates bucket into,
        // so this is O(cell), not O(inserts).
        if let Some(cell) = self.delta.grid().find_at(p) {
            let ordinal = self
                .overlay_cells
                .binary_search(&cell)
                .expect("a cell storing points has an overlay block");
            return Some((self.base.num_blocks() + ordinal) as BlockId);
        }
        if let Some(block) = self.base.locate(p) {
            return Some(block);
        }
        // Points outside the base bounds can still fall inside an overlay
        // block's footprint (overlay blocks only exist for occupied cells,
        // so this scan is bounded by the grid's occupied-cell count).
        self.blocks[self.base.num_blocks()..]
            .iter()
            .find(|meta| meta.mbr.contains(p))
            .map(|meta| meta.id)
    }
}

impl std::fmt::Debug for ShardSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSnapshot")
            .field("version", &self.version)
            .field("num_points", &self.num_points)
            .field("delta_len", &self.delta.len())
            .field("num_blocks", &self.blocks.len())
            .finish_non_exhaustive()
    }
}

/// How to rebuild a relation's base index at compaction time.
///
/// Compaction replaces the base wholesale, so the store must know the index
/// *family and granularity* to rebuild into. The three built-in families are
/// covered; [`StoredIndex`] infers the config automatically when registering
/// one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexConfig {
    /// Rebuild as a [`twoknn_index::GridIndex`] with `cells_per_axis` cells
    /// along each axis.
    Grid {
        /// Cells along each axis (clamped to ≥ 1 when building).
        cells_per_axis: usize,
    },
    /// Rebuild as a [`twoknn_index::QuadtreeIndex`] with the given leaf
    /// capacity and subdivision depth limit.
    Quadtree {
        /// Leaf split threshold (clamped to ≥ 1 when building).
        capacity: usize,
        /// Maximum subdivision depth
        /// ([`twoknn_index::DEFAULT_MAX_DEPTH`] reproduces
        /// [`twoknn_index::QuadtreeIndex::build`]).
        max_depth: usize,
    },
    /// Rebuild as a [`twoknn_index::StrRTree`] with the given leaf capacity.
    RTree {
        /// Points per leaf (clamped to ≥ 1 when building).
        leaf_capacity: usize,
    },
}

impl IndexConfig {
    /// Builds a fresh base index of this family over `points`.
    ///
    /// `bounds_hint` (the previous base's extent) keeps the space
    /// decomposition meaningful when `points` is empty or degenerate. An
    /// empty R-tree cannot be represented ([`twoknn_index::StrRTree`]
    /// requires points), so that corner case falls back to a single-cell
    /// grid over the hint bounds — the family is restored by the next
    /// compaction once the relation has points again.
    pub fn build(&self, points: Vec<Point>, bounds_hint: Rect) -> BaseIndex {
        let bounds = bounds_for(&points, bounds_hint);
        match *self {
            IndexConfig::Grid { cells_per_axis } => Arc::new(
                twoknn_index::GridIndex::build_with_bounds(points, bounds, cells_per_axis.max(1))
                    .expect("grid build with explicit bounds and ≥1 cells cannot fail"),
            ),
            IndexConfig::Quadtree {
                capacity,
                max_depth,
            } => Arc::new(
                twoknn_index::QuadtreeIndex::build_with_bounds(
                    points,
                    bounds,
                    capacity.max(1),
                    max_depth,
                )
                .expect("quadtree build with explicit bounds and ≥1 capacity cannot fail"),
            ),
            IndexConfig::RTree { leaf_capacity } => {
                if points.is_empty() {
                    return Arc::new(
                        twoknn_index::GridIndex::build_with_bounds(points, bounds_hint, 1)
                            .expect("empty grid build with explicit bounds cannot fail"),
                    );
                }
                Arc::new(
                    twoknn_index::StrRTree::build(points, leaf_capacity.max(1))
                        .expect("non-empty R-tree build with ≥1 leaf capacity cannot fail"),
                )
            }
        }
    }
}

/// The extent a rebuild should cover: the points' bounding box extended to
/// the previous base's bounds, so shrinking data never shrinks the space
/// decomposition mid-stream (and empty data keeps the old extent).
fn bounds_for(points: &[Point], hint: Rect) -> Rect {
    match Rect::bounding(points) {
        Ok(b) => b.union(&hint),
        Err(_) => hint,
    }
}

/// An index family the store can rebuild without an explicit
/// [`IndexConfig`]: the three built-in index types report their own build
/// parameters. Custom [`SpatialIndex`] implementations register through
/// [`Database::register_with_config`](crate::plan::Database::register_with_config)
/// instead.
pub trait StoredIndex: SpatialIndex + Send + Sync + 'static {
    /// The config that rebuilds an equivalent index over new points.
    fn rebuild_config(&self) -> IndexConfig;
}

impl StoredIndex for twoknn_index::GridIndex {
    fn rebuild_config(&self) -> IndexConfig {
        IndexConfig::Grid {
            cells_per_axis: self.cells_per_axis(),
        }
    }
}

impl StoredIndex for twoknn_index::QuadtreeIndex {
    fn rebuild_config(&self) -> IndexConfig {
        IndexConfig::Quadtree {
            capacity: self.capacity(),
            max_depth: self.max_depth(),
        }
    }
}

impl StoredIndex for twoknn_index::StrRTree {
    fn rebuild_config(&self) -> IndexConfig {
        IndexConfig::RTree {
            leaf_capacity: self.leaf_capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::delta::WriteOp;
    use super::*;
    use twoknn_index::{check_index_invariants, GridIndex};

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed;
                Point::new(
                    i as u64,
                    (h % 1013) as f64 * 0.11,
                    ((h / 1013) % 1013) as f64 * 0.11,
                )
            })
            .collect()
    }

    fn snapshot_with_config(ops: &[WriteOp], overlay: OverlayConfig) -> ShardSnapshot {
        let base: BaseIndex = Arc::new(GridIndex::build(scattered(300, 7), 6).unwrap());
        let clean = ShardSnapshot::clean(base, 0, overlay);
        let mut delta = clean.delta().clone();
        for op in ops {
            delta.apply(op, |id| clean.base_ids().get().contains_key(&id));
        }
        clean.with_delta(delta, 1)
    }

    fn snapshot_with(ops: &[WriteOp]) -> ShardSnapshot {
        snapshot_with_config(ops, OverlayConfig::default())
    }

    #[test]
    fn clean_snapshot_mirrors_its_base() {
        let snap = snapshot_with(&[]);
        assert_eq!(snap.num_points(), 300);
        assert_eq!(snap.num_blocks(), 36);
        check_index_invariants(&snap).unwrap();
        assert_eq!(snap.all_points().len(), 300);
    }

    #[test]
    fn overlay_upholds_index_invariants() {
        let snap = snapshot_with(&[
            WriteOp::Upsert(Point::new(1_000, 5.0, 5.0)),
            WriteOp::Upsert(Point::new(1_001, 200.0, 200.0)),
            WriteOp::Remove(10),
            WriteOp::Remove(20),
            WriteOp::Upsert(Point::new(30, 1.0, 1.0)), // moves a base point
        ]);
        assert_eq!(snap.num_points(), 300 + 3 - 3);
        assert_eq!(
            snap.num_blocks(),
            37,
            "a 3-insert delta fits one overlay cell"
        );
        assert_eq!(snap.overlay_block_count(), 1);
        snap.check_overlay_invariants().unwrap();
        assert!(snap.contains_id(1_000));
        assert!(!snap.contains_id(10));
        assert!(snap.contains_id(30));
    }

    #[test]
    fn write_bursts_partition_into_tight_overlay_blocks() {
        // A clustered burst big enough to outgrow one cell: the overlay must
        // split into multiple blocks whose MBRs hug the points, so MINDIST
        // pruning keeps working for queries away from the burst.
        let burst: Vec<WriteOp> = (0..400u64)
            .map(|i| {
                WriteOp::Upsert(Point::new(
                    5_000 + i,
                    60.0 + (i % 20) as f64 * 0.11,
                    60.0 + (i / 20) as f64 * 0.13,
                ))
            })
            .collect();
        let snap = snapshot_with(&burst);
        assert!(
            snap.overlay_block_count() > 1,
            "a 400-insert burst must partition, got {} overlay blocks",
            snap.overlay_block_count()
        );
        snap.check_overlay_invariants().unwrap();
        let base_blocks = snap.num_blocks() - snap.overlay_block_count();
        for meta in &snap.blocks()[base_blocks..] {
            assert!(
                meta.mbr.width() <= 2.2 && meta.mbr.height() <= 2.6,
                "overlay block {} MBR {} must stay tight around its cell",
                meta.id,
                meta.mbr
            );
        }
        // The same ops under a fanout cap of 1 reproduce the single giant
        // block (the ablation baseline) — equal contents, no partitioning.
        let single = snapshot_with_config(
            &burst,
            OverlayConfig {
                max_cells_per_axis: 1,
                ..OverlayConfig::default()
            },
        );
        assert_eq!(single.overlay_block_count(), 1);
        single.check_overlay_invariants().unwrap();
        assert_eq!(single.num_points(), snap.num_points());
    }

    #[test]
    fn profile_is_memoized_per_snapshot() {
        let snap = snapshot_with(&[WriteOp::Upsert(Point::new(900, 9.0, 9.0))]);
        let first = snap.profile();
        assert_eq!(first.num_points, 301);
        assert_eq!(first, snap.profile(), "repeat calls hit the memo");
        assert_eq!(
            first,
            crate::plan::RelationProfile::compute(&snap),
            "the memo equals a fresh computation"
        );
    }

    #[test]
    fn removed_points_disappear_from_block_scans() {
        let snap = snapshot_with(&[WriteOp::Remove(10)]);
        assert!(snap.all_points().iter().all(|p| p.id != 10));
        assert_eq!(snap.num_points(), 299);
        check_index_invariants(&snap).unwrap();
    }

    #[test]
    fn locate_prefers_the_overlay_block_for_inserted_points() {
        let inserted = Point::new(9_999, 3.0, 4.0);
        let snap = snapshot_with(&[WriteOp::Upsert(inserted)]);
        let at = snap.locate(&inserted).unwrap();
        assert_eq!(at as usize, snap.num_blocks() - 1);
        assert!(snap.block_points(at).iter().any(|p| p.id == 9_999));
        // Points outside base bounds but inside the overlay are locatable.
        let outside = Point::new(10_000, -50.0, -50.0);
        let snap = snapshot_with(&[WriteOp::Upsert(outside)]);
        assert!(snap.bounds().contains(&outside));
        let at = snap.locate(&outside).unwrap();
        assert!(snap.block_points(at).iter().any(|p| p.id == 10_000));
    }

    #[test]
    fn moved_point_is_visible_only_at_its_new_position() {
        let snap = snapshot_with(&[WriteOp::Upsert(Point::new(10, 77.7, 88.8))]);
        let stored: Vec<Point> = snap
            .all_points()
            .into_iter()
            .filter(|p| p.id == 10)
            .collect();
        assert_eq!(stored.len(), 1);
        assert_eq!((stored[0].x, stored[0].y), (77.7, 88.8));
        check_index_invariants(&snap).unwrap();
    }

    #[test]
    fn index_config_rebuilds_each_family() {
        let pts = scattered(120, 3);
        let hint = Rect::bounding(&pts).unwrap();
        for config in [
            IndexConfig::Grid { cells_per_axis: 5 },
            IndexConfig::Quadtree {
                capacity: 16,
                max_depth: twoknn_index::DEFAULT_MAX_DEPTH,
            },
            IndexConfig::RTree { leaf_capacity: 16 },
        ] {
            let base = config.build(pts.clone(), hint);
            assert_eq!(base.num_points(), 120);
            check_index_invariants(base.as_ref()).unwrap();
        }
        // The empty corner case keeps the hint bounds.
        for config in [
            IndexConfig::Grid { cells_per_axis: 4 },
            IndexConfig::Quadtree {
                capacity: 8,
                max_depth: twoknn_index::DEFAULT_MAX_DEPTH,
            },
            IndexConfig::RTree { leaf_capacity: 8 },
        ] {
            let base = config.build(Vec::new(), hint);
            assert_eq!(base.num_points(), 0);
            assert!(base.bounds().contains_rect(&hint));
        }
    }

    #[test]
    fn stored_index_reports_its_own_config() {
        let pts = scattered(80, 9);
        let grid = GridIndex::build(pts.clone(), 7).unwrap();
        assert_eq!(
            grid.rebuild_config(),
            IndexConfig::Grid { cells_per_axis: 7 }
        );
        let quad = twoknn_index::QuadtreeIndex::build(pts.clone(), 12).unwrap();
        assert_eq!(
            quad.rebuild_config(),
            IndexConfig::Quadtree {
                capacity: 12,
                max_depth: twoknn_index::DEFAULT_MAX_DEPTH,
            }
        );
        let rtree = twoknn_index::StrRTree::build(pts, 9).unwrap();
        assert_eq!(
            rtree.rebuild_config(),
            IndexConfig::RTree { leaf_capacity: 9 }
        );
    }
}
