//! Immutable on-disk shard block files.
//!
//! A block file is the durable image of one shard's compacted base index:
//! the same blocks-with-MBRs structure [`SpatialIndex`] exposes in memory,
//! serialized column-wise. [`super::compact`] writes one after every shard
//! rebuild (and registration writes the initial ones); recovery opens them
//! with [`BlockFileIndex::open`] and uses the file *itself* as the shard's
//! base — no rebuild needed to serve queries after a restart.
//!
//! Layout (all integers little-endian, coordinates as `f64::to_bits`):
//!
//! ```text
//! [magic "TKBF"][version u32]
//! [num_blocks u32][num_points u64][bounds 4×f64]          ─┐ header
//! per block: [mbr 4×f64][count u32][offset u64][crc u32]  ─┘ directory
//! [header crc u32]   — over header + directory
//! per block: [ids count×u64][xs count×f64][ys count×f64]    payloads
//! ```
//!
//! The directory carries everything the kNN drivers read on the hot path
//! (block MBRs and counts), so opening a file decodes **no** point data:
//! every per-block CRC is verified up front against the retained buffer —
//! corruption surfaces as a [`RecoveryError`] at open, never mid-query —
//! but the three point columns of a block are decoded lazily on first
//! [`BlockFileIndex::block_points`] call. A MINDIST-pruned block is never
//! decoded at all.
//!
//! Block files are immutable: a rebuild writes a new generation
//! (`shard-<s>-<gen>.blk`) via a temp file + rename, the manifest flips to
//! it, and the old generation is deleted. A crash between those steps
//! leaves the previous generation referenced and intact.

use std::io::Write;
use std::path::Path;
use std::sync::OnceLock;

use twoknn_geometry::{Point, Rect};
use twoknn_index::{BlockId, BlockMeta, BlockPoints, PointBlock, SpatialIndex};

use super::recover::RecoveryError;
use super::wal::crc32;

const MAGIC: &[u8; 4] = b"TKBF";
const FORMAT_VERSION: u32 = 1;
/// magic + version + num_blocks + num_points + bounds.
const HEADER_BYTES: usize = 4 + 4 + 4 + 8 + 32;
/// mbr + count + offset + crc.
const DIR_ENTRY_BYTES: usize = 32 + 4 + 8 + 4;

fn push_rect(buf: &mut Vec<u8>, r: &Rect) {
    for v in [r.min_x, r.min_y, r.max_x, r.max_y] {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

fn read_rect(buf: &[u8], at: usize) -> Rect {
    Rect::new(
        f64::from_bits(read_u64(buf, at)),
        f64::from_bits(read_u64(buf, at + 8)),
        f64::from_bits(read_u64(buf, at + 16)),
        f64::from_bits(read_u64(buf, at + 24)),
    )
}

/// Serializes `index` into the block-file format.
pub(crate) fn encode_block_file(index: &dyn SpatialIndex) -> Vec<u8> {
    let blocks = index.blocks();
    let dir_end = HEADER_BYTES + blocks.len() * DIR_ENTRY_BYTES;
    let mut payloads: Vec<u8> = Vec::new();
    let mut directory: Vec<(u64, u32)> = Vec::with_capacity(blocks.len()); // (offset, crc)
    for b in blocks {
        let pts = index.block_points(b.id);
        let mut payload = Vec::with_capacity(pts.len() * 24);
        for id in pts.ids() {
            payload.extend_from_slice(&id.to_le_bytes());
        }
        for x in pts.xs() {
            payload.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        for y in pts.ys() {
            payload.extend_from_slice(&y.to_bits().to_le_bytes());
        }
        // +4 below the directory: the header crc sits between them.
        let offset = (dir_end + 4 + payloads.len()) as u64;
        directory.push((offset, crc32(&payload)));
        payloads.extend_from_slice(&payload);
    }

    let mut out = Vec::with_capacity(dir_end + 4 + payloads.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    out.extend_from_slice(&(index.num_points() as u64).to_le_bytes());
    push_rect(&mut out, &index.bounds());
    for (b, (offset, crc)) in blocks.iter().zip(&directory) {
        push_rect(&mut out, &b.mbr);
        out.extend_from_slice(&(b.count as u32).to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&crc.to_le_bytes());
    }
    let header_crc = crc32(&out[8..dir_end]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(&payloads);
    out
}

/// Writes `index` as an immutable block file at `path` (temp file + rename,
/// synced before the rename so the name never points at a partial file).
/// Returns the number of bytes written.
pub(crate) fn write_block_file(path: &Path, index: &dyn SpatialIndex) -> std::io::Result<u64> {
    let bytes = encode_block_file(index);
    let tmp = path.with_extension("blk.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(bytes.len() as u64)
}

/// A shard base index served directly from an opened block file.
///
/// Construction verifies every checksum in the file (header, directory and
/// all block payloads) against a retained in-memory buffer, so queries can
/// never hit corruption; the per-block point *columns*, however, are only
/// decoded on first access. Query plans read block MBRs/counts from the
/// directory and MINDIST-pruned blocks stay raw bytes forever.
///
/// A recovered relation uses `BlockFileIndex` only as its cold-start base:
/// the first compaction of a shard folds it into a freshly built index of
/// the relation's configured family.
#[derive(Debug)]
pub struct BlockFileIndex {
    buf: Vec<u8>,
    metas: Vec<BlockMeta>,
    /// Absolute payload offset of each block within `buf`.
    offsets: Vec<u64>,
    decoded: Vec<OnceLock<PointBlock>>,
    bounds: Rect,
    num_points: usize,
}

impl BlockFileIndex {
    /// Opens and fully verifies the block file at `path`.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Io`] when the file cannot be read and
    /// [`RecoveryError::Corrupt`] when any structural check or checksum
    /// fails — corruption is reported, never panicked on.
    pub fn open(path: &Path) -> Result<Self, RecoveryError> {
        let buf = std::fs::read(path).map_err(|source| RecoveryError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Self::decode(buf).map_err(|detail| RecoveryError::Corrupt {
            path: path.to_path_buf(),
            detail,
        })
    }

    fn decode(buf: Vec<u8>) -> Result<Self, String> {
        if buf.len() < HEADER_BYTES + 4 {
            return Err(format!("{} bytes is too short for a header", buf.len()));
        }
        if &buf[0..4] != MAGIC {
            return Err("bad magic (not a block file)".into());
        }
        let version = read_u32(&buf, 4);
        if version != FORMAT_VERSION {
            return Err(format!("unsupported format version {version}"));
        }
        let num_blocks = read_u32(&buf, 8) as usize;
        let num_points = read_u64(&buf, 12) as usize;
        let bounds = read_rect(&buf, 20);
        let dir_end = HEADER_BYTES + num_blocks * DIR_ENTRY_BYTES;
        if buf.len() < dir_end + 4 {
            return Err(format!(
                "directory of {num_blocks} blocks exceeds the {}-byte file",
                buf.len()
            ));
        }
        if crc32(&buf[8..dir_end]) != read_u32(&buf, dir_end) {
            return Err("header/directory checksum mismatch".into());
        }
        let mut metas = Vec::with_capacity(num_blocks);
        let mut offsets = Vec::with_capacity(num_blocks);
        let mut total = 0usize;
        for b in 0..num_blocks {
            let at = HEADER_BYTES + b * DIR_ENTRY_BYTES;
            let mbr = read_rect(&buf, at);
            let count = read_u32(&buf, at + 32) as usize;
            let offset = read_u64(&buf, at + 36) as usize;
            let crc = read_u32(&buf, at + 44);
            let len = count * 24;
            let payload = buf
                .get(offset..offset + len)
                .ok_or_else(|| format!("block {b} payload out of file bounds"))?;
            if crc32(payload) != crc {
                return Err(format!("block {b} payload checksum mismatch"));
            }
            metas.push(BlockMeta::new(b as BlockId, mbr, count));
            offsets.push(offset as u64);
            total += count;
        }
        if total != num_points {
            return Err(format!(
                "directory counts sum to {total}, header claims {num_points} points"
            ));
        }
        let decoded = (0..num_blocks).map(|_| OnceLock::new()).collect();
        Ok(Self {
            buf,
            metas,
            offsets,
            decoded,
            bounds,
            num_points,
        })
    }

    /// Decodes block `id`'s columns from the retained buffer (checksummed at
    /// open, so this cannot fail).
    fn block(&self, id: BlockId) -> &PointBlock {
        self.decoded[id as usize].get_or_init(|| {
            let count = self.metas[id as usize].count;
            let at = self.offsets[id as usize] as usize;
            let mut block = PointBlock::with_capacity(count);
            for i in 0..count {
                block.push(Point::new(
                    read_u64(&self.buf, at + i * 8),
                    f64::from_bits(read_u64(&self.buf, at + (count + i) * 8)),
                    f64::from_bits(read_u64(&self.buf, at + (2 * count + i) * 8)),
                ));
            }
            block
        })
    }

    /// Number of blocks whose point columns have been decoded so far —
    /// observability for the lazy-loading tests and the ablation bench.
    pub fn blocks_decoded(&self) -> usize {
        self.decoded.iter().filter(|c| c.get().is_some()).count()
    }
}

impl SpatialIndex for BlockFileIndex {
    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn num_points(&self) -> usize {
        self.num_points
    }

    fn blocks(&self) -> &[BlockMeta] {
        &self.metas
    }

    fn block_points(&self, id: BlockId) -> BlockPoints<'_> {
        self.block(id).view()
    }

    fn locate(&self, p: &Point) -> Option<BlockId> {
        // Prefer a containing block that actually stores a point at these
        // coordinates (footprints may overlap if the source was an R-tree);
        // fall back to the first containing footprint.
        let mut fallback = None;
        for m in &self.metas {
            if m.mbr.contains(p) {
                fallback.get_or_insert(m.id);
                let pts = self.block_points(m.id);
                for i in 0..pts.len() {
                    let q = pts.get(i);
                    if q.x == p.x && q.y == p.y {
                        return Some(m.id);
                    }
                }
            }
        }
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use twoknn_index::{check_index_invariants, GridIndex};

    fn tmpfile(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "twoknn-blockfile-{}-{tag}-{}.blk",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_index(n: u64) -> GridIndex {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Point::new(i, (h % 977) as f64 * 0.11, ((h / 977) % 977) as f64 * 0.11)
            })
            .collect();
        GridIndex::build(pts, 6).unwrap()
    }

    #[test]
    fn roundtrip_preserves_blocks_points_and_bounds() {
        let src = sample_index(500);
        let path = tmpfile("roundtrip");
        let bytes = write_block_file(&path, &src).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());

        let opened = BlockFileIndex::open(&path).unwrap();
        assert_eq!(opened.num_points(), src.num_points());
        assert_eq!(opened.num_blocks(), src.num_blocks());
        assert_eq!(opened.bounds(), src.bounds());
        for (a, b) in opened.blocks().iter().zip(src.blocks()) {
            assert_eq!((a.id, a.mbr, a.count), (b.id, b.mbr, b.count));
        }
        check_index_invariants(&opened).unwrap();
        let mut got = opened.all_points();
        let mut want = src.all_points();
        got.sort_by_key(|p| p.id);
        want.sort_by_key(|p| p.id);
        assert_eq!(got, want);
        // locate agrees on every stored point.
        for p in want.iter().take(50) {
            let id = opened.locate(p).expect("stored point locates");
            assert!(opened.blocks()[id as usize].mbr.contains(p));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn columns_decode_lazily() {
        let src = sample_index(800);
        let path = tmpfile("lazy");
        write_block_file(&path, &src).unwrap();
        let opened = BlockFileIndex::open(&path).unwrap();
        assert_eq!(opened.blocks_decoded(), 0, "open decodes no point data");
        // Directory-only work (MINDIST ordering) decodes nothing.
        let origin = Point::anonymous(0.0, 0.0);
        let _ = opened.mindist_order(&origin).next();
        assert_eq!(opened.blocks_decoded(), 0);
        let first_nonempty = opened.blocks().iter().find(|b| !b.is_empty()).unwrap().id;
        assert!(!opened.block_points(first_nonempty).is_empty());
        assert_eq!(opened.blocks_decoded(), 1, "only the touched block decodes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_detected_at_open_not_panicked_on() {
        let src = sample_index(300);
        let path = tmpfile("corrupt");
        write_block_file(&path, &src).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Flip one byte in the last block payload.
        let n = bytes.len();
        bytes[n - 5] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match BlockFileIndex::open(&path) {
            Err(RecoveryError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "unexpected detail: {detail}")
            }
            other => panic!("payload corruption must surface as Corrupt, got {other:?}"),
        }

        // Flip a directory byte (an MBR bound): the header checksum catches it.
        bytes[n - 5] ^= 0x10;
        bytes[HEADER_BYTES + 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            BlockFileIndex::open(&path),
            Err(RecoveryError::Corrupt { .. })
        ));

        // Truncation and a foreign file are also reported, not panicked on.
        std::fs::write(&path, &bytes[..HEADER_BYTES / 2]).unwrap();
        assert!(matches!(
            BlockFileIndex::open(&path),
            Err(RecoveryError::Corrupt { .. })
        ));
        assert!(BlockFileIndex::open(&path.with_extension("missing")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_sparse_indexes_roundtrip() {
        let src =
            GridIndex::build_with_bounds(Vec::new(), Rect::new(0.0, 0.0, 10.0, 10.0), 3).unwrap();
        let path = tmpfile("empty");
        write_block_file(&path, &src).unwrap();
        let opened = BlockFileIndex::open(&path).unwrap();
        assert_eq!(opened.num_points(), 0);
        assert_eq!(opened.num_blocks(), src.num_blocks());
        check_index_invariants(&opened).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
