//! The versioned relation store: snapshot reads, delta ingest, and
//! background index rebuilds.
//!
//! The paper's motivating workload is location-based services over *moving*
//! objects, but a [`SpatialIndex`] is immutable once built. This module adds
//! the storage layer that reconciles the two without ever blocking readers
//! on writers:
//!
//! * [`ShardSnapshot`] — an immutable version of one spatial shard: a base
//!   index plus a sorted insert/delete [`Delta`] overlay, materialized as
//!   extra/filtered blocks so the whole shard *is* a [`SpatialIndex`].
//!   Inserts are bucketed by position into a bounded **overlay grid**
//!   ([`OverlayConfig`]) of copy-on-write cells, one tight-MBR overlay
//!   block per occupied cell, so per-block MINDIST pruning keeps working
//!   during write bursts instead of collapsing against one giant overlay
//!   block. Overlay cells and tombstone-filtered base blocks are
//!   materialized as SoA [`PointBlock`](twoknn_index::PointBlock) columns —
//!   the same layout the indexes use — so snapshot reads go through the
//!   batched block-scan kernels unchanged;
//! * [`RelationSnapshot`] — the composed, immutable view of a whole
//!   relation: the shard snapshots' blocks concatenated, plus one
//!   [`PartitionMeta`](twoknn_index::PartitionMeta) per shard (tight MBR +
//!   contiguous block range) so kNN runs scatter-gather over shards in
//!   MINDIST order. A relation sharded `1×1` composes to exactly the old
//!   unsharded snapshot — the ablation baseline;
//! * [`VersionedRelation`] — a [`ShardMap`](self) routing points to
//!   independently versioned shards, each with its own writer lock, write
//!   log, and compaction slot, behind one `Arc`-swapped composed snapshot;
//! * [`compact`](self) (internal) — **per-shard** background rebuilds
//!   scheduled on the shared [`WorkerPool`] when a shard's delta outgrows
//!   [`StoreConfig::compaction_threshold`], with the gather phase sharded
//!   over block ranges. A hot shard rebuilding never blocks ingest into the
//!   others;
//! * [`RelationStore`] — the named catalog of versioned relations behind
//!   [`Database`](crate::plan::Database), and [`DbSnapshot`] — a pinned,
//!   consistent view of *every* relation that a query (or a whole
//!   `execute_batch`) resolves names against;
//! * [`wal`](self) / [`blockfile`](self) / [`recover`](self) (internal) —
//!   the optional durability subsystem ([`DurabilityConfig`]): ingest
//!   batches are write-ahead-logged as checksummed records *before* they
//!   publish, compacted shard bases are spilled as immutable on-disk block
//!   files ([`BlockFileIndex`]), and [`RelationStore::open`] rebuilds the
//!   catalog after a crash by loading the block files and replaying each
//!   WAL's intact suffix. Disabled by default — the in-memory store pays
//!   nothing for the feature it isn't using.
//!
//! ```text
//!    writers                           readers
//!    ───────                           ───────
//!    insert/remove/update              execute / execute_batch
//!          │ route by ShardMap               │
//!          ▼                                 ▼ pin (Arc clone)
//!    ┌ shard 0 writer ┐──► shard 0   ┌─────────────────────────────┐
//!    │ delta + log    │   snapshot ─►│ current: Arc<RelationSnap.> │
//!    └────────────────┘              │  blocks ++ PartitionMeta[]  │
//!    ┌ shard 1 writer ┐──► shard 1 ─►└─────────────────────────────┘
//!    │ delta + log    │   snapshot      ▲ recompose = atomic swap
//!    └──────┬─────────┘                 │ publish (replay shard log tail)
//!           │ shard delta ≥ threshold   │
//!           ▼                           │
//!    WorkerPool::spawn ──► gather shard ──► rebuild shard base
//! ```

mod blockfile;
mod compact;
mod delta;
mod overlay;
mod recover;
mod shard;
mod snapshot;
mod version;
mod wal;

pub use blockfile::BlockFileIndex;
pub use delta::{Delta, WriteOp};
pub use overlay::OverlayConfig;
pub use recover::RecoveryError;
pub use shard::{RelationSnapshot, ShardConfig};
pub use snapshot::{BaseIndex, IndexConfig, ShardSnapshot, StoredIndex};
pub use version::VersionedRelation;
pub use wal::SyncPolicy;

// Re-exported next to the other `StoreConfig` field types.
pub use crate::obs::TraceConfig;

pub(crate) use version::IngestReceipt;

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Instant;

use twoknn_index::{Metrics, SpatialIndex};

use crate::error::QueryError;
use crate::exec::WorkerPool;
use crate::obs::{EventKind, HistogramKind, Observability};

/// Durability mode of the relation store.
///
/// `Disabled` (the default) keeps the store fully in-memory — the zero-cost
/// ablation baseline: no WAL handle exists, ingest takes no extra branches
/// beyond one `Option` check under the writer lock, and no files are
/// touched. `Enabled` gives every relation a directory under `dir` holding
/// a segmented write-ahead log ([`wal`](self)) plus one immutable block
/// file per shard ([`BlockFileIndex`]); [`RelationStore::open`] (or
/// [`Database::open`](crate::plan::Database::open)) rebuilds the catalog
/// from those files after a crash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum DurabilityConfig {
    /// In-memory only: nothing is written, nothing can be recovered.
    #[default]
    Disabled,
    /// Durable under `dir`: WAL per relation, block file per shard.
    Enabled {
        /// Root directory of the durable store (one subdirectory per
        /// relation is created beneath it).
        dir: PathBuf,
        /// When WAL appends reach stable storage ([`SyncPolicy`]).
        sync: SyncPolicy,
        /// WAL segment roll size in bytes.
        segment_bytes: u64,
    },
}

impl DurabilityConfig {
    /// Default WAL segment roll size (1 MiB).
    pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

    /// Durability rooted at `dir` with the strongest sync policy
    /// ([`SyncPolicy::EveryBatch`]) and the default segment size.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig::Enabled {
            dir: dir.into(),
            sync: SyncPolicy::EveryBatch,
            segment_bytes: Self::DEFAULT_SEGMENT_BYTES,
        }
    }

    /// This configuration with a different [`SyncPolicy`]. No-op on
    /// `Disabled`.
    pub fn with_sync(self, policy: SyncPolicy) -> Self {
        match self {
            DurabilityConfig::Disabled => DurabilityConfig::Disabled,
            DurabilityConfig::Enabled {
                dir, segment_bytes, ..
            } => DurabilityConfig::Enabled {
                dir,
                sync: policy,
                segment_bytes,
            },
        }
    }

    /// This configuration re-rooted at `dir` (enabling it if disabled,
    /// keeping any sync/segment settings) — how
    /// [`Database::open`](crate::plan::Database::open) forces the config to
    /// match the directory it recovers from.
    pub(crate) fn with_dir(self, dir: impl Into<PathBuf>) -> Self {
        match self {
            DurabilityConfig::Disabled => DurabilityConfig::at(dir),
            DurabilityConfig::Enabled {
                sync,
                segment_bytes,
                ..
            } => DurabilityConfig::Enabled {
                dir: dir.into(),
                sync,
                segment_bytes,
            },
        }
    }

    /// Whether durability is on.
    pub fn is_enabled(&self) -> bool {
        matches!(self, DurabilityConfig::Enabled { .. })
    }
}

/// Tuning knobs of the relation store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Delta size (inserts + deletes) at which ingest schedules a background
    /// rebuild of **that shard's** base index. With the default single-shard
    /// layout this is the relation's delta size, as before.
    pub compaction_threshold: usize,
    /// Sizing of the partitioned delta overlay (cell occupancy target and
    /// fanout cap). The default keeps overlay cells around 32 points with at
    /// most 32×32 cells; `max_cells_per_axis: 1` reproduces the old
    /// single-block overlay for ablations.
    pub overlay: OverlayConfig,
    /// Spatial sharding of each relation ([`ShardConfig`]): relations are
    /// split into `shards_per_axis²` independently versioned shards, each
    /// with its own delta, writer lock, and background compaction. The
    /// default (`1`) keeps every relation a single shard — the unsharded
    /// ablation baseline.
    pub sharding: ShardConfig,
    /// Durability mode ([`DurabilityConfig`]): `Disabled` (the default)
    /// keeps the store fully in-memory; `Enabled` write-ahead-logs every
    /// ingest batch and persists compacted shard bases as immutable block
    /// files, making the store recoverable via [`RelationStore::open`].
    pub durability: DurabilityConfig,
    /// Per-operator execution tracing ([`TraceConfig`]): off by default.
    /// The latency-histogram registry and lifecycle event ring are always
    /// on; this knob only controls whether executed queries retain
    /// [`QueryTrace`](crate::obs::QueryTrace)s.
    pub trace: TraceConfig,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            compaction_threshold: 512,
            overlay: OverlayConfig::default(),
            sharding: ShardConfig::default(),
            durability: DurabilityConfig::Disabled,
            trace: TraceConfig::default(),
        }
    }
}

/// A named catalog of [`VersionedRelation`]s.
///
/// All read paths pin snapshots; catalog mutation (`register` /
/// `deregister`) and ingest go through interior locks, so the store is
/// shared by reference across reader and writer threads.
pub struct RelationStore {
    relations: RwLock<HashMap<String, Arc<VersionedRelation>>>,
    config: StoreConfig,
    /// Store-level work counters: ingest ops applied, compactions published,
    /// rebuild scan work. Merged views are returned by
    /// [`RelationStore::metrics`].
    metrics: Arc<Mutex<Metrics>>,
    /// The observability hub: latency histograms, lifecycle events, and
    /// retained query traces, shared with the `Database` and cq engine.
    obs: Arc<Observability>,
}

impl Default for RelationStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl RelationStore {
    /// An empty store with the given tuning knobs. With durability enabled
    /// this creates the root directory but recovers nothing — use
    /// [`RelationStore::open`] to rebuild a catalog from a previous run.
    pub fn new(config: StoreConfig) -> Self {
        if let DurabilityConfig::Enabled { dir, .. } = &config.durability {
            let _ = std::fs::create_dir_all(dir);
        }
        let obs = Arc::new(Observability::new(config.trace));
        Self {
            relations: RwLock::new(HashMap::new()),
            config,
            metrics: Arc::new(Mutex::new(Metrics::default())),
            obs,
        }
    }

    /// Opens a durable store rooted at the configured directory, rebuilding
    /// the relation catalog from the persisted block files and replaying
    /// each relation's WAL suffix (see [`recover`](self)). With durability
    /// disabled this is just [`RelationStore::new`].
    pub fn open(config: StoreConfig) -> Result<Self, RecoveryError> {
        let DurabilityConfig::Enabled {
            dir,
            sync,
            segment_bytes,
        } = &config.durability
        else {
            return Ok(Self::new(config));
        };
        let metrics = Arc::new(Mutex::new(Metrics::default()));
        let obs = Arc::new(Observability::new(config.trace));
        let start = Instant::now();
        let relations =
            recover::recover_relations(dir, *sync, *segment_bytes, &config, &metrics, &obs)?;
        obs.record(HistogramKind::Recovery, start.elapsed());
        obs.event(
            EventKind::Recovery,
            format!(
                "{} relation(s) recovered from {}",
                relations.len(),
                dir.display()
            ),
        );
        Ok(Self {
            relations: RwLock::new(relations),
            config,
            metrics,
            obs,
        })
    }

    /// The store's tuning knobs.
    pub fn config(&self) -> StoreConfig {
        self.config.clone()
    }

    /// Registers (or replaces) a relation. Returns the replaced relation's
    /// last published snapshot, if any.
    ///
    /// With durability enabled, registration wipes any previous on-disk
    /// state of the same name, starts a fresh WAL, and persists every
    /// shard's initial base as a block file before the relation is
    /// published into the catalog — a crash at any later point recovers at
    /// least the registration-time contents.
    pub fn register(
        &self,
        name: impl Into<String>,
        base: BaseIndex,
        config: IndexConfig,
    ) -> Option<Arc<RelationSnapshot>> {
        let name = name.into();
        let durability = match &self.config.durability {
            DurabilityConfig::Disabled => None,
            DurabilityConfig::Enabled {
                dir,
                sync,
                segment_bytes,
            } => Some(Arc::new(
                recover::RelationDurability::create(
                    dir,
                    &name,
                    config,
                    self.config.sharding.shards_per_axis,
                    base.bounds(),
                    *sync,
                    *segment_bytes,
                    Arc::clone(&self.metrics),
                    Arc::clone(&self.obs),
                )
                .expect("failed to initialise the relation's durable directory"),
            )),
        };
        let relation = Arc::new(VersionedRelation::new(
            name.clone(),
            base,
            config,
            self.config.compaction_threshold,
            self.config.overlay,
            self.config.sharding,
            durability,
        ));
        relation
            .persist_initial()
            .expect("failed to persist the relation's initial shard bases");
        self.relations
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name, relation)
            .map(|replaced| replaced.load())
    }

    /// Removes a relation from the catalog. Returns its last published
    /// snapshot, if the relation existed. Queries that already pinned a
    /// [`DbSnapshot`] keep their view; an in-flight compaction finishes
    /// against the detached relation and is dropped with it. With
    /// durability enabled the relation's on-disk directory is deleted
    /// (best-effort) — deregistration is as durable as registration.
    pub fn deregister(&self, name: &str) -> Option<Arc<RelationSnapshot>> {
        self.relations
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name)
            .map(|removed| {
                if let Some(d) = removed.durability() {
                    d.wipe();
                }
                removed.load()
            })
    }

    /// The versioned relation registered under `name`.
    pub fn get(&self, name: &str) -> Result<Arc<VersionedRelation>, QueryError> {
        self.relations
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
            .ok_or_else(|| QueryError::UnknownRelation {
                name: name.to_string(),
            })
    }

    /// The registered relation names, **sorted** — catalog iteration order is
    /// deterministic regardless of hash-map internals.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .relations
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// Pins the current snapshot of **every** relation into one frozen
    /// catalog view.
    ///
    /// Each relation is pinned at exactly one published version (no torn
    /// per-relation reads, and the view never moves once pinned). Across
    /// *different* relations the guarantee is freshness, not simultaneity:
    /// relations publish independently, so a pin racing a writer that
    /// updates B then A may capture new-B with old-A. Per-relation
    /// versioning has no global commit point; workloads needing
    /// cross-relation atomicity must serialize their writes externally.
    pub fn pin(&self) -> DbSnapshot {
        let relations = self
            .relations
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        DbSnapshot {
            relations: relations
                .iter()
                .map(|(name, rel)| (name.clone(), rel.load()))
                .collect(),
        }
    }

    /// Applies a batch of write operations to `name` as one atomic
    /// visibility step, scheduling a background compaction on `pool` when
    /// the delta outgrows the threshold. Returns `(effective ops, new
    /// version)`.
    pub fn ingest(
        &self,
        name: &str,
        ops: &[WriteOp],
        pool: &Arc<WorkerPool>,
    ) -> Result<(usize, u64), QueryError> {
        let receipt = self.ingest_with_receipt(name, ops, pool)?;
        Ok((receipt.effective, receipt.version))
    }

    /// [`RelationStore::ingest`], additionally reporting — race-free under
    /// the relation's writer lock — the full [`IngestReceipt`]: per-op
    /// visibility/effectiveness and the pre/post snapshots the
    /// continuous-query maintainer probes guards with.
    pub(crate) fn ingest_with_receipt(
        &self,
        name: &str,
        ops: &[WriteOp],
        pool: &Arc<WorkerPool>,
    ) -> Result<IngestReceipt, QueryError> {
        let rel = self.get(name)?;
        let start = Instant::now();
        let receipt = rel.ingest_with_receipt(ops);
        self.obs
            .record(HistogramKind::IngestPublish, start.elapsed());
        {
            let mut m = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
            m.ingest_ops += receipt.effective as u64;
        }
        compact::schedule_compaction(&rel, pool, &self.metrics, &self.obs);
        Ok(receipt)
    }

    /// Synchronously compacts `name` on the calling thread (the gather phase
    /// still shards over `pool`): **every** shard with a non-empty delta is
    /// folded, regardless of the background threshold. Returns the last
    /// published version, or `None` when no shard had anything to fold (or
    /// background rebuilds already hold every dirty shard's slot).
    pub fn compact_now(&self, name: &str, pool: &WorkerPool) -> Result<Option<u64>, QueryError> {
        let rel = self.get(name)?;
        Ok(compact::compact_relation(
            &rel,
            pool,
            &self.metrics,
            &self.obs,
        ))
    }

    /// Spills every relation's dirty shards to block files, advances each
    /// clean shard's covered WAL position, rewrites the manifests, and
    /// trims WAL segments made obsolete — after which a reopen replays (at
    /// most) the records appended since this call. No-op with durability
    /// disabled.
    pub fn checkpoint(&self, pool: &WorkerPool) {
        if !self.config.durability.is_enabled() {
            return;
        }
        // Drain in-flight background rebuilds first: a detached job holding
        // a shard's compaction slot would make the synchronous fold below
        // skip that shard, leaving it dirty and its WAL segments untrimmed.
        pool.wait_idle();
        let start = Instant::now();
        let rels: Vec<Arc<VersionedRelation>> = self
            .relations
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .cloned()
            .collect();
        let count = rels.len();
        for rel in rels {
            rel.checkpoint(pool, &self.metrics, &self.obs);
        }
        self.obs.record(HistogramKind::Checkpoint, start.elapsed());
        self.obs.event(
            EventKind::Checkpoint,
            format!("{count} relation(s) checkpointed"),
        );
        let mut m = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        m.checkpoints += 1;
    }

    /// Pins the current snapshot of the named relations only — what a
    /// standing-query re-evaluation needs, without paying for the whole
    /// catalog. Same per-relation (not cross-relation-instant) guarantee as
    /// [`RelationStore::pin`].
    pub(crate) fn pin_many(&self, names: &[&str]) -> Result<DbSnapshot, QueryError> {
        let relations = self
            .relations
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let mut pinned = HashMap::with_capacity(names.len());
        for &name in names {
            let rel = relations
                .get(name)
                .ok_or_else(|| QueryError::UnknownRelation {
                    name: name.to_string(),
                })?;
            pinned.insert(name.to_string(), rel.load());
        }
        Ok(DbSnapshot { relations: pinned })
    }

    /// The shared handle to the store's cumulative counters — the
    /// continuous-query maintainer merges its `cq_reevals` / `cq_skips`
    /// into the same record [`RelationStore::metrics`] reports.
    pub(crate) fn metrics_handle(&self) -> &Arc<Mutex<Metrics>> {
        &self.metrics
    }

    /// A copy of the store's cumulative work counters (`ingest_ops`,
    /// `compactions`, rebuild scan work, continuous-query maintenance).
    pub fn metrics(&self) -> Metrics {
        *self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The store's observability hub: latency histograms, the lifecycle
    /// event ring, and retained query traces. Most callers go through the
    /// [`Database`](crate::plan::Database) surface (`metrics_report`,
    /// `drain_events`, `drain_traces`, `set_tracing`) instead.
    pub fn obs(&self) -> &Arc<Observability> {
        &self.obs
    }
}

impl std::fmt::Debug for RelationStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelationStore")
            .field("names", &self.names())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// A pinned, frozen view of every relation in a [`RelationStore`]:
/// exactly one published version per relation, immutable once pinned.
///
/// Compilation resolves relation names against a `DbSnapshot`, so a query —
/// or a whole [`execute_batch`](crate::plan::Database::execute_batch) —
/// observes exactly one published version of each relation even while
/// ingest and compaction run concurrently. See [`RelationStore::pin`] for
/// the exact cross-relation guarantee (per-relation atomicity, not a
/// global instant).
#[derive(Debug)]
pub struct DbSnapshot {
    relations: HashMap<String, Arc<RelationSnapshot>>,
}

impl DbSnapshot {
    /// Resolves a relation name to its pinned snapshot as a plain
    /// [`SpatialIndex`] for the operators.
    pub fn relation(&self, name: &str) -> Result<&(dyn SpatialIndex + Send + Sync), QueryError> {
        self.snapshot(name)
            .map(|snap| snap.as_ref() as &(dyn SpatialIndex + Send + Sync))
    }

    /// Resolves a relation name to its pinned [`RelationSnapshot`].
    pub fn snapshot(&self, name: &str) -> Result<&Arc<RelationSnapshot>, QueryError> {
        self.relations
            .get(name)
            .ok_or_else(|| QueryError::UnknownRelation {
                name: name.to_string(),
            })
    }

    /// The pinned relation names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// `(name, version)` of every pinned relation, sorted by name.
    pub fn versions(&self) -> Vec<(String, u64)> {
        let mut versions: Vec<(String, u64)> = self
            .relations
            .iter()
            .map(|(name, snap)| (name.clone(), snap.version()))
            .collect();
        versions.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        versions
    }
}

// Snapshots cross thread boundaries in `execute_batch`; keep that a compile
// error rather than a runtime surprise.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RelationStore>();
    assert_send_sync::<DbSnapshot>();
    assert_send_sync::<RelationSnapshot>();
    assert_send_sync::<VersionedRelation>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_geometry::Point;
    use twoknn_index::GridIndex;

    fn base(n: usize, seed: u64) -> BaseIndex {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x2545F4914F6CDD1D) ^ seed;
                Point::new(
                    i as u64,
                    (h % 499) as f64 * 0.2,
                    ((h / 499) % 499) as f64 * 0.2,
                )
            })
            .collect();
        Arc::new(GridIndex::build(pts, 6).unwrap())
    }

    const GRID: IndexConfig = IndexConfig::Grid { cells_per_axis: 6 };

    #[test]
    fn names_are_sorted_regardless_of_insertion_order() {
        let store = RelationStore::default();
        for name in ["zeta", "alpha", "mid", "beta"] {
            store.register(name, base(50, 1), GRID);
        }
        assert_eq!(store.names(), vec!["alpha", "beta", "mid", "zeta"]);
        assert_eq!(store.pin().names(), vec!["alpha", "beta", "mid", "zeta"]);
    }

    #[test]
    fn register_replaces_and_returns_the_old_snapshot() {
        let store = RelationStore::default();
        assert!(store.register("R", base(50, 1), GRID).is_none());
        let replaced = store.register("R", base(80, 2), GRID).unwrap();
        assert_eq!(replaced.num_points(), 50);
        assert_eq!(store.get("R").unwrap().load().num_points(), 80);
    }

    #[test]
    fn deregister_detaches_but_pinned_snapshots_survive() {
        let store = RelationStore::default();
        store.register("R", base(50, 1), GRID);
        let pinned = store.pin();
        let removed = store.deregister("R").unwrap();
        assert_eq!(removed.num_points(), 50);
        assert!(store.get("R").is_err());
        assert!(store.deregister("R").is_none());
        // The pinned view is unaffected by the catalog mutation.
        assert_eq!(pinned.snapshot("R").unwrap().num_points(), 50);
    }

    #[test]
    fn pin_is_a_consistent_catalog_view() {
        let store = RelationStore::default();
        store.register("A", base(50, 1), GRID);
        store.register("B", base(60, 2), GRID);
        let pool = WorkerPool::new(1);
        let pinned = store.pin();
        store.ingest("A", &[WriteOp::Remove(0)], &pool).unwrap();
        assert_eq!(pinned.snapshot("A").unwrap().num_points(), 50);
        assert_eq!(store.pin().snapshot("A").unwrap().num_points(), 49);
        assert_eq!(
            pinned.versions(),
            vec![("A".to_string(), 0), ("B".to_string(), 0)]
        );
        assert!(pinned.relation("missing").is_err());
    }

    #[test]
    fn ingest_counts_and_compacts_through_the_store() {
        let store = RelationStore::new(StoreConfig {
            compaction_threshold: 3,
            ..StoreConfig::default()
        });
        store.register("R", base(100, 3), GRID);
        let pool = WorkerPool::new(1); // inline spawn: deterministic
        let (effective, v) = store
            .ingest(
                "R",
                &[
                    WriteOp::Upsert(Point::new(500, 1.0, 1.0)),
                    WriteOp::Remove(2),
                    WriteOp::Remove(777), // absent
                ],
                &pool,
            )
            .unwrap();
        assert_eq!((effective, v), (2, 1));
        assert_eq!(store.metrics().ingest_ops, 2);
        assert_eq!(store.metrics().compactions, 0, "threshold not reached");
        store.ingest("R", &[WriteOp::Remove(5)], &pool).unwrap();
        // Threshold 3 reached: the 1-thread pool compacted inline.
        assert_eq!(store.metrics().compactions, 1);
        let snap = store.get("R").unwrap().load();
        assert_eq!(snap.delta_len(), 0);
        assert_eq!(snap.num_points(), 99);
        // compact_now with an empty delta is a no-op.
        assert_eq!(store.compact_now("R", &pool).unwrap(), None);
    }
}
