//! Spatial sharding: the composed relation snapshot and the shard routing
//! map.
//!
//! A relation is stored as a set of spatial *shards*. [`ShardMap`] assigns
//! every point to one shard of a bounded, clamped uniform grid over the
//! relation's registration extent (the same clamping idiom as the delta
//! overlay's [`super::overlay::OverlayGrid`]: out-of-bounds points bucket
//! into the edge shards, so the map never needs re-anchoring and routing
//! stays stable for the relation's lifetime). Each shard owns an independent
//! [`ShardSnapshot`] — its own base index, delta overlay, writer log and
//! compaction slot — so a write burst or a background rebuild in one shard
//! never blocks ingest or readers elsewhere.
//!
//! [`RelationSnapshot`] is the immutable *composed* view queries run
//! against: the shard snapshots' blocks concatenated into one dense block-id
//! space, with one [`PartitionMeta`] per shard carrying a tight MBR over the
//! shard's non-empty blocks. Through [`SpatialIndex::partitions`] the kNN
//! driver sees the shard tier and executes scatter-gather: shards are
//! visited in MINDIST order and skipped wholesale once their MINDIST²
//! exceeds the running τ². Joins and Block-Marking inherit the coarse tier
//! for free — every composed block keeps its shard-tight MBR, so block-level
//! MINDIST pruning and the contour test see shard-local footprints instead
//! of one relation-wide decomposition.
//!
//! With `shards_per_axis == 1` (the default, and the ablation baseline) the
//! composed snapshot is a transparent wrapper over a single shard and every
//! query takes the flat single-locality path.

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

use twoknn_geometry::{Point, PointId, Rect};
use twoknn_index::{BlockId, BlockMeta, BlockPoints, PartitionMeta, SpatialIndex};

use crate::plan::stats::RelationProfile;

use super::snapshot::ShardSnapshot;

/// How a relation is spatially sharded.
///
/// `shards_per_axis = n` splits the registration extent into an `n × n`
/// clamped grid of shards that ingest, compact and rebuild independently.
/// The default of `1` keeps the relation in a single shard — the unsharded
/// baseline the `ablation_shard` bench compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Shards along each axis (clamped to ≥ 1 when used).
    pub shards_per_axis: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self { shards_per_axis: 1 }
    }
}

impl ShardConfig {
    /// A sharded configuration with `n × n` shards.
    pub fn per_axis(n: usize) -> Self {
        Self { shards_per_axis: n }
    }
}

/// The routing map from points to shards: a clamped `n × n` uniform grid
/// anchored at the relation's registration bounds.
///
/// Copy-able and immutable — routing never changes after registration, so a
/// point's owning shard is a pure function of its coordinates. Points
/// outside the anchored bounds clamp into the nearest edge shard (whose
/// *partition* MBR grows to cover them, keeping pruning sound).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ShardMap {
    bounds: Rect,
    per_axis: usize,
}

impl ShardMap {
    pub(crate) fn new(bounds: Rect, per_axis: usize) -> Self {
        Self {
            bounds,
            per_axis: per_axis.max(1),
        }
    }

    pub(crate) fn num_shards(&self) -> usize {
        self.per_axis * self.per_axis
    }

    /// The shard `p` routes to. Same clamping as the overlay grid: every
    /// point maps to exactly one shard, including NaN-free out-of-bounds
    /// coordinates.
    pub(crate) fn shard_of(&self, p: &Point) -> usize {
        let n = self.per_axis;
        let cell_w = self.bounds.width() / n as f64;
        let cell_h = self.bounds.height() / n as f64;
        let clamp = |v: isize| v.clamp(0, n as isize - 1) as usize;
        let ix = clamp(((p.x - self.bounds.min_x) / cell_w).floor() as isize);
        let iy = clamp(((p.y - self.bounds.min_y) / cell_h).floor() as isize);
        iy * n + ix
    }

    /// The routing cell of shard `idx` — the bounds hint its base indexes
    /// are built over.
    pub(crate) fn shard_rect(&self, idx: usize) -> Rect {
        let n = self.per_axis;
        let (ix, iy) = (idx % n, idx / n);
        let cell_w = self.bounds.width() / n as f64;
        let cell_h = self.bounds.height() / n as f64;
        Rect::new(
            self.bounds.min_x + ix as f64 * cell_w,
            self.bounds.min_y + iy as f64 * cell_h,
            self.bounds.min_x + (ix + 1) as f64 * cell_w,
            self.bounds.min_y + (iy + 1) as f64 * cell_h,
        )
    }
}

/// An immutable versioned view of a whole relation: every shard's
/// [`ShardSnapshot`] composed into one dense block-id space with a
/// [`PartitionMeta`] shard tier.
///
/// Implements [`SpatialIndex`], so every query algorithm (and
/// [`RelationProfile`]) consumes it exactly like a plain index; the kNN
/// driver additionally sees [`SpatialIndex::partitions`] and runs
/// scatter-gather with MINDIST-ordered shard pruning.
pub struct RelationSnapshot {
    map: ShardMap,
    shards: Vec<Arc<ShardSnapshot>>,
    /// All shards' blocks, re-identified into one dense ascending id space.
    blocks: Vec<BlockMeta>,
    /// One entry per shard: tight MBR + owned block-id range.
    partitions: Vec<PartitionMeta>,
    /// Per shard, the composed id of its first block; one trailing entry
    /// holds the total block count (so `block_base.len() == shards + 1`).
    block_base: Vec<BlockId>,
    bounds: Rect,
    num_points: usize,
    version: u64,
    /// Memoized optimizer statistics — the per-shard state is merged lazily,
    /// at most once per published version.
    profile: OnceLock<RelationProfile>,
}

impl RelationSnapshot {
    /// Composes the current shard snapshots into one immutable relation
    /// view at `version`.
    pub(crate) fn compose(map: ShardMap, shards: Vec<Arc<ShardSnapshot>>, version: u64) -> Self {
        debug_assert_eq!(shards.len(), map.num_shards());
        let total_blocks: usize = shards.iter().map(|s| s.num_blocks()).sum();
        let mut blocks = Vec::with_capacity(total_blocks);
        let mut partitions = Vec::with_capacity(shards.len());
        let mut block_base = Vec::with_capacity(shards.len() + 1);
        let mut bounds: Option<Rect> = None;
        let mut num_points = 0usize;
        for (s, shard) in shards.iter().enumerate() {
            let first = blocks.len() as BlockId;
            block_base.push(first);
            let mut mbr: Option<Rect> = None;
            for b in shard.blocks() {
                blocks.push(BlockMeta::new(blocks.len() as BlockId, b.mbr, b.count));
                if b.count > 0 {
                    mbr = Some(mbr.map_or(b.mbr, |m| m.union(&b.mbr)));
                }
            }
            partitions.push(PartitionMeta::new(
                mbr.unwrap_or_else(|| map.shard_rect(s)),
                first,
                shard.num_blocks() as u32,
                shard.num_points(),
            ));
            num_points += shard.num_points();
            let sb = shard.bounds();
            bounds = Some(bounds.map_or(sb, |b| b.union(&sb)));
        }
        block_base.push(blocks.len() as BlockId);
        Self {
            bounds: bounds.expect("a relation has at least one shard"),
            map,
            shards,
            blocks,
            partitions,
            block_base,
            num_points,
            version,
            profile: OnceLock::new(),
        }
    }

    /// The snapshot's version: strictly increasing across a relation's
    /// publishes (ingest batches and compactions alike).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total number of overlay entries (inserts + deletes) across all
    /// shards' deltas.
    pub fn delta_len(&self) -> usize {
        self.shards.iter().map(|s| s.delta_len()).sum()
    }

    /// The per-shard snapshots this view composes, in shard order.
    pub fn shards(&self) -> &[Arc<ShardSnapshot>] {
        &self.shards
    }

    /// Number of shards (≥ 1; `1` means the relation is unsharded).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    #[cfg(test)]
    pub(crate) fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Whether a point with `id` is visible in this snapshot.
    pub fn contains_id(&self, id: PointId) -> bool {
        self.shards.iter().any(|s| s.contains_id(id))
    }

    /// The visible position of the point with `id`, if any. The
    /// continuous-query maintainer uses this on the pre-ingest snapshot to
    /// recover the *old* position of moved or removed points for guard
    /// probing.
    pub fn position_of(&self, id: PointId) -> Option<Point> {
        self.shards.iter().find_map(|s| s.position_of(id))
    }

    /// Number of overlay blocks (occupied overlay-grid cells) across all
    /// shards.
    pub fn overlay_block_count(&self) -> usize {
        self.shards.iter().map(|s| s.overlay_block_count()).sum()
    }

    /// The memoized optimizer statistics of this snapshot, computed (merged
    /// across shards) on first use and shared by every query planned against
    /// this version.
    pub fn profile(&self) -> RelationProfile {
        *self.profile.get_or_init(|| RelationProfile::compute(self))
    }

    /// All currently visible points. Mostly for tests; the background
    /// rebuild gathers per-shard points block-parallel instead.
    pub fn merged_points(&self) -> Vec<Point> {
        self.all_points()
    }

    /// Checks the shard-tier structural invariants on top of every shard's
    /// [`ShardSnapshot::check_overlay_invariants`]:
    ///
    /// * composed blocks mirror their shard's blocks (dense ascending ids,
    ///   identical MBRs and counts);
    /// * every partition's metadata matches its shard (block range, point
    ///   count) and its MBR contains all of the shard's non-empty blocks;
    /// * every visible point is stored in exactly one shard, and (when
    ///   sharded) in the shard its coordinates route to.
    pub fn check_overlay_invariants(&self) -> Result<(), String> {
        for (s, shard) in self.shards.iter().enumerate() {
            shard
                .check_overlay_invariants()
                .map_err(|e| format!("shard {s}: {e}"))?;
        }
        twoknn_index::check_index_invariants(self)?;
        if self.shards.len() != self.map.num_shards() {
            return Err(format!(
                "snapshot has {} shards, map expects {}",
                self.shards.len(),
                self.map.num_shards()
            ));
        }
        if *self.block_base.last().unwrap() as usize != self.blocks.len() {
            return Err("block_base does not cover the composed block space".into());
        }
        let mut seen: HashSet<PointId> = HashSet::with_capacity(self.num_points);
        for (s, shard) in self.shards.iter().enumerate() {
            let part = self.partitions[s];
            if part.first_block != self.block_base[s]
                || part.num_blocks as usize != shard.num_blocks()
                || part.count != shard.num_points()
            {
                return Err(format!("partition {s} metadata drifted from its shard"));
            }
            for (local, b) in shard.blocks().iter().enumerate() {
                let composed = self.blocks[self.block_base[s] as usize + local];
                if composed.mbr != b.mbr || composed.count != b.count {
                    return Err(format!("composed block of shard {s} block {local} drifted"));
                }
                if b.count > 0 && !part.mbr.contains_rect(&b.mbr) {
                    return Err(format!(
                        "partition {s} MBR {} misses block {local} MBR {}",
                        part.mbr, b.mbr
                    ));
                }
                for p in shard.block_points(b.id) {
                    if !seen.insert(p.id) {
                        return Err(format!("point id {} visible in more than one shard", p.id));
                    }
                    if self.shards.len() > 1 && self.map.shard_of(&p) != s {
                        return Err(format!(
                            "point {p} stored in shard {s} but routes to shard {}",
                            self.map.shard_of(&p)
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The shard owning composed block `id`.
    #[inline]
    fn shard_of_block(&self, id: BlockId) -> usize {
        self.block_base.partition_point(|&b| b <= id) - 1
    }
}

impl SpatialIndex for RelationSnapshot {
    fn bounds(&self) -> Rect {
        self.bounds
    }

    fn num_points(&self) -> usize {
        self.num_points
    }

    fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    fn block_points(&self, id: BlockId) -> BlockPoints<'_> {
        if self.shards.len() == 1 {
            return self.shards[0].block_points(id);
        }
        let s = self.shard_of_block(id);
        self.shards[s].block_points(id - self.block_base[s])
    }

    fn locate(&self, p: &Point) -> Option<BlockId> {
        if self.shards.len() == 1 {
            return self.shards[0].locate(p);
        }
        // Stored points always live in the shard their coordinates route to,
        // so the routed shard's answer is preferred (it upholds the trait's
        // "prefer the storing block" contract). Footprints of neighboring
        // shards can still overlap `p` (tight partition MBRs grow over
        // clamped out-of-bounds points), so fall back to scanning the rest.
        let routed = self.map.shard_of(p);
        if let Some(local) = self.shards[routed].locate(p) {
            return Some(self.block_base[routed] + local);
        }
        self.shards.iter().enumerate().find_map(|(s, shard)| {
            if s == routed {
                return None;
            }
            shard.locate(p).map(|local| self.block_base[s] + local)
        })
    }

    fn partitions(&self) -> Option<&[PartitionMeta]> {
        Some(&self.partitions)
    }
}

impl std::fmt::Debug for RelationSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelationSnapshot")
            .field("version", &self.version)
            .field("num_shards", &self.shards.len())
            .field("num_points", &self.num_points)
            .field("delta_len", &self.delta_len())
            .field("num_blocks", &self.blocks.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::super::overlay::OverlayConfig;
    use super::super::snapshot::{BaseIndex, IndexConfig};
    use super::*;

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed;
                Point::new(
                    i as u64,
                    (h % 1013) as f64 * 0.11,
                    ((h / 1013) % 1013) as f64 * 0.11,
                )
            })
            .collect()
    }

    fn compose_sharded(points: Vec<Point>, per_axis: usize) -> RelationSnapshot {
        let bounds = Rect::bounding(&points).unwrap();
        let map = ShardMap::new(bounds, per_axis);
        let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); map.num_shards()];
        for p in points {
            buckets[map.shard_of(&p)].push(p);
        }
        let config = IndexConfig::Grid { cells_per_axis: 4 };
        let shards: Vec<Arc<ShardSnapshot>> = buckets
            .into_iter()
            .enumerate()
            .map(|(s, pts)| {
                let base: BaseIndex = config.build(pts, map.shard_rect(s));
                Arc::new(ShardSnapshot::clean(base, 0, OverlayConfig::default()))
            })
            .collect();
        RelationSnapshot::compose(map, shards, 0)
    }

    #[test]
    fn shard_map_routes_and_clamps() {
        let map = ShardMap::new(Rect::new(0.0, 0.0, 10.0, 10.0), 2);
        assert_eq!(map.num_shards(), 4);
        assert_eq!(map.shard_of(&Point::anonymous(1.0, 1.0)), 0);
        assert_eq!(map.shard_of(&Point::anonymous(9.0, 1.0)), 1);
        assert_eq!(map.shard_of(&Point::anonymous(1.0, 9.0)), 2);
        assert_eq!(map.shard_of(&Point::anonymous(9.0, 9.0)), 3);
        // Out-of-bounds points clamp to the edge shards.
        assert_eq!(map.shard_of(&Point::anonymous(-5.0, -5.0)), 0);
        assert_eq!(map.shard_of(&Point::anonymous(100.0, 100.0)), 3);
        // Every shard rect is contained in the anchored bounds and they tile.
        let total: f64 = (0..4).map(|i| map.shard_rect(i).area()).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn composed_snapshot_upholds_shard_tier_invariants() {
        let snap = compose_sharded(scattered(600, 11), 3);
        assert_eq!(snap.num_shards(), 9);
        assert_eq!(snap.num_points(), 600);
        snap.check_overlay_invariants().unwrap();
        let parts = snap.partitions().unwrap();
        assert_eq!(parts.len(), 9);
        assert_eq!(parts.iter().map(|p| p.count).sum::<usize>(), 600);
        // The composed view answers point lookups across shard boundaries.
        for p in snap.merged_points().iter().take(50) {
            let at = snap.locate(p).expect("stored point is locatable");
            assert!(snap.block_points(at).iter().any(|q| q.id == p.id));
            assert_eq!(snap.position_of(p.id), Some(*p));
            assert!(snap.contains_id(p.id));
        }
    }

    #[test]
    fn single_shard_composition_is_transparent() {
        let snap = compose_sharded(scattered(200, 5), 1);
        assert_eq!(snap.num_shards(), 1);
        assert_eq!(snap.num_points(), 200);
        snap.check_overlay_invariants().unwrap();
        let shard = &snap.shards()[0];
        assert_eq!(snap.num_blocks(), shard.num_blocks());
        assert_eq!(snap.bounds(), shard.bounds());
    }
}
