//! Per-relation segmented write-ahead log.
//!
//! Every ingest batch that changes a relation's visible point set is
//! serialized as **one** length-prefixed, CRC32-checksummed record — the
//! batch's original [`WriteOp`]s plus a monotonically increasing sequence
//! number — and appended to the relation's log *before* the batch publishes.
//! Cross-shard moves (a `Remove` in the old shard paired with the `Upsert`
//! in the new one) therefore live in a single record: replay can never
//! observe half a move.
//!
//! The log is split into fixed-size segments (`wal-000001.log`,
//! `wal-000002.log`, …) so a checkpoint can reclaim space by deleting whole
//! closed segments whose highest sequence number is already covered by every
//! shard's persisted block file. Within a segment, records are laid out
//! back-to-back:
//!
//! ```text
//! [payload len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [seq: u64 LE][op count: u32 LE][op]*
//! op      = 0x00 [id: u64][x bits: u64][y bits: u64]   Upsert
//!         | 0x01 [id: u64]                             Remove
//! ```
//!
//! Recovery scans segments in order and stops at the first record that is
//! short, fails its checksum, or breaks sequence monotonicity — a torn tail
//! from a crash mid-append. The tail is truncated (and any later segments
//! deleted) so the log always ends on a fully written record; see
//! [`super::recover`] for how the surviving suffix is replayed.
//!
//! Appends go straight to the [`File`] with no userspace buffering, so an
//! in-process crash (panic, abort) loses nothing that was appended. What an
//! OS crash or power loss can lose is governed by [`SyncPolicy`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use twoknn_geometry::Point;

use super::delta::WriteOp;
use super::recover::RecoveryError;

/// When WAL appends are flushed to stable storage (`fsync`).
///
/// The policy only matters for machine crashes: process crashes lose nothing
/// under any policy because records are written straight to the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never `fsync`; the OS flushes on its own schedule. Fastest, and still
    /// fully durable against process crashes.
    Never,
    /// `fsync` after every appended batch record. Strongest guarantee.
    EveryBatch,
    /// `fsync` once every `n` appended batch records (and on segment roll).
    EveryN(u32),
}

/// IEEE CRC32 (the zlib/PNG polynomial), table-driven, computed at compile
/// time — the workspace takes no external dependencies.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum of `bytes` (IEEE polynomial).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Serializes one batch record (framing + payload) for sequence `seq`.
pub(crate) fn encode_record(seq: u64, ops: &[WriteOp]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12 + ops.len() * 25);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            WriteOp::Upsert(p) => {
                payload.push(0);
                payload.extend_from_slice(&p.id.to_le_bytes());
                payload.extend_from_slice(&p.x.to_bits().to_le_bytes());
                payload.extend_from_slice(&p.y.to_bits().to_le_bytes());
            }
            WriteOp::Remove(id) => {
                payload.push(1);
                payload.extend_from_slice(&id.to_le_bytes());
            }
        }
    }
    let mut record = Vec::with_capacity(8 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

fn take_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let bytes = buf.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(bytes.try_into().unwrap()))
}

/// Decodes the record starting at byte `at` of `buf`.
///
/// Returns `None` — the torn-tail signal — when the record is short, its
/// checksum fails, or an op tag is unknown.
pub(crate) fn decode_record(buf: &[u8], at: usize) -> Option<(u64, Vec<WriteOp>, usize)> {
    let len = u32::from_le_bytes(buf.get(at..at + 4)?.try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf.get(at + 4..at + 8)?.try_into().unwrap());
    let payload = buf.get(at + 8..at + 8 + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let mut pos = 0usize;
    let seq = take_u64(payload, &mut pos)?;
    let nops = u32::from_le_bytes(payload.get(pos..pos + 4)?.try_into().unwrap()) as usize;
    pos += 4;
    let mut ops = Vec::with_capacity(nops.min(payload.len()));
    for _ in 0..nops {
        let tag = *payload.get(pos)?;
        pos += 1;
        match tag {
            0 => {
                let id = take_u64(payload, &mut pos)?;
                let x = f64::from_bits(take_u64(payload, &mut pos)?);
                let y = f64::from_bits(take_u64(payload, &mut pos)?);
                ops.push(WriteOp::Upsert(Point::new(id, x, y)));
            }
            1 => ops.push(WriteOp::Remove(take_u64(payload, &mut pos)?)),
            _ => return None,
        }
    }
    if pos != payload.len() {
        return None;
    }
    Some((seq, ops, at + 8 + len))
}

fn segment_name(index: u64) -> String {
    format!("wal-{index:06}.log")
}

fn io_err(path: &Path, source: std::io::Error) -> RecoveryError {
    RecoveryError::Io {
        path: path.to_path_buf(),
        source,
    }
}

struct WalInner {
    file: File,
    /// Index of the open (tail) segment.
    segment: u64,
    /// Bytes appended to the open segment so far.
    written: u64,
    /// Highest sequence number ever assigned (recovered or appended).
    last_seq: u64,
    /// Appends since the last `fsync` (for [`SyncPolicy::EveryN`]).
    unsynced: u32,
    /// Closed segments still on disk: `(segment index, highest seq)`.
    closed: Vec<(u64, u64)>,
}

/// One intact record scanned back out of the log: the batch's sequence
/// number and its decoded operations.
pub(crate) type WalRecord = (u64, Vec<WriteOp>);

/// The segmented write-ahead log of one relation. Internally synchronized:
/// batches touching disjoint shards append concurrently, serialized only on
/// the log's own mutex (which also assigns sequence numbers).
pub(crate) struct Wal {
    dir: PathBuf,
    sync: SyncPolicy,
    segment_bytes: u64,
    inner: Mutex<WalInner>,
}

impl Wal {
    /// Creates a fresh log in `dir` (which must exist), starting sequence
    /// numbers at `1` in segment `wal-000001.log`.
    pub(crate) fn create(
        dir: &Path,
        sync: SyncPolicy,
        segment_bytes: u64,
    ) -> std::io::Result<Self> {
        let path = dir.join(segment_name(1));
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            sync,
            segment_bytes,
            inner: Mutex::new(WalInner {
                file,
                segment: 1,
                written: 0,
                last_seq: 0,
                unsynced: 0,
                closed: Vec::new(),
            }),
        })
    }

    /// Reopens the log in `dir` after a crash: scans existing segments in
    /// order, truncates the torn tail at the first bad record, and returns
    /// the log (positioned on a fresh segment) together with every intact
    /// record for replay. `base_seq` floors `last_seq` (the highest sequence
    /// any shard's block file already covers — trimmed segments may have
    /// removed the records that carried it).
    pub(crate) fn open(
        dir: &Path,
        sync: SyncPolicy,
        segment_bytes: u64,
        base_seq: u64,
    ) -> Result<(Self, Vec<WalRecord>), RecoveryError> {
        let mut segments: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(index) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                segments.push(index);
            }
        }
        segments.sort_unstable();

        let mut records: Vec<WalRecord> = Vec::new();
        let mut closed: Vec<(u64, u64)> = Vec::new();
        // Monotonicity floor across segments. Records with seq <= base_seq
        // are still *valid* (segments are only trimmed below the minimum
        // covered seq) — base_seq merely floors the reopened log's counter.
        let mut scan_seq = 0u64;
        let mut torn_at: Option<usize> = None; // position in `segments`
        for (si, &index) in segments.iter().enumerate() {
            let path = dir.join(segment_name(index));
            let mut buf = Vec::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut buf))
                .map_err(|e| io_err(&path, e))?;
            let mut at = 0usize;
            while at < buf.len() {
                match decode_record(&buf, at) {
                    Some((seq, ops, next)) if seq > scan_seq => {
                        scan_seq = seq;
                        records.push((seq, ops));
                        at = next;
                    }
                    // Bad checksum, short record, or a non-monotonic
                    // sequence number: everything from here on is the torn
                    // tail of the crashed writer.
                    _ => break,
                }
            }
            if at < buf.len() {
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err(&path, e))?;
                file.set_len(at as u64).map_err(|e| io_err(&path, e))?;
                torn_at = Some(si);
            }
            closed.push((index, scan_seq));
            if torn_at.is_some() {
                break;
            }
        }
        // Records after a torn record have unrecoverable framing (and would
        // leave a sequence gap): delete any segments past the torn one.
        if let Some(si) = torn_at {
            for &index in &segments[si + 1..] {
                let path = dir.join(segment_name(index));
                std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            }
        }

        let last_seq = scan_seq.max(base_seq);
        let next_segment = segments.last().copied().unwrap_or(0) + 1;
        let path = dir.join(segment_name(next_segment));
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        Ok((
            Self {
                dir: dir.to_path_buf(),
                sync,
                segment_bytes,
                inner: Mutex::new(WalInner {
                    file,
                    segment: next_segment,
                    written: 0,
                    last_seq,
                    unsynced: 0,
                    closed,
                }),
            },
            records,
        ))
    }

    /// Appends one batch record, assigning it the next sequence number.
    /// Returns `(seq, bytes appended, fsync wall time)` — the last is `None`
    /// when the policy skipped the sync for this append.
    pub(crate) fn append(
        &self,
        ops: &[WriteOp],
    ) -> std::io::Result<(u64, u64, Option<std::time::Duration>)> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = inner.last_seq + 1;
        let record = encode_record(seq, ops);
        inner.file.write_all(&record)?;
        inner.last_seq = seq;
        inner.written += record.len() as u64;
        inner.unsynced += 1;
        let roll = inner.written >= self.segment_bytes;
        let mut fsync_wall = None;
        match self.sync {
            SyncPolicy::Never => {}
            SyncPolicy::EveryBatch => {
                let start = std::time::Instant::now();
                inner.file.sync_data()?;
                fsync_wall = Some(start.elapsed());
                inner.unsynced = 0;
            }
            SyncPolicy::EveryN(n) => {
                if roll || inner.unsynced >= n.max(1) {
                    let start = std::time::Instant::now();
                    inner.file.sync_data()?;
                    fsync_wall = Some(start.elapsed());
                    inner.unsynced = 0;
                }
            }
        }
        if roll {
            let closed = (inner.segment, inner.last_seq);
            inner.closed.push(closed);
            let next = inner.segment + 1;
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(self.dir.join(segment_name(next)))?;
            inner.file = file;
            inner.segment = next;
            inner.written = 0;
        }
        Ok((seq, record.len() as u64, fsync_wall))
    }

    /// The highest sequence number assigned so far (`0` before any append).
    pub(crate) fn last_seq(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .last_seq
    }

    /// Deletes closed segments whose highest sequence number is `<=
    /// covered_seq` (already folded into every shard's persisted base).
    /// Returns how many segments were removed.
    pub(crate) fn trim(&self, covered_seq: u64) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut removed = 0usize;
        inner.closed.retain(|&(index, max_seq)| {
            if max_seq <= covered_seq {
                // Best-effort: a segment that refuses to delete is replayed
                // harmlessly (replay is idempotent past covered records).
                if std::fs::remove_file(self.dir.join(segment_name(index))).is_ok() {
                    removed += 1;
                    return false;
                }
            }
            true
        });
        removed
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("segment", &inner.segment)
            .field("last_seq", &inner.last_seq)
            .field("closed_segments", &inner.closed.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "twoknn-wal-{}-{tag}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(seed: u64) -> Vec<WriteOp> {
        vec![
            WriteOp::Upsert(Point::new(seed, seed as f64 * 0.5, -(seed as f64))),
            WriteOp::Remove(seed + 1),
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn records_roundtrip_including_non_finite_coordinates() {
        let ops = vec![
            WriteOp::Upsert(Point::new(7, f64::NEG_INFINITY, 1.25)),
            WriteOp::Remove(42),
            WriteOp::Upsert(Point::new(8, -0.0, 3.5)),
        ];
        let rec = encode_record(99, &ops);
        let (seq, decoded, next) = decode_record(&rec, 0).unwrap();
        assert_eq!(seq, 99);
        assert_eq!(next, rec.len());
        assert_eq!(decoded.len(), 3);
        match (&decoded[0], &ops[0]) {
            (WriteOp::Upsert(a), WriteOp::Upsert(b)) => {
                assert_eq!(a.id, b.id);
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
            }
            _ => panic!("op kind changed in roundtrip"),
        }
        assert!(matches!(decoded[1], WriteOp::Remove(42)));
    }

    #[test]
    fn corrupt_and_short_records_decode_to_none() {
        let mut rec = encode_record(1, &batch(10));
        assert!(decode_record(&rec[..rec.len() - 1], 0).is_none(), "short");
        let last = rec.len() - 1;
        rec[last] ^= 0x40;
        assert!(decode_record(&rec, 0).is_none(), "bad checksum");
    }

    #[test]
    fn append_scan_roundtrip_with_segment_rolls() {
        let dir = tmpdir("roundtrip");
        // Tiny segments force rolls every couple of records.
        let wal = Wal::create(&dir, SyncPolicy::EveryN(3), 128).unwrap();
        let mut expected = Vec::new();
        for i in 0..10u64 {
            let ops = batch(i * 10);
            let (seq, bytes, _) = wal.append(&ops).unwrap();
            assert_eq!(seq, i + 1);
            assert!(bytes > 0);
            expected.push((seq, ops));
        }
        assert_eq!(wal.last_seq(), 10);
        drop(wal);
        assert!(
            std::fs::read_dir(&dir).unwrap().count() > 2,
            "128-byte segments must have rolled"
        );

        let (reopened, records) = Wal::open(&dir, SyncPolicy::Never, 128, 0).unwrap();
        assert_eq!(records, expected);
        assert_eq!(reopened.last_seq(), 10);
        // The reopened log continues the sequence.
        assert_eq!(reopened.append(&batch(0)).unwrap().0, 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_later_segments_dropped() {
        let dir = tmpdir("torn");
        let wal = Wal::create(&dir, SyncPolicy::Never, u64::MAX).unwrap();
        for i in 0..4u64 {
            wal.append(&batch(i)).unwrap();
        }
        drop(wal);
        // Tear the last record: chop 3 bytes off the single segment.
        let seg = dir.join(segment_name(1));
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        // A later segment that should be discarded along with the tail.
        std::fs::write(dir.join(segment_name(2)), encode_record(9, &batch(9))).unwrap();

        let (wal, records) = Wal::open(&dir, SyncPolicy::Never, u64::MAX, 0).unwrap();
        assert_eq!(records.len(), 3, "the torn 4th record is dropped");
        assert_eq!(records.last().unwrap().0, 3);
        assert_eq!(wal.last_seq(), 3);
        assert!(
            !dir.join(segment_name(2)).exists(),
            "segments past the tear are deleted"
        );
        assert!(
            std::fs::metadata(&seg).unwrap().len() < len - 3,
            "the torn segment is truncated back to its last intact record"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trim_deletes_only_fully_covered_closed_segments() {
        let dir = tmpdir("trim");
        let wal = Wal::create(&dir, SyncPolicy::Never, 64).unwrap();
        for i in 0..8u64 {
            wal.append(&batch(i)).unwrap();
        }
        let before: usize = std::fs::read_dir(&dir).unwrap().count();
        assert!(before > 2);
        assert_eq!(wal.trim(0), 0, "nothing covered, nothing trimmed");
        let removed = wal.trim(wal.last_seq());
        assert!(removed > 0);
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            before - removed,
            "only closed segments are deleted; the open tail stays"
        );
        // The survivors still replay cleanly.
        drop(wal);
        let (_, records) = Wal::open(&dir, SyncPolicy::Never, 64, 0).unwrap();
        for (seq, _) in &records {
            assert!(*seq > 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
