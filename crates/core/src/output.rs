//! Query result types: pairs, triplets, and outputs carrying work metrics.

use std::collections::BTreeSet;

use twoknn_geometry::{Point, PointId};
use twoknn_index::Metrics;

/// A (outer, inner) result pair of a kNN-join-based query, e.g. the
/// (mechanic shop, hotel) pairs of the paper's motivating example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pair {
    /// The outer-relation point (`e1 ∈ E1`).
    pub left: Point,
    /// The inner-relation point (`e2 ∈ E2`).
    pub right: Point,
}

impl Pair {
    /// Creates a pair.
    pub fn new(left: Point, right: Point) -> Self {
        Self { left, right }
    }

    /// The pair of ids `(left.id, right.id)`.
    pub fn ids(&self) -> (PointId, PointId) {
        (self.left.id, self.right.id)
    }
}

/// An (a, b, c) result triplet of a two-kNN-join query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// The point from relation `A`.
    pub a: Point,
    /// The point from relation `B` (the shared join relation).
    pub b: Point,
    /// The point from relation `C`.
    pub c: Point,
}

impl Triplet {
    /// Creates a triplet.
    pub fn new(a: Point, b: Point, c: Point) -> Self {
        Self { a, b, c }
    }

    /// The triple of ids `(a.id, b.id, c.id)`.
    pub fn ids(&self) -> (PointId, PointId, PointId) {
        (self.a.id, self.b.id, self.c.id)
    }
}

/// The output of a query execution: result rows plus the work performed.
#[derive(Debug, Clone)]
pub struct QueryOutput<T> {
    /// The result rows (pairs, triplets, or points).
    pub rows: Vec<T>,
    /// Machine-independent work counters accumulated during execution.
    pub metrics: Metrics,
}

impl<T> QueryOutput<T> {
    /// Wraps rows and metrics into an output.
    pub fn new(rows: Vec<T>, metrics: Metrics) -> Self {
        Self { rows, metrics }
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Normalizes a pair result to a canonical, order-independent form for
/// comparisons in tests and for the equivalence checks of the plan validator.
pub fn pair_id_set(pairs: &[Pair]) -> BTreeSet<(PointId, PointId)> {
    pairs.iter().map(Pair::ids).collect()
}

/// Normalizes a triplet result to a canonical, order-independent form.
pub fn triplet_id_set(triplets: &[Triplet]) -> BTreeSet<(PointId, PointId, PointId)> {
    triplets.iter().map(Triplet::ids).collect()
}

/// Normalizes a point result (e.g. the output of two kNN-selects) to the set
/// of point ids.
pub fn point_id_set(points: &[Point]) -> BTreeSet<PointId> {
    points.iter().map(|p| p.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_and_triplet_ids() {
        let p = Pair::new(Point::new(1, 0.0, 0.0), Point::new(2, 1.0, 1.0));
        assert_eq!(p.ids(), (1, 2));
        let t = Triplet::new(
            Point::new(1, 0.0, 0.0),
            Point::new(2, 1.0, 1.0),
            Point::new(3, 2.0, 2.0),
        );
        assert_eq!(t.ids(), (1, 2, 3));
    }

    #[test]
    fn id_sets_are_order_independent() {
        let a = Point::new(1, 0.0, 0.0);
        let b = Point::new(2, 1.0, 0.0);
        let left = vec![Pair::new(a, b), Pair::new(b, a)];
        let right = vec![Pair::new(b, a), Pair::new(a, b)];
        assert_eq!(pair_id_set(&left), pair_id_set(&right));
        assert_eq!(point_id_set(&[a, b]), point_id_set(&[b, a]));
    }

    #[test]
    fn query_output_accessors() {
        let out = QueryOutput::new(vec![1, 2, 3], Metrics::default());
        assert_eq!(out.len(), 3);
        assert!(!out.is_empty());
        let empty: QueryOutput<u32> = QueryOutput::new(vec![], Metrics::default());
        assert!(empty.is_empty());
    }
}
