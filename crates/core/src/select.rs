//! The kNN-select operator `σ_{k,f}(E)`.
//!
//! "For a focal point f, σ_{k,f}(E1) returns from the set of points in E1 the
//! k-closest to f." (Section 1.) The operator is a thin wrapper over the
//! locality-based `getkNN` of the index layer; it exists as a named operator
//! so that plans, the optimizer and the conceptually correct QEPs can treat
//! it uniformly.

use twoknn_geometry::Point;
use twoknn_index::{get_knn, Metrics, Neighborhood, SpatialIndex};

use crate::output::QueryOutput;

/// Evaluates `σ_{k,focal}(relation)` and returns the selected points ordered
/// by increasing distance from the focal point.
pub fn knn_select<I>(relation: &I, focal: &Point, k: usize) -> QueryOutput<Point>
where
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let nbr = knn_select_neighborhood(relation, focal, k, &mut metrics);
    let rows: Vec<Point> = nbr.points().copied().collect();
    metrics.tuples_emitted += rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// Evaluates the kNN-select but returns the full [`Neighborhood`] (points plus
/// distances), accumulating work into `metrics`. This is the form the
/// two-predicate algorithms use internally, because they need the nearest and
/// farthest members to derive search thresholds.
pub fn knn_select_neighborhood<I>(
    relation: &I,
    focal: &Point,
    k: usize,
    metrics: &mut Metrics,
) -> Neighborhood
where
    I: SpatialIndex + ?Sized,
{
    get_knn(relation, focal, k, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_index::GridIndex;

    fn grid() -> GridIndex {
        let pts: Vec<Point> = (0..200)
            .map(|i| Point::new(i, (i % 20) as f64, (i / 20) as f64))
            .collect();
        GridIndex::build(pts, 8).unwrap()
    }

    #[test]
    fn select_returns_k_nearest_in_distance_order() {
        let g = grid();
        let focal = Point::anonymous(0.0, 0.0);
        let out = knn_select(&g, &focal, 3);
        assert_eq!(out.len(), 3);
        let d: Vec<f64> = out.rows.iter().map(|p| focal.distance(p)).collect();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out.metrics.neighborhoods_computed, 1);
        assert_eq!(out.metrics.tuples_emitted, 3);
    }

    #[test]
    fn select_matches_brute_force() {
        let g = grid();
        let focal = Point::anonymous(7.3, 4.1);
        let out = knn_select(&g, &focal, 10);
        let brute = twoknn_index::brute_force_knn(&g, &focal, 10);
        let mut got: Vec<u64> = out.rows.iter().map(|p| p.id).collect();
        let mut want = brute.ids();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn select_with_k_zero_is_empty() {
        let g = grid();
        assert!(knn_select(&g, &Point::anonymous(1.0, 1.0), 0).is_empty());
    }
}
