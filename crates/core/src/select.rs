//! The kNN-select operator `σ_{k,f}(E)`.
//!
//! "For a focal point f, σ_{k,f}(E1) returns from the set of points in E1 the
//! k-closest to f." (Section 1.) The operator is a thin wrapper over the
//! locality-based `getkNN` of the index layer; it exists as a named operator
//! so that plans, the optimizer and the conceptually correct QEPs can treat
//! it uniformly.

use twoknn_geometry::{Point, Predicate};
use twoknn_index::{get_knn, get_knn_filtered, Metrics, Neighborhood, SpatialIndex};

use crate::output::QueryOutput;

/// The single kNN-select query shape: the `k` points of a relation nearest to
/// a focal point. Filters, when present, ride on the enclosing
/// [`crate::plan::QuerySpec::Filtered`] wrapper — a *pre-kNN* filter turns
/// this into "the k nearest *matching* points".
#[derive(Debug, Clone, PartialEq)]
pub struct KnnSelectQuery {
    /// Number of nearest neighbors requested.
    pub k: usize,
    /// The focal point of the select.
    pub focal: Point,
}

impl KnnSelectQuery {
    /// A select for the `k` points nearest to `focal`.
    pub fn new(k: usize, focal: Point) -> Self {
        Self { k, focal }
    }
}

/// Evaluates `σ_{k,focal}(relation)` and returns the selected points ordered
/// by increasing distance from the focal point.
pub fn knn_select<I>(relation: &I, focal: &Point, k: usize) -> QueryOutput<Point>
where
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let nbr = knn_select_neighborhood(relation, focal, k, &mut metrics);
    let rows: Vec<Point> = nbr.points().copied().collect();
    metrics.tuples_emitted += rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// Evaluates the kNN-select but returns the full [`Neighborhood`] (points plus
/// distances), accumulating work into `metrics`. This is the form the
/// two-predicate algorithms use internally, because they need the nearest and
/// farthest members to derive search thresholds.
pub fn knn_select_neighborhood<I>(
    relation: &I,
    focal: &Point,
    k: usize,
    metrics: &mut Metrics,
) -> Neighborhood
where
    I: SpatialIndex + ?Sized,
{
    get_knn(relation, focal, k, metrics)
}

/// Evaluates the *filtered* kNN-select: the `k` points matching `predicate`
/// that are nearest to `focal` (pre-kNN filter placement). A
/// [`Predicate::True`] predicate degenerates to the plain locality-based
/// select, which keeps the unfiltered fast path intact.
pub fn knn_select_filtered<I>(
    relation: &I,
    focal: &Point,
    k: usize,
    predicate: &Predicate,
) -> QueryOutput<Point>
where
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let nbr = knn_select_filtered_neighborhood(relation, focal, k, predicate, &mut metrics);
    let rows: Vec<Point> = nbr.points().copied().collect();
    metrics.tuples_emitted += rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// [`knn_select_filtered`] returning the full [`Neighborhood`], accumulating
/// work into `metrics` — the form guard derivation uses, because a standing
/// query's guard circle must span the **filtered** k-th distance (never
/// smaller than the unfiltered one).
pub fn knn_select_filtered_neighborhood<I>(
    relation: &I,
    focal: &Point,
    k: usize,
    predicate: &Predicate,
    metrics: &mut Metrics,
) -> Neighborhood
where
    I: SpatialIndex + ?Sized,
{
    if matches!(predicate, Predicate::True) {
        get_knn(relation, focal, k, metrics)
    } else {
        get_knn_filtered(relation, focal, k, predicate, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_index::GridIndex;

    fn grid() -> GridIndex {
        let pts: Vec<Point> = (0..200)
            .map(|i| Point::new(i, (i % 20) as f64, (i / 20) as f64))
            .collect();
        GridIndex::build(pts, 8).unwrap()
    }

    #[test]
    fn select_returns_k_nearest_in_distance_order() {
        let g = grid();
        let focal = Point::anonymous(0.0, 0.0);
        let out = knn_select(&g, &focal, 3);
        assert_eq!(out.len(), 3);
        let d: Vec<f64> = out.rows.iter().map(|p| focal.distance(p)).collect();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out.metrics.neighborhoods_computed, 1);
        assert_eq!(out.metrics.tuples_emitted, 3);
    }

    #[test]
    fn select_matches_brute_force() {
        let g = grid();
        let focal = Point::anonymous(7.3, 4.1);
        let out = knn_select(&g, &focal, 10);
        let brute = twoknn_index::brute_force_knn(&g, &focal, 10);
        let mut got: Vec<u64> = out.rows.iter().map(|p| p.id).collect();
        let mut want = brute.ids();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn select_with_k_zero_is_empty() {
        let g = grid();
        assert!(knn_select(&g, &Point::anonymous(1.0, 1.0), 0).is_empty());
    }

    #[test]
    fn filtered_select_matches_filtered_brute_force() {
        let g = grid();
        let focal = Point::anonymous(7.3, 4.1);
        let pred = Predicate::IdRange { lo: 50, hi: 150 };
        let out = knn_select_filtered(&g, &focal, 10, &pred);
        let want = twoknn_index::brute_force_knn_filtered(&g, &focal, 10, &pred);
        let got: Vec<u64> = out.rows.iter().map(|p| p.id).collect();
        assert_eq!(got, want.ids());
        assert_eq!(out.metrics.tuples_emitted, 10);
    }

    #[test]
    fn filtered_select_with_true_predicate_equals_plain_select() {
        let g = grid();
        let focal = Point::anonymous(3.0, 9.0);
        let plain = knn_select(&g, &focal, 7);
        let filtered = knn_select_filtered(&g, &focal, 7, &Predicate::True);
        assert_eq!(plain.rows, filtered.rows);
    }
}
