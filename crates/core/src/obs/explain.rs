//! Structured `EXPLAIN` / `EXPLAIN ANALYZE` output.
//!
//! [`PlanExplain`] captures the whole decision chain for one query — the
//! parsed AST, the logical plan, the filter-placement rewrites, the
//! optimizer's chosen [`Strategy`], and the compiled physical operator
//! tree — as a structured value tests can assert on, with an indented text
//! rendering for humans. [`AnalyzedQuery`] pairs it with the executed
//! [`OpTrace`], annotating every operator with wall time, rows, and counter
//! deltas.

use std::fmt;

use crate::obs::trace::OpTrace;
use crate::plan::executor::QueryResult;
use crate::plan::physical::{PhysicalPlan, RowSchema};
use crate::plan::strategy::Strategy;

/// One operator of the compiled physical plan, structurally.
#[derive(Debug, Clone)]
pub struct OpNode {
    /// The operator's [`PhysicalPlan::name`].
    pub name: &'static str,
    /// The strategy the operator implements.
    pub strategy: Strategy,
    /// The row type the operator produces.
    pub schema: RowSchema,
    /// Operator-specific parameters (`k=…`, roles, …); empty when none.
    pub detail: String,
    /// Nested input operators.
    pub children: Vec<OpNode>,
}

impl OpNode {
    /// Captures a compiled plan's operator tree.
    pub fn from_plan(plan: &dyn PhysicalPlan) -> OpNode {
        OpNode {
            name: plan.name(),
            strategy: plan.strategy(),
            schema: plan.schema(),
            detail: plan.detail(),
            children: plan.children().into_iter().map(OpNode::from_plan).collect(),
        }
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{} [{}] -> {:?}",
            self.name, self.strategy, self.schema
        ));
        if !self.detail.is_empty() {
            out.push_str(&format!(" ({})", self.detail));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }

    /// Total number of operators in the tree (this node included).
    pub fn num_ops(&self) -> usize {
        1 + self.children.iter().map(OpNode::num_ops).sum::<usize>()
    }
}

/// The full decision chain for one query, from text to physical plan.
///
/// Produced by [`crate::plan::Database::explain`] (textual queries — all
/// fields populated) and [`crate::plan::Database::explain_spec`]
/// (pre-built [`crate::plan::QuerySpec`]s — no AST/logical stage).
#[derive(Debug, Clone)]
pub struct PlanExplain {
    /// The original query text, when the query came through the parser.
    pub query: Option<String>,
    /// The parsed AST, pretty-printed by the front-end.
    pub ast: Option<String>,
    /// The logical plan (kNN predicates + filters) the rewriter produced.
    pub logical: Option<String>,
    /// The filter-placement rewrites applied, one human-readable line each
    /// (pre-kNN pushdowns and post-kNN residuals).
    pub rewrites: Vec<String>,
    /// The strategy the optimizer chose.
    pub strategy: Strategy,
    /// The compiled physical operator tree.
    pub root: OpNode,
}

impl PlanExplain {
    /// Renders the decision chain as an indented text tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(query) = &self.query {
            out.push_str(&format!("query:    {query}\n"));
        }
        if let Some(ast) = &self.ast {
            out.push_str(&format!("ast:      {ast}\n"));
        }
        if let Some(logical) = &self.logical {
            out.push_str(&format!("logical:  {logical}\n"));
        }
        for rewrite in &self.rewrites {
            out.push_str(&format!("rewrite:  {rewrite}\n"));
        }
        out.push_str(&format!("strategy: {}\n", self.strategy));
        out.push_str("plan:\n");
        self.root.render_into(&mut out, 1);
        out
    }
}

impl fmt::Display for PlanExplain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

/// An `EXPLAIN ANALYZE` result: the plan, its executed trace, and the
/// query result itself.
#[derive(Debug, Clone)]
pub struct AnalyzedQuery {
    /// The decision chain (as [`crate::plan::Database::explain`] reports).
    pub explain: PlanExplain,
    /// The executed per-operator trace; `trace.inclusive` reconciles
    /// exactly with `result.metrics()`.
    pub trace: OpTrace,
    /// The rows and metrics the execution produced.
    pub result: QueryResult,
}

impl AnalyzedQuery {
    /// Renders the decision chain followed by the annotated executed tree.
    pub fn render(&self) -> String {
        let mut out = self.explain.render();
        out.push_str("executed:\n");
        for line in self.trace.render().lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for AnalyzedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}
