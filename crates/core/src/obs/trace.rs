//! Per-operator execution traces: the data behind `EXPLAIN ANALYZE`.
//!
//! When tracing is enabled (or [`crate::plan::Database::explain_analyze`]
//! is called), every [`crate::plan::PhysicalPlan`] operator records a span:
//! wall time, rows emitted, and the [`Metrics`] delta its subtree
//! performed. Nested operators (today the residual filter over its input)
//! produce nested [`OpTrace`]s; [`OpTrace::exclusive`] subtracts the
//! children so each node's own work is visible.

use std::fmt;
use std::time::Duration;

use twoknn_index::Metrics;

use crate::plan::strategy::Strategy;

/// One operator's execution span inside a traced query.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// The operator's [`crate::plan::PhysicalPlan::name`].
    pub name: &'static str,
    /// The strategy the operator implements.
    pub strategy: Strategy,
    /// Rows the operator emitted (after its own pruning, if any).
    pub rows: usize,
    /// Wall time of the operator **including** its children.
    pub wall: Duration,
    /// Work counters of the operator's whole subtree — the root's
    /// `inclusive` equals the query's global [`Metrics`] delta exactly.
    pub inclusive: Metrics,
    /// Traces of nested input operators.
    pub children: Vec<OpTrace>,
}

impl OpTrace {
    /// This operator's own counter delta: `inclusive` minus the children's.
    ///
    /// Uses [`Metrics::diff`]'s saturating subtraction because
    /// `tuples_emitted` is not monotone up the tree (the residual filter
    /// *resets* it to the surviving row count); every other counter is
    /// monotone, so per-operator exclusives sum back to the root exactly.
    pub fn exclusive(&self) -> Metrics {
        let children: Metrics = self
            .children
            .iter()
            .map(|c| c.inclusive)
            .fold(Metrics::default(), |acc, m| acc + m);
        self.inclusive.diff(&children)
    }

    /// Renders the trace as an indented tree, one operator per line,
    /// annotated with wall time, rows, and the non-zero *exclusive* work
    /// counters.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let ex = self.exclusive();
        out.push_str(&format!(
            "{} [{}] rows={} wall={}",
            self.name,
            self.strategy,
            self.rows,
            super::histogram::fmt_nanos(self.wall.as_nanos().min(u64::MAX as u128) as u64),
        ));
        for (label, value) in [
            ("knn", ex.neighborhoods_computed),
            ("blocks", ex.blocks_scanned),
            ("blocks_pruned", ex.blocks_pruned),
            ("pts", ex.points_scanned),
            ("pts_pruned", ex.points_pruned),
            ("dist", ex.distance_computations),
            ("shards", ex.shards_scanned),
            ("shards_pruned", ex.shards_pruned),
        ] {
            if value > 0 {
                out.push_str(&format!(" {label}={value}"));
            }
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }

    /// Total number of operators in this trace (the node itself included).
    pub fn num_ops(&self) -> usize {
        1 + self.children.iter().map(OpTrace::num_ops).sum::<usize>()
    }
}

impl fmt::Display for OpTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

/// One retained traced execution: a labelled [`OpTrace`] tree.
///
/// With tracing enabled ([`crate::obs::TraceConfig`] or
/// [`crate::plan::Database::set_tracing`]), every executed query pushes one
/// of these into a bounded buffer the caller drains with
/// [`crate::plan::Database::drain_traces`]. Labels identify the source:
/// `"query"` for ad-hoc execution, `"batch[i]"` for batch members,
/// `"cq sub#N"` for standing-query re-evaluations.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Monotone trace sequence number.
    pub seq: u64,
    /// Where the execution came from.
    pub label: String,
    /// The root operator's trace.
    pub root: OpTrace,
}

impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace #{} ({})", self.seq, self.label)?;
        f.write_str(self.root.render().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::strategy::SelectStrategy;

    fn leaf(rows: usize, pts: u64) -> OpTrace {
        let m = Metrics {
            points_scanned: pts,
            tuples_emitted: rows as u64,
            ..Metrics::default()
        };
        OpTrace {
            name: "knn-select",
            strategy: Strategy::Select(SelectStrategy::FilteredKernel),
            rows,
            wall: Duration::from_micros(120),
            inclusive: m,
            children: Vec::new(),
        }
    }

    #[test]
    fn exclusive_subtracts_children_and_saturates() {
        let child = leaf(10, 400);
        let mut parent_metrics = child.inclusive;
        // The residual filter resets tuples_emitted *down* to 3.
        parent_metrics.tuples_emitted = 3;
        let parent = OpTrace {
            name: "residual-filter",
            strategy: Strategy::Select(SelectStrategy::FilteredKernel),
            rows: 3,
            wall: Duration::from_micros(150),
            inclusive: parent_metrics,
            children: vec![child],
        };
        let ex = parent.exclusive();
        assert_eq!(ex.points_scanned, 0, "all scan work was the child's");
        assert_eq!(ex.tuples_emitted, 0, "non-monotone counter saturates");
        assert_eq!(parent.num_ops(), 2);
        let rendered = parent.render();
        assert!(rendered.starts_with("residual-filter"));
        assert!(rendered.contains("\n  knn-select"), "child is indented");
        assert!(rendered.contains("rows=3"));
        // The child line carries the scan work.
        assert!(rendered.contains("pts=400"));
    }

    #[test]
    fn query_trace_displays_label_and_tree() {
        let t = QueryTrace {
            seq: 7,
            label: "batch[3]".into(),
            root: leaf(5, 90),
        };
        let s = t.to_string();
        assert!(s.contains("trace #7 (batch[3])"));
        assert!(s.contains("knn-select"));
    }
}
