//! Lock-light latency histograms: log2-bucketed, atomic, alloc-free.
//!
//! Every timed subsystem records into one [`LatencyHistogram`] per
//! [`HistogramKind`], held in a fixed-size [`MetricsRegistry`]. Recording is
//! a handful of relaxed atomic adds — no locks, no allocation — so the
//! registry can sit on every hot path (query execution, WAL append, ingest
//! publish) without a measurable cost. Reads take a point-in-time
//! [`HistogramSnapshot`] and derive percentiles from the bucket counts:
//! log2 buckets bound the relative error of any quantile by 2x, which is
//! plenty for p50/p90/p99 triage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The timed subsystems the registry keeps one histogram for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramKind {
    /// One query through `execute` / `execute_with` (compile + run).
    QueryExec,
    /// One whole `execute_batch` call, all queries included.
    BatchWindow,
    /// One ingest batch: WAL append + apply + atomic publish.
    IngestPublish,
    /// One WAL record append (serialize + write, excluding fsync).
    WalAppend,
    /// One WAL fsync (`EveryBatch` / `EveryN` sync policies only).
    WalFsync,
    /// One shard compaction: capture + gather + index rebuild + publish.
    Compaction,
    /// One store checkpoint: spill dirty shards + trim the WAL.
    Checkpoint,
    /// One durable-store recovery (all relations).
    Recovery,
    /// One continuous-query re-evaluation.
    CqReeval,
}

impl HistogramKind {
    /// Every kind, in registry order.
    pub const ALL: [HistogramKind; 9] = [
        HistogramKind::QueryExec,
        HistogramKind::BatchWindow,
        HistogramKind::IngestPublish,
        HistogramKind::WalAppend,
        HistogramKind::WalFsync,
        HistogramKind::Compaction,
        HistogramKind::Checkpoint,
        HistogramKind::Recovery,
        HistogramKind::CqReeval,
    ];

    /// Number of kinds (the registry's array length).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case label, used in both text and JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            HistogramKind::QueryExec => "query_exec",
            HistogramKind::BatchWindow => "batch_window",
            HistogramKind::IngestPublish => "ingest_publish",
            HistogramKind::WalAppend => "wal_append",
            HistogramKind::WalFsync => "wal_fsync",
            HistogramKind::Compaction => "compaction",
            HistogramKind::Checkpoint => "checkpoint",
            HistogramKind::Recovery => "recovery",
            HistogramKind::CqReeval => "cq_reeval",
        }
    }

    fn index(self) -> usize {
        match self {
            HistogramKind::QueryExec => 0,
            HistogramKind::BatchWindow => 1,
            HistogramKind::IngestPublish => 2,
            HistogramKind::WalAppend => 3,
            HistogramKind::WalFsync => 4,
            HistogramKind::Compaction => 5,
            HistogramKind::Checkpoint => 6,
            HistogramKind::Recovery => 7,
            HistogramKind::CqReeval => 8,
        }
    }
}

/// Number of log2 buckets: bucket `i` holds samples whose nanosecond value
/// has its highest set bit at position `i`, i.e. durations in
/// `[2^i, 2^{i+1})` ns (zero maps to bucket 0).
const BUCKETS: usize = 64;

/// A concurrent log2-bucketed latency histogram.
///
/// [`LatencyHistogram::record`] is lock-free and allocation-free: four
/// relaxed atomic RMW ops. Snapshots are not linearizable with respect to
/// concurrent recording (`count` may momentarily run ahead of the bucket it
/// lands in), but every recorded sample eventually appears in exactly one
/// bucket, so quiescent reads reconcile exactly.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample. Lock-free and allocation-free.
    pub fn record(&self, duration: Duration) {
        let nanos = duration.as_nanos().min(u64::MAX as u128) as u64;
        // `| 1` maps a zero-length sample to bucket 0 instead of UB on
        // `leading_zeros` arithmetic; it does not perturb any other bucket.
        let idx = 63 - (nanos | 1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-log2-bucket sample counts; bucket `i` covers `[2^i, 2^{i+1})` ns.
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded sample durations, in nanoseconds.
    pub sum_nanos: u64,
    /// The largest recorded sample, in nanoseconds.
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// The `p`-quantile (`0.0 ..= 1.0`) in nanoseconds, estimated as the
    /// upper bound of the bucket holding the rank-`ceil(p * count)` sample,
    /// clamped to the observed maximum. The estimate is monotone in `p` and
    /// never exceeds [`HistogramSnapshot::max_nanos`], so
    /// `p50 <= p90 <= p99 <= max` always holds. Zero when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                let upper = if idx >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (idx + 1)) - 1
                };
                return upper.min(self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// The arithmetic mean in nanoseconds (exact, from the running sum).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// The fixed-size registry: one [`LatencyHistogram`] per [`HistogramKind`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    histograms: [LatencyHistogram; HistogramKind::COUNT],
}

impl MetricsRegistry {
    /// Records one sample into `kind`'s histogram. Lock- and alloc-free.
    pub fn record(&self, kind: HistogramKind, duration: Duration) {
        self.histograms[kind.index()].record(duration);
    }

    /// A snapshot of `kind`'s histogram.
    pub fn snapshot(&self, kind: HistogramKind) -> HistogramSnapshot {
        self.histograms[kind.index()].snapshot()
    }

    /// Snapshots of every histogram, in [`HistogramKind::ALL`] order.
    pub fn snapshots(&self) -> Vec<(HistogramKind, HistogramSnapshot)> {
        HistogramKind::ALL
            .into_iter()
            .map(|kind| (kind, self.snapshot(kind)))
            .collect()
    }
}

/// Renders a nanosecond duration with an adaptive unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_count_and_percentiles_are_sane() {
        let h = LatencyHistogram::default();
        for micros in [1u64, 2, 4, 100, 100, 100, 5000] {
            h.record(Duration::from_micros(micros));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        assert_eq!(snap.max_nanos, 5_000_000);
        let (p50, p90, p99) = (
            snap.percentile(0.50),
            snap.percentile(0.90),
            snap.percentile(0.99),
        );
        assert!(p50 <= p90 && p90 <= p99 && p99 <= snap.max_nanos);
        // The median sample is one of the 100µs records: its log2 bucket
        // upper bound is < 2 * 100µs.
        assert!((100_000..200_000).contains(&p50), "p50 = {p50}");
        assert!(snap.mean_nanos() > 0);
    }

    #[test]
    fn empty_and_zero_samples_are_handled() {
        let h = LatencyHistogram::default();
        let empty = h.snapshot();
        assert_eq!(empty.percentile(0.99), 0);
        assert_eq!(empty.mean_nanos(), 0);
        h.record(Duration::ZERO);
        let snap = h.snapshot();
        assert_eq!((snap.count, snap.buckets[0]), (1, 1));
        assert_eq!(snap.percentile(0.5), 0); // clamped to max = 0
    }

    #[test]
    fn registry_routes_by_kind() {
        let reg = MetricsRegistry::default();
        reg.record(HistogramKind::WalFsync, Duration::from_micros(3));
        reg.record(HistogramKind::WalFsync, Duration::from_micros(5));
        reg.record(HistogramKind::QueryExec, Duration::from_millis(1));
        assert_eq!(reg.snapshot(HistogramKind::WalFsync).count, 2);
        assert_eq!(reg.snapshot(HistogramKind::QueryExec).count, 1);
        assert_eq!(reg.snapshot(HistogramKind::Recovery).count, 0);
        let all = reg.snapshots();
        assert_eq!(all.len(), HistogramKind::COUNT);
        assert_eq!(all.iter().map(|(_, s)| s.count).sum::<u64>(), 3);
    }

    #[test]
    fn fmt_nanos_picks_units() {
        assert_eq!(fmt_nanos(17), "17ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }
}
