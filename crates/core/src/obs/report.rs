//! The exportable metrics report: counters, histograms, gauges, events.
//!
//! [`MetricsReport`] is a point-in-time snapshot of everything the engine
//! knows about itself: the cumulative [`Metrics`] counters, every latency
//! histogram's percentiles, the worker-pool gauges, and per-relation
//! shard/version state. It renders as human-readable text ([`fmt::Display`])
//! and as line-oriented JSON ([`MetricsReport::to_json_lines`]) — one
//! self-describing object per line, the shape log shippers and `jq` both
//! like.

use std::fmt;

use twoknn_index::Metrics;

use crate::obs::histogram::{fmt_nanos, HistogramKind, HistogramSnapshot};

/// Per-relation state gauges, sampled at report time.
#[derive(Debug, Clone)]
pub struct RelationGauges {
    /// The relation's registered name.
    pub name: String,
    /// Last published version.
    pub version: u64,
    /// Visible points in the last published snapshot.
    pub num_points: usize,
    /// Un-compacted delta-overlay entries across all shards.
    pub delta_len: usize,
    /// Number of spatial shards.
    pub shards: usize,
}

/// A point-in-time snapshot of the engine's observable state.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Cumulative work counters (the store's global [`Metrics`]).
    pub counters: Metrics,
    /// Every latency histogram, in [`HistogramKind::ALL`] order.
    pub histograms: Vec<(HistogramKind, HistogramSnapshot)>,
    /// Jobs queued on the worker pool right now.
    pub pool_queue_depth: usize,
    /// Detached (fire-and-forget) jobs still in flight on the pool.
    pub pool_detached: usize,
    /// Per-relation shard/version gauges, sorted by name.
    pub relations: Vec<RelationGauges>,
    /// Lifecycle events recorded but not yet drained.
    pub events_pending: usize,
}

/// The [`Metrics`] counters as stable `(name, value)` pairs, in declaration
/// order — the enumeration both report formats share.
pub fn counter_fields(m: &Metrics) -> [(&'static str, u64); 21] {
    [
        ("neighborhoods_computed", m.neighborhoods_computed),
        ("blocks_scanned", m.blocks_scanned),
        ("locality_blocks", m.locality_blocks),
        ("points_scanned", m.points_scanned),
        ("distance_computations", m.distance_computations),
        ("tuples_emitted", m.tuples_emitted),
        ("cache_hits", m.cache_hits),
        ("cache_misses", m.cache_misses),
        ("blocks_pruned", m.blocks_pruned),
        ("shards_scanned", m.shards_scanned),
        ("shards_pruned", m.shards_pruned),
        ("points_pruned", m.points_pruned),
        ("ingest_ops", m.ingest_ops),
        ("compactions", m.compactions),
        ("shards_compacted", m.shards_compacted),
        ("cq_reevals", m.cq_reevals),
        ("cq_skips", m.cq_skips),
        ("wal_appends", m.wal_appends),
        ("wal_bytes", m.wal_bytes),
        ("checkpoints", m.checkpoints),
        ("recoveries", m.recoveries),
    ]
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsReport {
    /// Renders the report as line-oriented JSON: one object per line, each
    /// tagged by a `"type"` field (`counter`, `histogram`, `gauge`,
    /// `relation`). Durations are integer nanoseconds. Zero-count
    /// histograms and zero counters are included — consumers diff reports,
    /// so a stable line set matters more than brevity.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, value) in counter_fields(&self.counters) {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n"
            ));
        }
        for (kind, snap) in &self.histograms {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"p50_ns\":{},\
                 \"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}\n",
                kind.label(),
                snap.count,
                snap.percentile(0.50),
                snap.percentile(0.90),
                snap.percentile(0.99),
                snap.max_nanos,
                snap.mean_nanos(),
            ));
        }
        for (name, value) in [
            ("pool_queue_depth", self.pool_queue_depth),
            ("pool_detached", self.pool_detached),
            ("events_pending", self.events_pending),
        ] {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{value}}}\n"
            ));
        }
        for rel in &self.relations {
            out.push_str(&format!(
                "{{\"type\":\"relation\",\"name\":\"{}\",\"version\":{},\"points\":{},\
                 \"delta\":{},\"shards\":{}}}\n",
                json_escape(&rel.name),
                rel.version,
                rel.num_points,
                rel.delta_len,
                rel.shards,
            ));
        }
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for line in self.counters.to_string().lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(
            f,
            "histograms:          {:>8} {:>9} {:>9} {:>9} {:>9}",
            "count", "p50", "p90", "p99", "max"
        )?;
        for (kind, snap) in &self.histograms {
            if snap.count == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<18} {:>8} {:>9} {:>9} {:>9} {:>9}",
                kind.label(),
                snap.count,
                fmt_nanos(snap.percentile(0.50)),
                fmt_nanos(snap.percentile(0.90)),
                fmt_nanos(snap.percentile(0.99)),
                fmt_nanos(snap.max_nanos),
            )?;
        }
        writeln!(
            f,
            "pool: queue_depth={} detached={}",
            self.pool_queue_depth, self.pool_detached
        )?;
        for rel in &self.relations {
            writeln!(
                f,
                "relation {}: version={} points={} delta={} shards={}",
                rel.name, rel.version, rel.num_points, rel.delta_len, rel.shards
            )?;
        }
        write!(f, "events pending: {}", self.events_pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::histogram::MetricsRegistry;
    use std::time::Duration;

    fn report() -> MetricsReport {
        let reg = MetricsRegistry::default();
        reg.record(HistogramKind::QueryExec, Duration::from_micros(250));
        reg.record(HistogramKind::QueryExec, Duration::from_micros(800));
        let counters = Metrics {
            points_scanned: 1234,
            ..Metrics::default()
        };
        MetricsReport {
            counters,
            histograms: reg.snapshots(),
            pool_queue_depth: 0,
            pool_detached: 1,
            relations: vec![RelationGauges {
                name: "Vehicles".into(),
                version: 7,
                num_points: 40_000,
                delta_len: 12,
                shards: 16,
            }],
            events_pending: 2,
        }
    }

    #[test]
    fn text_report_contains_all_sections() {
        let text = report().to_string();
        assert!(text.contains("counters:"));
        assert!(text.contains("pts=1234"));
        assert!(text.contains("query_exec"));
        assert!(!text.contains("wal_fsync"), "zero histograms suppressed");
        assert!(text.contains("pool: queue_depth=0 detached=1"));
        assert!(text.contains("relation Vehicles: version=7"));
        assert!(text.contains("events pending: 2"));
    }

    #[test]
    fn json_lines_are_one_object_per_line() {
        let json = report().to_json_lines();
        for line in json.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\""), "{line}");
        }
        assert!(json.contains("{\"type\":\"counter\",\"name\":\"points_scanned\",\"value\":1234}"));
        assert!(json.contains("\"name\":\"query_exec\",\"count\":2"));
        assert!(json.contains("\"type\":\"relation\",\"name\":\"Vehicles\""));
        // Every counter and every histogram appears, even when zero.
        assert_eq!(
            json.lines().filter(|l| l.contains("\"counter\"")).count(),
            21
        );
        assert_eq!(
            json.lines().filter(|l| l.contains("\"histogram\"")).count(),
            HistogramKind::COUNT
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
