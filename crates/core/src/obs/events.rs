//! A bounded ring buffer of subsystem lifecycle events.
//!
//! Counters say *how much* work happened; the event ring says *what*
//! happened, in order: compactions starting and finishing, checkpoints,
//! WAL segment trims, recoveries, and continuous-query re-evaluation
//! storms. The ring is bounded (oldest events drop first) so an unpolled
//! database never grows without bound, and [`EventRing::drain`] hands the
//! pending events to exactly one consumer.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// The lifecycle event taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A background or synchronous shard compaction began.
    CompactionStarted,
    /// A shard compaction published its rebuilt base.
    CompactionFinished,
    /// A store checkpoint completed (dirty shards spilled, WAL trimmed).
    Checkpoint,
    /// Obsolete WAL segments were deleted after a checkpoint.
    SegmentTrim,
    /// A durable store was recovered from disk.
    Recovery,
    /// One published batch triggered many standing-query re-evaluations.
    CqReevalStorm,
}

impl EventKind {
    /// Stable snake_case label, used in both text and JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::CompactionStarted => "compaction_started",
            EventKind::CompactionFinished => "compaction_finished",
            EventKind::Checkpoint => "checkpoint",
            EventKind::SegmentTrim => "segment_trim",
            EventKind::Recovery => "recovery",
            EventKind::CqReevalStorm => "cq_reeval_storm",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number (gaps reveal dropped events).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Free-form context, e.g. `"Vehicles shard 3: 4211 points"`.
    pub detail: String,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {}: {}", self.seq, self.kind, self.detail)
    }
}

#[derive(Debug, Default)]
struct RingState {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, drop-oldest ring of [`Event`]s behind one mutex.
///
/// Events fire on rare lifecycle paths (compaction, checkpoint, recovery),
/// never per query or per point, so a mutex is fine here.
#[derive(Debug)]
pub struct EventRing {
    state: Mutex<RingState>,
    capacity: usize,
}

impl Default for EventRing {
    fn default() -> Self {
        Self::with_capacity(256)
    }
}

impl EventRing {
    /// A ring retaining at most `capacity` undrained events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            state: Mutex::new(RingState::default()),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records an event, dropping the oldest pending one when full.
    pub fn record(&self, kind: EventKind, detail: String) {
        let mut state = self.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(Event { seq, kind, detail });
    }

    /// Removes and returns every pending event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.lock().events.drain(..).collect()
    }

    /// Number of pending (recorded but undrained) events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events dropped to the capacity bound since creation.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_returns_in_order_and_empties() {
        let ring = EventRing::default();
        ring.record(EventKind::CompactionStarted, "R shard 0".into());
        ring.record(EventKind::CompactionFinished, "R shard 0".into());
        assert_eq!(ring.len(), 2);
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::CompactionStarted);
        assert_eq!(events[1].seq, events[0].seq + 1);
        assert!(ring.is_empty() && ring.drain().is_empty());
        assert!(events[0].to_string().contains("compaction_started"));
    }

    #[test]
    fn capacity_drops_oldest_and_keeps_seq_monotone() {
        let ring = EventRing::with_capacity(3);
        for i in 0..5 {
            ring.record(EventKind::Checkpoint, format!("cp {i}"));
        }
        let events = ring.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(ring.dropped(), 2);
        // The two oldest dropped: seq 2, 3, 4 remain.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }
}
