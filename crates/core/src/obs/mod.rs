//! Observability: plan introspection, execution tracing, and the metrics
//! registry.
//!
//! Counters ([`twoknn_index::Metrics`]) say how much work happened; this
//! module says **which plan** the optimizer chose, **where** the time went,
//! and **what** the subsystems did — in three tiers:
//!
//! 1. **Plan introspection** — [`crate::plan::Database::explain`] renders
//!    the full decision chain (parsed AST → logical plan → filter-placement
//!    rewrites → chosen [`crate::plan::Strategy`] → compiled physical
//!    operator tree) as a [`PlanExplain`] value with an indented text form.
//! 2. **Execution tracing** — [`crate::plan::Database::explain_analyze`]
//!    and the opt-in [`TraceConfig`] wrap every physical operator in a span
//!    recording wall time, rows emitted, and its
//!    [`Metrics`](twoknn_index::Metrics) counter delta,
//!    producing per-operator annotated [`OpTrace`] trees ([`QueryTrace`]s
//!    when retained for batch members and cq re-evaluations).
//! 3. **Metrics registry** — a lock-light [`MetricsRegistry`] of
//!    log2-bucketed latency histograms (query execution, batch windows,
//!    ingest publish, WAL append/fsync, compaction, checkpoint, recovery,
//!    cq re-eval), gauges for pool queue depth and per-relation state, a
//!    bounded [`EventRing`] of lifecycle events, and the exportable
//!    [`MetricsReport`] (human-readable text + line-oriented JSON) behind
//!    [`crate::plan::Database::metrics_report`].
//!
//! The registry and event ring are always on — recording a histogram sample
//! is a few relaxed atomics, and events only fire on rare lifecycle paths.
//! Per-operator **tracing** is opt-in ([`TraceConfig::enabled`] or
//! [`crate::plan::Database::set_tracing`]); when off, the hot path performs
//! one timestamp pair per query and allocates nothing.

mod events;
mod explain;
mod histogram;
mod report;
mod trace;

pub use events::{Event, EventKind, EventRing};
pub use explain::{AnalyzedQuery, OpNode, PlanExplain};
pub use histogram::{
    fmt_nanos, HistogramKind, HistogramSnapshot, LatencyHistogram, MetricsRegistry,
};
pub use report::{counter_fields, MetricsReport, RelationGauges};
pub use trace::{OpTrace, QueryTrace};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Opt-in per-operator execution tracing, carried on
/// [`crate::store::StoreConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record an [`OpTrace`] tree for every executed query (ad-hoc, batch
    /// member, and cq re-evaluation alike). Off by default.
    pub enabled: bool,
    /// Maximum retained, undrained [`QueryTrace`]s; oldest drop first.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            capacity: 64,
        }
    }
}

impl TraceConfig {
    /// Tracing on, with the default retention capacity.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// The per-store observability hub: histograms, events, retained traces.
///
/// One `Observability` lives on each [`crate::store::RelationStore`]
/// (shared by its `Database`, worker pool instrumentation, and cq engine).
/// All recording entry points are `&self` and thread-safe.
#[derive(Debug)]
pub struct Observability {
    registry: MetricsRegistry,
    events: EventRing,
    traces: Mutex<VecDeque<QueryTrace>>,
    trace_enabled: AtomicBool,
    trace_capacity: usize,
    trace_seq: AtomicU64,
}

impl Default for Observability {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

impl Observability {
    /// Builds the hub with the given tracing configuration.
    pub fn new(config: TraceConfig) -> Self {
        Self {
            registry: MetricsRegistry::default(),
            events: EventRing::default(),
            traces: Mutex::new(VecDeque::new()),
            trace_enabled: AtomicBool::new(config.enabled),
            trace_capacity: config.capacity.max(1),
            trace_seq: AtomicU64::new(0),
        }
    }

    /// Records one latency sample. Lock-free and allocation-free.
    pub fn record(&self, kind: HistogramKind, duration: Duration) {
        self.registry.record(kind, duration);
    }

    /// A snapshot of one latency histogram.
    pub fn histogram(&self, kind: HistogramKind) -> HistogramSnapshot {
        self.registry.snapshot(kind)
    }

    /// Snapshots of every latency histogram, in [`HistogramKind::ALL`]
    /// order.
    pub fn histograms(&self) -> Vec<(HistogramKind, HistogramSnapshot)> {
        self.registry.snapshots()
    }

    /// Records a lifecycle event into the bounded ring.
    pub fn event(&self, kind: EventKind, detail: String) {
        self.events.record(kind, detail);
    }

    /// Removes and returns every pending lifecycle event, oldest first.
    pub fn drain_events(&self) -> Vec<Event> {
        self.events.drain()
    }

    /// Number of pending (recorded but undrained) lifecycle events.
    pub fn events_pending(&self) -> usize {
        self.events.len()
    }

    /// Whether per-operator tracing is currently on.
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled.load(Ordering::Relaxed)
    }

    /// Turns per-operator tracing on or off at runtime.
    pub fn set_trace_enabled(&self, enabled: bool) {
        self.trace_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Retains one traced execution (bounded: the oldest undrained trace
    /// drops first). Callers check [`Observability::trace_enabled`] before
    /// building the trace, so a disabled hub never reaches here.
    pub fn push_trace(&self, label: String, root: OpTrace) {
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        let mut traces = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        if traces.len() == self.trace_capacity {
            traces.pop_front();
        }
        traces.push_back(QueryTrace { seq, label, root });
    }

    /// Removes and returns every retained trace, oldest first.
    pub fn drain_traces(&self) -> Vec<QueryTrace> {
        self.traces
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::strategy::{SelectStrategy, Strategy};

    fn trace() -> OpTrace {
        OpTrace {
            name: "knn-select",
            strategy: Strategy::Select(SelectStrategy::FilteredKernel),
            rows: 3,
            wall: Duration::from_micros(10),
            inclusive: twoknn_index::Metrics::default(),
            children: Vec::new(),
        }
    }

    #[test]
    fn tracing_toggles_and_traces_are_bounded() {
        let obs = Observability::new(TraceConfig {
            enabled: false,
            capacity: 2,
        });
        assert!(!obs.trace_enabled());
        obs.set_trace_enabled(true);
        assert!(obs.trace_enabled());
        for i in 0..3 {
            obs.push_trace(format!("q{i}"), trace());
        }
        let drained = obs.drain_traces();
        assert_eq!(drained.len(), 2, "capacity bound drops the oldest");
        assert_eq!(drained[0].label, "q1");
        assert_eq!(drained[1].seq, drained[0].seq + 1);
        assert!(obs.drain_traces().is_empty());
    }

    #[test]
    fn histograms_and_events_flow_through_the_hub() {
        let obs = Observability::default();
        obs.record(HistogramKind::Checkpoint, Duration::from_millis(2));
        assert_eq!(obs.histogram(HistogramKind::Checkpoint).count, 1);
        obs.event(EventKind::Checkpoint, "2 shards spilled".into());
        assert_eq!(obs.events_pending(), 1);
        let events = obs.drain_events();
        assert_eq!(events[0].kind, EventKind::Checkpoint);
        assert_eq!(obs.events_pending(), 0);
    }
}
