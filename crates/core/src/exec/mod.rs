//! Execution modes and the multi-core work-partitioning substrate.
//!
//! Every hot-path algorithm in this crate is written as a loop over
//! independent work items (outer blocks, contributing blocks, query specs).
//! [`run_partitioned`] abstracts that loop behind an [`ExecutionMode`]:
//!
//! * [`ExecutionMode::Serial`] — a plain iteration on the calling thread;
//! * [`ExecutionMode::Pooled`] — the default parallel mode: items are
//!   distributed over the persistent, lazily-initialized [`WorkerPool`]
//!   shared by the whole process. Batch-level tasks
//!   ([`Database::execute_batch`](crate::plan::Database::execute_batch)) and
//!   the operator-level block tasks they spawn go through the **same
//!   queue**, so the thread budget is one global number and nested
//!   parallelism never oversubscribes the machine;
//! * [`ExecutionMode::Parallel`] — the legacy spawn-per-phase mode: a fresh
//!   scoped-thread team per call. Kept for explicit thread-count control and
//!   as the baseline the `ablation_pool` bench compares the pool against.
//!
//! # Scheduling and the determinism guarantee
//!
//! Parallel runs (pooled or scoped) use dynamic scheduling: team members
//! pull the next item index from a shared atomic cursor, so one expensive
//! item cannot serialize the run the way fixed chunking would. Each member
//! accumulates rows tagged with their item index and its own private
//! [`Metrics`]; the driver then sorts the tagged outputs back into item
//! order and merges the per-member counters. **Every mode produces
//! byte-for-byte the same rows in the same order** — the execution mode is
//! a performance knob, never a semantics knob — and, for algorithms whose
//! per-item work is schedule-independent, the merged counters equal the
//! serial run's too. The one exception is the cached chained join, whose
//! per-chunk caches legitimately change the hit pattern (and hence
//! `neighborhoods_computed`) under parallel partitioning.
//! `tests/physical_plan_equivalence.rs` enforces row equality across all
//! query shapes, strategies and index types, and metrics equality for
//! everything but that cached join.
//!
//! Single-item and single-thread inputs short-circuit to the plain serial
//! loop before any pool submission or thread spawn, so trivial phases pay
//! no synchronization cost.
//!
//! Real threading is engaged by the mode-driven entry points only with the
//! `parallel` cargo feature; the APIs are identical without it (everything
//! degrades to serial), so callers never need `cfg` gates. The worker pool
//! itself is plain `std` and always compiled — explicit-pool entry points
//! like [`run_partitioned_on`] are feature-independent.

pub mod pool;

pub use pool::WorkerPool;

use twoknn_index::Metrics;

/// How an operator should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Single-threaded execution.
    Serial,
    /// Multi-core execution over the shared persistent [`WorkerPool`]
    /// (the pool of the current worker thread when already running inside a
    /// pool job, the global pool otherwise). Falls back to serial when the
    /// `parallel` feature is off.
    Pooled,
    /// Multi-core execution over `threads` freshly spawned scoped worker
    /// threads (clamped to at least 1) — one team per call. Prefer
    /// [`ExecutionMode::Pooled`]; this mode remains for explicit
    /// thread-count control and as the spawn-per-phase ablation baseline.
    /// Falls back to serial when the `parallel` feature is off.
    Parallel {
        /// Number of worker threads to use.
        threads: usize,
    },
}

impl ExecutionMode {
    /// Parallel execution over all available cores with a scoped thread team
    /// per call (the spawn-per-phase baseline; prefer
    /// [`ExecutionMode::pooled`]).
    pub fn parallel() -> Self {
        ExecutionMode::Parallel {
            threads: available_threads(),
        }
    }

    /// Execution on the shared persistent worker pool.
    pub fn pooled() -> Self {
        ExecutionMode::Pooled
    }

    /// The mode the [`crate::plan::Database`] driver uses when none is given:
    /// the shared worker pool when the `parallel` feature is enabled, serial
    /// otherwise.
    pub fn default_mode() -> Self {
        if cfg!(feature = "parallel") {
            ExecutionMode::Pooled
        } else {
            ExecutionMode::Serial
        }
    }

    /// The number of worker threads this mode will actually use.
    ///
    /// Always 1 for [`ExecutionMode::Serial`], and 1 for any mode when the
    /// `parallel` feature is disabled. For [`ExecutionMode::Pooled`] this is
    /// the parallelism of the pool the current thread submits to.
    pub fn effective_threads(&self) -> usize {
        match self {
            ExecutionMode::Serial => 1,
            ExecutionMode::Pooled => {
                if cfg!(feature = "parallel") {
                    WorkerPool::current().parallelism()
                } else {
                    1
                }
            }
            ExecutionMode::Parallel { threads } => {
                if cfg!(feature = "parallel") {
                    (*threads).max(1)
                } else {
                    1
                }
            }
        }
    }
}

impl Default for ExecutionMode {
    fn default() -> Self {
        ExecutionMode::default_mode()
    }
}

/// Number of worker threads to use by default (at least 1): the
/// `TWOKNN_THREADS` environment variable when set to a positive integer,
/// otherwise the hardware thread count.
///
/// The override exists so CI (and operators) can pin the global pool to a
/// known small size — pool scheduling bugs must not be able to hide behind
/// machine core counts.
pub fn available_threads() -> usize {
    if let Ok(value) = std::env::var("TWOKNN_THREADS") {
        if let Ok(threads) = value.trim().parse::<usize>() {
            if threads >= 1 {
                return threads;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `work` once per item, serially or across threads per `mode`.
///
/// `work` receives the item, an output vector to push result rows into, and a
/// metrics accumulator. Outputs are concatenated **in item order** regardless
/// of the schedule, and every worker's metrics are merged into `metrics`, so
/// serial and parallel runs report identical rows and identical work
/// counters (for algorithms whose per-item work is schedule-independent).
///
/// Inputs with a single item, or modes with a single effective thread, run
/// the plain serial loop directly — no pool submission, no thread spawn, no
/// tag-and-sort reassembly.
pub fn run_partitioned<T, R, F>(
    items: &[T],
    mode: ExecutionMode,
    metrics: &mut Metrics,
    work: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut Vec<R>, &mut Metrics) + Sync,
{
    let threads = mode.effective_threads().min(items.len());
    if threads <= 1 {
        return run_serial(items, metrics, &work);
    }
    match mode {
        ExecutionMode::Serial => unreachable!("serial mode short-circuits above"),
        ExecutionMode::Pooled => run_pooled(items, &WorkerPool::current(), threads, metrics, &work),
        ExecutionMode::Parallel { .. } => run_threaded(items, threads, metrics, &work),
    }
}

/// Runs `work` once per item, partitioned over an **explicit** worker pool
/// (the pool's full parallelism, clamped by the item count).
///
/// This is the feature-independent entry point behind
/// [`Database::execute_batch`](crate::plan::Database::execute_batch) and the
/// pool test-suite; mode-driven callers should use [`run_partitioned`] with
/// [`ExecutionMode::Pooled`]. Ordering and metrics-merge semantics are
/// identical to [`run_partitioned`].
pub fn run_partitioned_on<T, R, F>(
    items: &[T],
    pool: &WorkerPool,
    metrics: &mut Metrics,
    work: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut Vec<R>, &mut Metrics) + Sync,
{
    let threads = pool.parallelism().min(items.len());
    if threads <= 1 {
        // Serial short-circuit, but still bound to `pool`: nested
        // `Pooled`-mode runs inside `work` must budget against this pool,
        // not drift to the global one.
        return pool.bind(|| run_serial(items, metrics, &work));
    }
    run_pooled(items, pool, threads, metrics, &work)
}

/// Runs `work` once per *block*, pushing result rows. Thin alias over
/// [`run_partitioned`] for the common block-partitioned algorithms.
pub fn run_over_blocks<R, F>(
    blocks: &[twoknn_index::BlockMeta],
    mode: ExecutionMode,
    metrics: &mut Metrics,
    work: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(twoknn_index::BlockMeta, &mut Vec<R>, &mut Metrics) + Sync,
{
    run_partitioned(blocks, mode, metrics, |block, out, metrics| {
        work(*block, out, metrics)
    })
}

/// Per-team-member output rows tagged with their item index, awaiting the
/// order-restoring sort.
type TaggedRows<R> = Vec<(usize, Vec<R>)>;

/// The single-threaded fallback every entry point short-circuits to.
fn run_serial<T, R, F>(items: &[T], metrics: &mut Metrics, work: &F) -> Vec<R>
where
    F: Fn(&T, &mut Vec<R>, &mut Metrics),
{
    let mut out = Vec::new();
    for item in items {
        work(item, &mut out, metrics);
    }
    out
}

/// Dynamic-scheduled partitioned run on a persistent [`WorkerPool`]:
/// `threads − 1` copies of the cursor-pulling task are broadcast to the pool
/// and the calling thread joins as the final team member. Per-member tagged
/// outputs are reassembled in item order and per-member metrics merged — the
/// exact semantics of [`run_threaded`] without the per-call thread spawn.
fn run_pooled<T, R, F>(
    items: &[T],
    pool: &WorkerPool,
    threads: usize,
    metrics: &mut Metrics,
    work: &F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut Vec<R>, &mut Metrics) + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let cursor = AtomicUsize::new(0);
    let gathered: Mutex<(TaggedRows<R>, Metrics)> =
        Mutex::new((Vec::with_capacity(items.len()), Metrics::default()));
    pool.broadcast(threads - 1, &|| {
        let mut local_metrics = Metrics::default();
        let mut local: TaggedRows<R> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            let mut out = Vec::new();
            work(&items[i], &mut out, &mut local_metrics);
            local.push((i, out));
        }
        let mut shared = gathered
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shared.0.extend(local);
        shared.1.merge(&local_metrics);
    });
    let (mut tagged, worker_metrics) = gathered
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    metrics.merge(&worker_metrics);
    // Restore item order for deterministic output.
    tagged.sort_unstable_by_key(|(i, _)| *i);
    let mut out = Vec::with_capacity(tagged.iter().map(|(_, v)| v.len()).sum());
    for (_, mut v) in tagged {
        out.append(&mut v);
    }
    out
}

/// The spawn-per-phase baseline: a fresh scoped-thread team for this call,
/// with the same dynamic scheduling and order-restoring reassembly as
/// [`run_pooled`].
#[cfg(feature = "parallel")]
fn run_threaded<T, R, F>(items: &[T], threads: usize, metrics: &mut Metrics, work: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut Vec<R>, &mut Metrics) + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Dynamic scheduling: workers pull the next item index from a shared
    // counter, so a single expensive item (e.g. one dense block) cannot
    // serialize the run the way fixed chunking would.
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, Vec<R>)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut local_metrics = Metrics::default();
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let mut out = Vec::new();
                    work(&items[i], &mut out, &mut local_metrics);
                    local.push((i, out));
                }
                (local, local_metrics)
            }));
        }
        for handle in handles {
            let (local, local_metrics) = handle.join().expect("worker thread panicked");
            metrics.merge(&local_metrics);
            tagged.extend(local);
        }
    });
    // Restore item order for deterministic output.
    tagged.sort_unstable_by_key(|(i, _)| *i);
    let mut out = Vec::with_capacity(tagged.iter().map(|(_, v)| v.len()).sum());
    for (_, mut v) in tagged {
        out.append(&mut v);
    }
    out
}

#[cfg(not(feature = "parallel"))]
fn run_threaded<T, R, F>(items: &[T], _threads: usize, metrics: &mut Metrics, work: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut Vec<R>, &mut Metrics) + Sync,
{
    run_serial(items, metrics, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_produce_identical_ordered_output() {
        let items: Vec<u64> = (0..1_000).collect();
        let work = |item: &u64, out: &mut Vec<u64>, metrics: &mut Metrics| {
            metrics.points_scanned += 1;
            out.push(item * 2);
            if item % 3 == 0 {
                out.push(item * 2 + 1);
            }
        };
        let mut m_serial = Metrics::default();
        let serial = run_partitioned(&items, ExecutionMode::Serial, &mut m_serial, work);
        let mut m_par = Metrics::default();
        let parallel = run_partitioned(
            &items,
            ExecutionMode::Parallel { threads: 7 },
            &mut m_par,
            work,
        );
        assert_eq!(serial, parallel);
        assert_eq!(m_serial, m_par);
        assert_eq!(m_serial.points_scanned, 1_000);
    }

    #[test]
    fn serial_and_pooled_produce_identical_ordered_output() {
        let items: Vec<u64> = (0..1_000).collect();
        let work = |item: &u64, out: &mut Vec<u64>, metrics: &mut Metrics| {
            metrics.points_scanned += 1;
            out.push(item * 2);
            if item % 7 == 0 {
                out.push(item * 2 + 1);
            }
        };
        let mut m_serial = Metrics::default();
        let serial = run_partitioned(&items, ExecutionMode::Serial, &mut m_serial, work);
        let mut m_pool = Metrics::default();
        let pooled = run_partitioned(&items, ExecutionMode::Pooled, &mut m_pool, work);
        assert_eq!(serial, pooled);
        assert_eq!(m_serial, m_pool);
    }

    #[test]
    fn empty_input_is_fine_in_every_mode() {
        let items: Vec<u64> = Vec::new();
        for mode in [
            ExecutionMode::Serial,
            ExecutionMode::parallel(),
            ExecutionMode::Pooled,
        ] {
            let mut m = Metrics::default();
            let out = run_partitioned(&items, mode, &mut m, |_, _out: &mut Vec<u64>, _| {});
            assert!(out.is_empty());
        }
    }

    #[test]
    fn single_item_input_short_circuits_in_every_mode() {
        let items = [41u64];
        for mode in [
            ExecutionMode::Serial,
            ExecutionMode::Parallel { threads: 8 },
            ExecutionMode::Pooled,
        ] {
            let mut m = Metrics::default();
            let out = run_partitioned(&items, mode, &mut m, |item, out, m| {
                m.points_scanned += 1;
                out.push(item + 1);
            });
            assert_eq!(out, vec![42]);
            assert_eq!(m.points_scanned, 1);
        }
    }

    #[test]
    fn effective_threads_is_at_least_one() {
        assert_eq!(ExecutionMode::Serial.effective_threads(), 1);
        let p = ExecutionMode::Parallel { threads: 0 };
        assert!(p.effective_threads() >= 1);
        assert!(ExecutionMode::Pooled.effective_threads() >= 1);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn default_mode_matches_the_parallel_feature() {
        if cfg!(feature = "parallel") {
            assert_eq!(ExecutionMode::default_mode(), ExecutionMode::Pooled);
        } else {
            assert_eq!(ExecutionMode::default_mode(), ExecutionMode::Serial);
        }
    }
}
