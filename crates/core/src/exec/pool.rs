//! A persistent, lazily-initialized worker pool — the shared execution
//! runtime behind [`ExecutionMode::Pooled`](super::ExecutionMode::Pooled).
//!
//! # Why a pool
//!
//! The scoped-thread path ([`ExecutionMode::Parallel`](super::ExecutionMode))
//! spawns a fresh thread team for *every operator phase*. A multi-phase plan
//! (e.g. a chained join evaluating two joins plus an intersection) or a batch
//! of thousands of queries pays thread-creation cost per phase per query.
//! [`WorkerPool`] amortizes that cost: worker threads are spawned once, on
//! first use, and every execution layer — batch-level query tasks and
//! operator-level block tasks alike — submits jobs to the **same queue**, so
//! the process-wide thread budget is a single number no matter how deeply the
//! layers nest.
//!
//! # Scheduling model
//!
//! The pool is a plain `std` construct: a `Mutex<VecDeque>` of boxed jobs
//! with a `Condvar` for parking idle workers. Work enters through
//! [`WorkerPool::broadcast`], which enqueues up to `parallelism − 1` copies
//! of a task and then **runs the task inline on the calling thread** as the
//! final team member. The caller participating has two consequences:
//!
//! * a pool of parallelism 1 has no worker threads at all — every broadcast
//!   degenerates to a plain inline call, so nested submissions can never
//!   deadlock on an empty worker set;
//! * when all workers are busy (e.g. saturated by sibling batch tasks), the
//!   caller *reclaims* its still-queued copies and runs them inline, so a
//!   nested broadcast never waits on queue slots it could serve itself.
//!
//! Together these make nesting safe by construction: a batch task that
//! submits block tasks into the same pool always makes progress on its own
//! thread, and only ever blocks on jobs that some worker is actively
//! running.
//!
//! # Panic containment
//!
//! Every job runs under `catch_unwind`. A panicking job cannot poison the
//! pool — the worker thread survives and keeps serving subsequent queries —
//! and the panic payload is re-raised on the thread that called
//! [`WorkerPool::broadcast`], so the error surfaces exactly where a scoped
//! spawn would have surfaced it.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, OnceLock, PoisonError, Weak};

/// A type-erased job queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued job tagged with the scope that submitted it, so a waiting
/// scope can recognize (and reclaim) its own still-unstarted jobs.
struct QueuedJob {
    scope: Arc<ScopeState>,
    job: Job,
}

/// Queue state behind the pool mutex.
struct Queue {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    queue: Mutex<Queue>,
    job_ready: Condvar,
    /// Detached ([`WorkerPool::spawn`]) jobs submitted and not yet finished.
    /// `broadcast` scopes are synchronous and never counted here.
    detached: Mutex<usize>,
    /// Signalled whenever `detached` drops to zero — what
    /// [`WorkerPool::wait_idle`] parks on.
    idle: Condvar,
}

/// Counts one detached job as in-flight for its whole lifetime. Decrements on
/// drop, so a panicking job (unwound under `catch_unwind`) still checks out.
struct DetachedToken {
    shared: Arc<PoolShared>,
}

impl DetachedToken {
    fn check_in(shared: &Arc<PoolShared>) -> Self {
        *lock_ignore_poison(&shared.detached) += 1;
        Self {
            shared: Arc::clone(shared),
        }
    }
}

impl Drop for DetachedToken {
    fn drop(&mut self) {
        let mut in_flight = lock_ignore_poison(&self.shared.detached);
        *in_flight -= 1;
        if *in_flight == 0 {
            self.shared.idle.notify_all();
        }
    }
}

/// Completion tracking for one `broadcast` call.
struct ScopeState {
    sync: Mutex<ScopeSync>,
    done: Condvar,
}

struct ScopeSync {
    /// Jobs submitted to the queue and not yet completed (run by a worker or
    /// reclaimed and run by the submitter).
    pending: usize,
    /// First panic payload observed in a job of this scope, if any.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl ScopeState {
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut sync = lock_ignore_poison(&self.sync);
        sync.pending -= 1;
        if let Some(payload) = panic {
            sync.panic.get_or_insert(payload);
        }
        if sync.pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Locks a mutex, ignoring poisoning: jobs run under `catch_unwind`, so a
/// poisoned lock only means some *other* job panicked — the protected state
/// (a job queue / a completion counter) stays valid.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// The pool a worker thread belongs to (unset on non-pool threads).
    /// Consulted by [`WorkerPool::current`] so that nested submissions from
    /// inside a pool job land in the **same** pool's queue.
    static CURRENT_POOL: RefCell<Option<Weak<WorkerPool>>> = const { RefCell::new(None) };
}

/// Restores the previous `CURRENT_POOL` binding on drop, so a caller that
/// temporarily acts as a team member of one pool does not stay associated
/// with it afterwards.
struct CurrentPoolGuard {
    previous: Option<Weak<WorkerPool>>,
}

impl CurrentPoolGuard {
    fn enter(pool: Weak<WorkerPool>) -> Self {
        let previous = CURRENT_POOL.with(|slot| slot.borrow_mut().replace(pool));
        CurrentPoolGuard { previous }
    }
}

impl Drop for CurrentPoolGuard {
    fn drop(&mut self) {
        CURRENT_POOL.with(|slot| *slot.borrow_mut() = self.previous.take());
    }
}

/// A persistent team of worker threads with a shared job queue.
///
/// See the [module docs](self) for the scheduling model. Construct explicit
/// pools with [`WorkerPool::new`] (mostly for tests and benchmarks); regular
/// execution goes through the lazily-initialized process-wide pool returned
/// by [`WorkerPool::global`].
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    parallelism: usize,
    /// Spawns the worker threads on first submission (lazy initialization:
    /// merely creating a pool — or the global handle — starts no threads).
    spawn: Once,
    /// Weak self-reference handed to worker threads for [`WorkerPool::current`].
    self_ref: Weak<WorkerPool>,
}

impl WorkerPool {
    /// Creates a pool with the given total parallelism (clamped to at least
    /// 1). A pool of parallelism `n` spawns `n − 1` worker threads — the
    /// thread calling [`WorkerPool::broadcast`] is always the `n`-th team
    /// member. Threads are spawned lazily on the first submission.
    pub fn new(parallelism: usize) -> Arc<Self> {
        Arc::new_cyclic(|self_ref| WorkerPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(Queue {
                    jobs: VecDeque::new(),
                    shutdown: false,
                }),
                job_ready: Condvar::new(),
                detached: Mutex::new(0),
                idle: Condvar::new(),
            }),
            parallelism: parallelism.max(1),
            spawn: Once::new(),
            self_ref: self_ref.clone(),
        })
    }

    /// The process-wide shared pool, created on first use with
    /// [`available_threads`](super::available_threads) parallelism (which
    /// honors the `TWOKNN_THREADS` override).
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(super::available_threads()))
    }

    /// The pool the current thread should submit to: the pool this thread
    /// serves (when called from inside a pool job) or the [global
    /// pool](WorkerPool::global). This is what keeps batch-level tasks and
    /// the block-level tasks they spawn in **one** queue with one thread
    /// budget.
    pub fn current() -> Arc<WorkerPool> {
        CURRENT_POOL
            .with(|slot| slot.borrow().as_ref().and_then(Weak::upgrade))
            .unwrap_or_else(|| Arc::clone(WorkerPool::global()))
    }

    /// Total parallelism of this pool: worker threads plus the submitting
    /// caller.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Runs `task` with the calling thread bound to this pool, so any
    /// `Pooled`-mode execution `task` performs resolves
    /// [`WorkerPool::current`] to this pool rather than the global one.
    ///
    /// [`WorkerPool::broadcast`] binds automatically; this explicit variant
    /// exists for paths that sidestep `broadcast` (e.g. a batch that
    /// short-circuits to a serial loop on a parallelism-1 pool) but must
    /// still confine nested submissions to this pool's thread budget.
    pub fn bind<R>(&self, task: impl FnOnce() -> R) -> R {
        let _bind = CurrentPoolGuard::enter(self.self_ref.clone());
        task()
    }

    /// Runs `task` concurrently on up to `extra` pool workers *and* on the
    /// calling thread, returning once every started copy has finished.
    ///
    /// This is the pool's only submission primitive, shaped for the
    /// cursor-pulling loops of [`run_partitioned`](super::run_partitioned):
    /// every copy of `task` is identical and drains a shared work cursor, so
    /// it never matters which copies actually get picked up by workers. If
    /// the workers are busy, the caller reclaims its still-queued copies and
    /// runs them inline — submission can therefore never deadlock, no matter
    /// how deeply broadcasts nest into the same pool.
    ///
    /// A panic in any copy (worker or inline) is caught, the remaining team
    /// members are still awaited, and the first panic payload is then
    /// re-raised on the calling thread. The worker threads themselves always
    /// survive.
    pub fn broadcast<F>(&self, extra: usize, task: &F)
    where
        F: Fn() + Sync,
    {
        let copies = extra.min(self.parallelism - 1);
        // The caller is bound to this pool while it acts as a team member, so
        // nested `Pooled`-mode runs land in this queue even from the inline
        // portion of the team.
        let _bind = CurrentPoolGuard::enter(self.self_ref.clone());
        if copies == 0 {
            // Parallelism 1 (or nothing to fan out): a plain call, no queue
            // traffic, panics propagate natively.
            task();
            return;
        }
        self.ensure_workers();

        let scope = Arc::new(ScopeState {
            sync: Mutex::new(ScopeSync {
                pending: copies,
                panic: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut queue = lock_ignore_poison(&self.shared.queue);
            for _ in 0..copies {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(task);
                // SAFETY: the job borrows `task` (and whatever `task`
                // borrows from the caller's stack). `broadcast` does not
                // return — not even by unwinding, the inline call below is
                // caught — until `scope.pending` reaches zero, and every
                // queued copy either completes on a worker or is reclaimed
                // from the queue and completed inline before that counter
                // can reach zero. The borrows therefore strictly outlive
                // every execution of the erased job.
                #[allow(unsafe_code)]
                let job = unsafe { erase_job_lifetime(job) };
                queue.jobs.push_back(QueuedJob {
                    scope: Arc::clone(&scope),
                    job,
                });
            }
        }
        if copies == 1 {
            self.shared.job_ready.notify_one();
        } else {
            self.shared.job_ready.notify_all();
        }

        // The caller is the final team member: run the task inline. Catch a
        // panic so the in-flight copies are still awaited (the queued jobs
        // borrow stack data of this frame — returning early would free it
        // under them).
        let inline_panic = catch_unwind(AssertUnwindSafe(task)).err();

        // Reclaim our still-unstarted jobs: if every worker is busy with
        // other scopes, nobody else will ever pop them, and waiting for them
        // would deadlock. Running them here is equivalent — all copies are
        // identical.
        loop {
            let reclaimed = {
                let mut queue = lock_ignore_poison(&self.shared.queue);
                queue
                    .jobs
                    .iter()
                    .position(|entry| Arc::ptr_eq(&entry.scope, &scope))
                    .and_then(|at| queue.jobs.remove(at))
            };
            match reclaimed {
                Some(entry) => run_job(entry),
                None => break,
            }
        }

        // Wait for the copies some worker did pick up.
        let mut sync = lock_ignore_poison(&scope.sync);
        while sync.pending > 0 {
            sync = scope
                .done
                .wait(sync)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let job_panic = sync.panic.take();
        drop(sync);

        if let Some(payload) = inline_panic.or(job_panic) {
            resume_unwind(payload);
        }
    }

    /// Submits a detached, fire-and-forget job to the pool.
    ///
    /// Unlike [`WorkerPool::broadcast`] the caller does **not** wait for the
    /// job — it is queued for whichever worker frees up first and runs
    /// concurrently with everything else on the pool, sharing the same
    /// thread budget. This is the entry point for background maintenance
    /// work (e.g. the relation store's index rebuilds): the job typically
    /// fans its own inner work out with
    /// [`run_partitioned_on`](super::run_partitioned_on), which is safe to
    /// nest from a worker thread.
    ///
    /// Two deliberate semantic differences from `broadcast`:
    ///
    /// * on a parallelism-1 pool there are no worker threads, so the job
    ///   runs **inline on the caller** — "background" degrades to
    ///   synchronous, which keeps behavior deterministic on pinned
    ///   single-thread pools (`TWOKNN_THREADS=1`);
    /// * a panic in a detached job is caught and **discarded** (the worker
    ///   survives); jobs that must react to failure catch it themselves.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let token = DetachedToken::check_in(&self.shared);
        if self.parallelism == 1 {
            // No workers exist; bind so nested Pooled-mode work still
            // budgets against this pool.
            let _bind = CurrentPoolGuard::enter(self.self_ref.clone());
            let _ = catch_unwind(AssertUnwindSafe(job));
            drop(token);
            return;
        }
        self.ensure_workers();
        // A detached scope: `pending` is decremented by `run_job` as usual,
        // but nobody ever waits on `done` and any panic payload is dropped
        // with the scope.
        let scope = Arc::new(ScopeState {
            sync: Mutex::new(ScopeSync {
                pending: 1,
                panic: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut queue = lock_ignore_poison(&self.shared.queue);
            queue.jobs.push_back(QueuedJob {
                scope,
                // The token moves into the job: it checks out when the job
                // body returns — or unwinds — on whichever worker ran it.
                job: Box::new(move || {
                    let _in_flight = token;
                    job();
                }),
            });
        }
        self.shared.job_ready.notify_one();
    }

    /// Blocks until every detached job ([`WorkerPool::spawn`]) submitted to
    /// this pool has finished — including jobs that other jobs spawn while
    /// the caller waits (the in-flight count only reaches zero once the
    /// whole cascade has drained).
    ///
    /// This is the deterministic replacement for sleep/poll loops around
    /// background compaction and continuous-query maintenance: after
    /// `wait_idle` returns, every maintenance effect scheduled so far is
    /// published. `broadcast` work is synchronous and never waited on here.
    ///
    /// Must not be called from inside a detached job of the same pool (the
    /// caller would wait for itself).
    pub fn wait_idle(&self) {
        let mut in_flight = lock_ignore_poison(&self.shared.detached);
        while *in_flight > 0 {
            in_flight = self
                .shared
                .idle
                .wait(in_flight)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Number of queued jobs not yet picked up by a worker — an
    /// instantaneous observability gauge (the value may be stale by the time
    /// the caller reads it).
    pub fn queue_depth(&self) -> usize {
        lock_ignore_poison(&self.shared.queue).jobs.len()
    }

    /// Number of detached ([`WorkerPool::spawn`]) jobs currently in flight
    /// (queued or running). An instantaneous observability gauge.
    pub fn detached_in_flight(&self) -> usize {
        *lock_ignore_poison(&self.shared.detached)
    }

    /// Spawns the worker threads exactly once.
    fn ensure_workers(&self) {
        self.spawn.call_once(|| {
            for worker in 0..self.parallelism - 1 {
                let shared = Arc::clone(&self.shared);
                let pool = self.self_ref.clone();
                std::thread::Builder::new()
                    .name(format!("twoknn-pool-{worker}"))
                    .spawn(move || worker_loop(pool, &shared))
                    .expect("failed to spawn worker-pool thread");
            }
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Wake parked workers so they observe the shutdown and exit; workers
        // mid-job finish their job first (scopes hold a borrow of the pool,
        // so no scope can still be waiting when the last handle drops).
        lock_ignore_poison(&self.shared.queue).shutdown = true;
        self.shared.job_ready.notify_all();
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("parallelism", &self.parallelism)
            .finish_non_exhaustive()
    }
}

/// Erases the lifetime of a boxed job so it can sit in the pool's 'static
/// queue.
///
/// # Safety
///
/// The caller must guarantee the job is executed (or dropped) before any
/// data it borrows goes out of scope. [`WorkerPool::broadcast`] upholds this
/// by blocking — across panics too — until every submitted job has
/// completed.
#[allow(unsafe_code)]
unsafe fn erase_job_lifetime(job: Box<dyn FnOnce() + Send + '_>) -> Job {
    std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job)
}

/// Runs one queued job under `catch_unwind` and reports its completion (and
/// any panic payload) to the owning scope.
fn run_job(entry: QueuedJob) {
    let QueuedJob { scope, job } = entry;
    let panic = catch_unwind(AssertUnwindSafe(job)).err();
    scope.complete(panic);
}

/// The worker-thread main loop: pop a job or park until one arrives.
fn worker_loop(pool: Weak<WorkerPool>, shared: &Arc<PoolShared>) {
    // Permanently bind this thread to its pool so jobs that submit nested
    // work (a batch task running a Pooled-mode operator) reuse this pool's
    // queue instead of reaching for the global pool.
    CURRENT_POOL.with(|slot| *slot.borrow_mut() = Some(pool));
    loop {
        let entry = {
            let mut queue = lock_ignore_poison(&shared.queue);
            loop {
                if let Some(entry) = queue.jobs.pop_front() {
                    break entry;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .job_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_job(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_partitioned_on;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use twoknn_index::Metrics;

    #[test]
    fn broadcast_runs_every_team_member_to_completion() {
        let pool = WorkerPool::new(4);
        let calls = AtomicUsize::new(0);
        pool.broadcast(3, &|| {
            calls.fetch_add(1, Ordering::SeqCst);
        });
        // 3 worker copies + the inline caller.
        assert_eq!(calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn parallelism_one_pool_runs_inline_without_workers() {
        let pool = WorkerPool::new(1);
        let calls = AtomicUsize::new(0);
        pool.broadcast(16, &|| {
            calls.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pooled_run_matches_serial_rows_and_metrics() {
        let pool = WorkerPool::new(5);
        let items: Vec<u64> = (0..2_000).collect();
        let work = |item: &u64, out: &mut Vec<u64>, metrics: &mut Metrics| {
            metrics.points_scanned += 1;
            out.push(item * 3);
            if item % 5 == 0 {
                out.push(item + 1);
            }
        };
        let mut serial_metrics = Metrics::default();
        let mut serial = Vec::new();
        for item in &items {
            work(item, &mut serial, &mut serial_metrics);
        }
        let mut pooled_metrics = Metrics::default();
        let pooled = run_partitioned_on(&items, &pool, &mut pooled_metrics, work);
        assert_eq!(serial, pooled);
        assert_eq!(serial_metrics, pooled_metrics);
    }

    /// Satellite requirement: a panic in a worker job surfaces on the caller
    /// but must not poison the pool for subsequent queries.
    #[test]
    fn panicking_job_surfaces_and_does_not_poison_the_pool() {
        let pool = WorkerPool::new(3);
        let items: Vec<u32> = (0..64).collect();

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut metrics = Metrics::default();
            run_partitioned_on(
                &items,
                &pool,
                &mut metrics,
                |item, out: &mut Vec<u32>, _| {
                    if *item == 13 {
                        panic!("intentional test panic");
                    }
                    out.push(*item);
                },
            )
        }));
        assert!(outcome.is_err(), "the job panic must reach the caller");

        // The same pool keeps serving work correctly afterwards.
        let mut metrics = Metrics::default();
        let rows = run_partitioned_on(
            &items,
            &pool,
            &mut metrics,
            |item, out: &mut Vec<u32>, m| {
                m.points_scanned += 1;
                out.push(item * 2);
            },
        );
        assert_eq!(rows, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(metrics.points_scanned, items.len() as u64);
    }

    /// Satellite requirement: nested submission — an outer (batch-level) task
    /// submitting inner (block-level) tasks into the same pool — must not
    /// deadlock even when the pool has parallelism 1 (no worker threads).
    #[test]
    fn nested_submission_does_not_deadlock_with_parallelism_one() {
        let pool = WorkerPool::new(1);
        assert_eq!(nested_batch_sum(&pool), expected_nested_sum());
    }

    /// Same nesting with a single worker thread: outer tasks occupy the
    /// worker and the caller, inner tasks must complete via reclaim.
    #[test]
    fn nested_submission_does_not_deadlock_with_one_worker() {
        let pool = WorkerPool::new(2);
        assert_eq!(nested_batch_sum(&pool), expected_nested_sum());
    }

    /// Plenty of nesting pressure on a small pool.
    #[test]
    fn nested_submission_completes_on_a_contended_pool() {
        let pool = WorkerPool::new(3);
        for _ in 0..8 {
            assert_eq!(nested_batch_sum(&pool), expected_nested_sum());
        }
    }

    /// Runs 6 "batch" tasks, each of which runs 32 "block" tasks through the
    /// same pool, and sums all block outputs.
    fn nested_batch_sum(pool: &Arc<WorkerPool>) -> u64 {
        let batches: Vec<u64> = (0..6).collect();
        let blocks: Vec<u64> = (0..32).collect();
        let mut metrics = Metrics::default();
        let per_batch = run_partitioned_on(&batches, pool, &mut metrics, |batch, out, metrics| {
            let inner = run_partitioned_on(
                &blocks,
                &WorkerPool::current(),
                metrics,
                |block, out: &mut Vec<u64>, _| {
                    out.push(batch * 1_000 + block);
                },
            );
            out.push(inner.iter().sum::<u64>());
        });
        per_batch.iter().sum()
    }

    fn expected_nested_sum() -> u64 {
        (0..6u64)
            .flat_map(|batch| (0..32u64).map(move |block| batch * 1_000 + block))
            .sum()
    }

    #[test]
    fn current_resolves_to_the_serving_pool_inside_a_job() {
        let pool = WorkerPool::new(2);
        let matched = AtomicUsize::new(0);
        let expected = Arc::as_ptr(&pool) as usize;
        pool.broadcast(1, &|| {
            if Arc::as_ptr(&WorkerPool::current()) as usize == expected {
                matched.fetch_add(1, Ordering::SeqCst);
            }
        });
        // Both the worker copy and the inline caller must resolve to `pool`.
        assert_eq!(matched.load(Ordering::SeqCst), 2);
    }

    /// Regression: a parallelism-1 explicit pool short-circuits
    /// `run_partitioned_on` to a serial loop, but nested `Pooled`-mode work
    /// inside the tasks must still budget against that pool — it must not
    /// silently drift to the global pool.
    #[test]
    fn serial_short_circuit_still_binds_the_explicit_pool() {
        let pool = WorkerPool::new(1);
        let items = [1u32, 2];
        let mut metrics = Metrics::default();
        let expected = Arc::as_ptr(&pool) as usize;
        let bound = AtomicUsize::new(0);
        run_partitioned_on(&items, &pool, &mut metrics, |_, _out: &mut Vec<u32>, _| {
            if Arc::as_ptr(&WorkerPool::current()) as usize == expected {
                bound.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(bound.load(Ordering::SeqCst), items.len());
    }

    #[test]
    fn spawn_runs_detached_jobs_to_completion() {
        let pool = WorkerPool::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Detached jobs share the queue with broadcasts; a broadcast round
        // trip guarantees workers are awake, then we wait for the stragglers.
        pool.broadcast(2, &|| {});
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while done.load(Ordering::SeqCst) < 16 {
            assert!(
                std::time::Instant::now() < deadline,
                "detached jobs did not complete"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn spawn_on_parallelism_one_runs_inline_and_contains_panics() {
        let pool = WorkerPool::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&ran);
        pool.spawn(move || {
            observed.fetch_add(1, Ordering::SeqCst);
        });
        // Inline on a 1-pool: completion is immediate, no waiting needed.
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        // A panicking detached job must not propagate to the caller.
        pool.spawn(|| panic!("intentional detached panic"));
        let after = Arc::clone(&ran);
        pool.spawn(move || {
            after.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn spawned_job_is_bound_to_its_pool() {
        let pool = WorkerPool::new(2);
        let expected = Arc::as_ptr(&pool) as usize;
        let matched = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&matched);
        pool.spawn(move || {
            if Arc::as_ptr(&WorkerPool::current()) as usize == expected {
                seen.fetch_add(1, Ordering::SeqCst);
            }
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while matched.load(Ordering::SeqCst) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "spawned job did not resolve its pool in time"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn wait_idle_waits_for_every_detached_job() {
        let pool = WorkerPool::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..24 {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(done.load(Ordering::SeqCst), 24);
        // Idempotent on an idle pool.
        pool.wait_idle();
    }

    #[test]
    fn wait_idle_covers_jobs_spawned_by_jobs() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        let inner_done = Arc::clone(&done);
        let inner_pool = Arc::clone(&pool);
        pool.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            // A cascading detached job checked in while the first is still
            // in flight: wait_idle must cover it too.
            inner_pool.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                inner_done.fetch_add(1, Ordering::SeqCst);
            });
        });
        pool.wait_idle();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_idle_survives_panicking_detached_jobs() {
        let pool = WorkerPool::new(2);
        pool.spawn(|| panic!("intentional detached panic"));
        pool.wait_idle(); // the panicked job must still check out
        let ran = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&ran);
        pool.spawn(move || {
            seen.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_idle();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        assert!(Arc::ptr_eq(WorkerPool::global(), WorkerPool::global()));
        assert!(WorkerPool::global().parallelism() >= 1);
    }
}
