//! Unchained kNN-joins: `(A ⋈kNN B) ∩_B (C ⋈kNN B)` (Section 4.1).
//!
//! The `*_with_mode` variants partition their block loops through
//! [`crate::exec::run_over_blocks`]; under the default `Pooled` mode both
//! join phases run on the shared persistent worker pool, so a batch of
//! unchained queries never spawns threads per phase.

use std::collections::{HashMap, HashSet};

use twoknn_geometry::PointId;
use twoknn_index::{get_knn, BlockId, Metrics, SpatialIndex};

use crate::exec::{run_over_blocks, ExecutionMode};
use crate::join::{knn_join_rows_with_mode, knn_join_with_metrics};
use crate::output::{Pair, QueryOutput, Triplet};

/// Parameters of a query with two unchained kNN-joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnchainedJoinQuery {
    /// `k_{A−B}`: the k of the join `A ⋈kNN B`.
    pub k_ab: usize,
    /// `k_{C−B}`: the k of the join `C ⋈kNN B`.
    pub k_cb: usize,
}

impl UnchainedJoinQuery {
    /// Creates a query description.
    pub fn new(k_ab: usize, k_cb: usize) -> Self {
        Self { k_ab, k_cb }
    }
}

/// The conceptually correct QEP of Figure 10: evaluate `(A ⋈kNN B)` and
/// `(C ⋈kNN B)` independently and intersect the two pair sets on their `B`
/// component (`∩_B`), producing `(a, b, c)` triplets.
pub fn unchained_conceptual<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &UnchainedJoinQuery,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    unchained_conceptual_with_mode(a, b, c, query, ExecutionMode::Serial)
}

/// The conceptual unchained QEP under an explicit [`ExecutionMode`]: both
/// independent joins are block-partitioned across worker threads in parallel
/// mode before the `∩_B` intersection.
pub fn unchained_conceptual_with_mode<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &UnchainedJoinQuery,
    mode: ExecutionMode,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();
    let ab_pairs = knn_join_rows_with_mode(a, b, query.k_ab, mode, &mut metrics);
    let cb_pairs = knn_join_rows_with_mode(c, b, query.k_cb, mode, &mut metrics);
    let rows = intersect_on_b(&ab_pairs, &cb_pairs);
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// The **wrong** sequential evaluation of Figures 8 / 9: evaluate one join
/// first and restrict the inner relation of the other join to the `B` points
/// produced by the first. Present only to demonstrate the non-equivalence.
///
/// When `ab_first` is true this reproduces Figure 8 (`A ⋈kNN B` first),
/// otherwise Figure 9 (`C ⋈kNN B` first).
pub fn unchained_wrong_sequential<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &UnchainedJoinQuery,
    ab_first: bool,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + ?Sized,
    B: SpatialIndex + ?Sized,
    C: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let rows = if ab_first {
        let ab_pairs = knn_join_with_metrics(a, b, query.k_ab, &mut metrics);
        // Restrict B to the matched points and join C against that subset.
        let b_subset: Vec<_> = dedup_right_points(&ab_pairs);
        let cb_pairs = join_against_points(c, &b_subset, query.k_cb, &mut metrics);
        intersect_on_b(&ab_pairs, &cb_pairs)
    } else {
        let cb_pairs = knn_join_with_metrics(c, b, query.k_cb, &mut metrics);
        let b_subset: Vec<_> = dedup_right_points(&cb_pairs);
        let ab_pairs = join_against_points(a, &b_subset, query.k_ab, &mut metrics);
        intersect_on_b(&ab_pairs, &cb_pairs)
    };
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// The efficient evaluation of Section 4.1.1 (Procedure 4).
///
/// The first join (`A ⋈kNN B`) is evaluated in full. The blocks of `B` that
/// contain at least one matched `b` point are marked **Candidate**; all other
/// `B` blocks are **Safe**. Before evaluating the second join, every block of
/// `C` is classified: if the block's region itself holds a matched `b` point
/// it is Contributing outright; otherwise the neighborhood of the block's
/// center (over `B`, with `k_{C−B}`) is computed, the search threshold is its
/// radius plus the block diagonal, and the block is Non-Contributing when no
/// Candidate `B` block lies fully or partially within that threshold. Points
/// of Non-Contributing `C` blocks are skipped entirely by the second join.
pub fn unchained_block_marking<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &UnchainedJoinQuery,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    unchained_block_marking_with_mode(a, b, c, query, ExecutionMode::Serial)
}

/// Procedure 4 under an explicit [`ExecutionMode`].
///
/// Both phases parallelize by block partitioning: the first join over `A`'s
/// blocks, then the classification-plus-join over `C`'s blocks (each `C`
/// block's classification depends only on the shared Candidate set, never on
/// another `C` block). Rows (in order) and merged work counters are
/// identical to the serial run.
pub fn unchained_block_marking_with_mode<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &UnchainedJoinQuery,
    mode: ExecutionMode,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();

    // Lines 1–3: the first join and the projection of its B points.
    let ab_pairs = knn_join_rows_with_mode(a, b, query.k_ab, mode, &mut metrics);

    // Lines 4–8: mark Candidate blocks of B (blocks containing matched b's).
    let mut candidate_blocks: HashSet<BlockId> = HashSet::new();
    for pair in &ab_pairs {
        if let Some(block_id) = b.locate(&pair.right) {
            candidate_blocks.insert(block_id);
        }
    }
    let candidate_metas: Vec<_> = b
        .blocks()
        .iter()
        .filter(|blk| candidate_blocks.contains(&blk.id))
        .copied()
        .collect();

    // Group the AB pairs by their B point for the final ∩_B.
    let ab_by_b = group_pairs_by_right(&ab_pairs);

    // Lines 9–34: classify the blocks of C and join the Contributing ones,
    // partitioned across workers.
    let rows = run_over_blocks(c.blocks(), mode, &mut metrics, |c_block, rows, metrics| {
        if c_block.count == 0 {
            return;
        }
        metrics.blocks_scanned += 1;
        // The "process only the Safe blocks" shortcut: a C block whose own
        // region holds a matched b point is Contributing outright.
        let center = c_block.center();
        let region_is_candidate = candidate_metas
            .iter()
            .any(|bb| bb.mbr.intersects(&c_block.mbr));
        let contributing = if region_is_candidate {
            true
        } else {
            // Lines 15–20: center neighborhood over B and threshold test.
            let nbr_center = get_knn(b, &center, query.k_cb, metrics);
            let search_threshold = nbr_center.radius() + c_block.diagonal();
            candidate_metas
                .iter()
                .any(|bb| bb.mindist(&center) <= search_threshold)
        };

        if !contributing {
            metrics.blocks_pruned += 1;
            return;
        }

        // Lines 25–34: join the points of the Contributing block and
        // intersect on B.
        for c_point in c.block_points(c_block.id) {
            let nbr_c = get_knn(b, &c_point, query.k_cb, metrics);
            for n in nbr_c.members() {
                if let Some(ab) = ab_by_b.get(&n.point.id) {
                    for a_point in ab {
                        rows.push(Triplet::new(*a_point, n.point, c_point));
                    }
                }
            }
        }
    });
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// `∩_B`: matches AB pairs and CB pairs sharing the same `B` point and emits
/// `(a, b, c)` triplets.
fn intersect_on_b(ab_pairs: &[Pair], cb_pairs: &[Pair]) -> Vec<Triplet> {
    let ab_by_b = group_pairs_by_right(ab_pairs);
    let mut rows = Vec::new();
    for cb in cb_pairs {
        if let Some(a_points) = ab_by_b.get(&cb.right.id) {
            for a_point in a_points {
                rows.push(Triplet::new(*a_point, cb.right, cb.left));
            }
        }
    }
    rows
}

fn group_pairs_by_right(pairs: &[Pair]) -> HashMap<PointId, Vec<twoknn_geometry::Point>> {
    let mut map: HashMap<PointId, Vec<twoknn_geometry::Point>> = HashMap::new();
    for p in pairs {
        map.entry(p.right.id).or_default().push(p.left);
    }
    map
}

fn dedup_right_points(pairs: &[Pair]) -> Vec<twoknn_geometry::Point> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for p in pairs {
        if seen.insert(p.right.id) {
            out.push(p.right);
        }
    }
    out
}

/// Joins each point of `outer` against an explicit list of candidate points
/// (used only by the deliberately wrong sequential plan).
fn join_against_points<O>(
    outer: &O,
    candidates: &[twoknn_geometry::Point],
    k: usize,
    metrics: &mut Metrics,
) -> Vec<Pair>
where
    O: SpatialIndex + ?Sized,
{
    let mut pairs = Vec::new();
    for block in outer.blocks() {
        for e in outer.block_points(block.id) {
            let mut ranked: Vec<(f64, twoknn_geometry::Point)> = candidates
                .iter()
                .map(|q| {
                    metrics.distance_computations += 1;
                    (e.distance(q), *q)
                })
                .collect();
            ranked.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite distances")
                    .then(a.1.id.cmp(&b.1.id))
            });
            for (_, q) in ranked.into_iter().take(k) {
                pairs.push(Pair::new(e, q));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::triplet_id_set;
    use twoknn_geometry::Point;
    use twoknn_index::GridIndex;

    fn scattered(n: usize, seed: u64, scale: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
                    ^ seed.wrapping_mul(0xBF58476D1CE4E5B9);
                Point::new(
                    i as u64,
                    (h % 911) as f64 * scale,
                    ((h / 911) % 911) as f64 * scale,
                )
            })
            .collect()
    }

    fn grid(pts: Vec<Point>) -> GridIndex {
        GridIndex::build(pts, 9).unwrap()
    }

    #[test]
    fn block_marking_matches_conceptual() {
        let a = grid(scattered(120, 1, 0.1));
        let b = grid(scattered(300, 2, 0.1));
        let c = grid(scattered(150, 3, 0.1));
        for (k_ab, k_cb) in [(1, 1), (2, 2), (3, 5), (5, 2)] {
            let q = UnchainedJoinQuery::new(k_ab, k_cb);
            let fast = unchained_block_marking(&a, &b, &c, &q);
            let slow = unchained_conceptual(&a, &b, &c, &q);
            assert_eq!(
                triplet_id_set(&fast.rows),
                triplet_id_set(&slow.rows),
                "k_ab={k_ab} k_cb={k_cb}"
            );
        }
    }

    #[test]
    fn sequential_evaluation_is_wrong() {
        // A and C clustered in different corners, B spread out: evaluating
        // either join first filters B and changes the other join's result.
        let a = grid(
            (0..40)
                .map(|i| Point::new(i, 1.0 + (i % 8) as f64 * 0.2, 1.0 + (i / 8) as f64 * 0.2))
                .collect(),
        );
        let c = grid(
            (0..40)
                .map(|i| Point::new(i, 80.0 + (i % 8) as f64 * 0.2, 80.0 + (i / 8) as f64 * 0.2))
                .collect(),
        );
        let b = grid(scattered(200, 9, 0.45));
        let q = UnchainedJoinQuery::new(2, 2);
        let correct = triplet_id_set(&unchained_conceptual(&a, &b, &c, &q).rows);
        let wrong_ab = triplet_id_set(&unchained_wrong_sequential(&a, &b, &c, &q, true).rows);
        let wrong_cb = triplet_id_set(&unchained_wrong_sequential(&a, &b, &c, &q, false).rows);
        assert_ne!(correct, wrong_ab);
        assert_ne!(correct, wrong_cb);
    }

    #[test]
    fn clustered_outer_enables_pruning() {
        // A clustered in one corner => few Candidate B blocks => most C
        // blocks are Non-Contributing and never joined.
        let a = grid(
            (0..100)
                .map(|i| Point::new(i, 2.0 + (i % 10) as f64 * 0.1, 2.0 + (i / 10) as f64 * 0.1))
                .collect(),
        );
        let b = grid(scattered(400, 10, 0.12));
        let c = grid(scattered(400, 11, 0.12));
        let q = UnchainedJoinQuery::new(2, 2);
        let fast = unchained_block_marking(&a, &b, &c, &q);
        let slow = unchained_conceptual(&a, &b, &c, &q);
        assert_eq!(triplet_id_set(&fast.rows), triplet_id_set(&slow.rows));
        assert!(fast.metrics.blocks_pruned > 0, "{}", fast.metrics);
        assert!(
            fast.metrics.neighborhoods_computed < slow.metrics.neighborhoods_computed,
            "block-marking {} vs conceptual {}",
            fast.metrics.neighborhoods_computed,
            slow.metrics.neighborhoods_computed
        );
    }

    #[test]
    fn empty_relations_produce_empty_results() {
        let empty =
            GridIndex::build_with_bounds(vec![], twoknn_geometry::Rect::new(0.0, 0.0, 1.0, 1.0), 2)
                .unwrap();
        let b = grid(scattered(50, 12, 0.2));
        let c = grid(scattered(50, 13, 0.2));
        let q = UnchainedJoinQuery::new(2, 2);
        assert!(unchained_conceptual(&empty, &b, &c, &q).is_empty());
        assert!(unchained_block_marking(&empty, &b, &c, &q).is_empty());
    }
}
