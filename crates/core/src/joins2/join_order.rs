//! Join-order heuristics for unchained kNN-joins (Section 4.1.2).
//!
//! Both unchained joins are evaluated independently, so either can go first —
//! but the choice determines how many `B` blocks end up *Safe* and therefore
//! how much of the second join's outer relation can be pruned. The paper's
//! guidance:
//!
//! * if either outer relation (`A` or `C`) is clustered, start with the join
//!   of the clustered one;
//! * if both are clustered, start with the relation whose clusters cover the
//!   *smaller* area;
//! * if both are uniformly distributed, skip the Block-Marking machinery and
//!   use the plain conceptual QEP (the preprocessing would have no payoff).
//!
//! Cluster coverage is estimated here as the fraction of the index's spatial
//! extent covered by its non-empty blocks — a cheap statistic available from
//! block metadata alone.

use twoknn_index::SpatialIndex;

/// Which unchained join the optimizer decides to evaluate first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOrderDecision {
    /// Start with `A ⋈kNN B` and prune blocks of `C` in the second join.
    StartWithA,
    /// Start with `C ⋈kNN B` and prune blocks of `A` in the second join.
    StartWithC,
    /// Both outer relations look uniform: evaluate the conceptual QEP without
    /// Candidate/Safe preprocessing.
    Conceptual,
}

/// Fraction of the relation's extent covered by non-empty blocks, in `[0, 1]`.
///
/// A uniformly distributed relation occupies almost every block (fraction
/// close to 1); a clustered relation leaves most of its extent empty.
pub fn coverage_fraction<I: SpatialIndex + ?Sized>(index: &I) -> f64 {
    let total_area = index.bounds().area();
    if total_area <= 0.0 {
        return 1.0;
    }
    let covered: f64 = index
        .blocks()
        .iter()
        .filter(|b| b.count > 0)
        .map(|b| b.mbr.area())
        .sum();
    (covered / total_area).clamp(0.0, 1.0)
}

/// Chooses which unchained join to evaluate first per Section 4.1.2.
///
/// `uniform_threshold` is the coverage fraction above which a relation is
/// considered uniformly distributed; the paper does not give a number, so the
/// default used by the optimizer is 0.6.
pub fn choose_unchained_order<A, C>(a: &A, c: &C, uniform_threshold: f64) -> JoinOrderDecision
where
    A: SpatialIndex + ?Sized,
    C: SpatialIndex + ?Sized,
{
    let cov_a = coverage_fraction(a);
    let cov_c = coverage_fraction(c);
    let a_uniform = cov_a >= uniform_threshold;
    let c_uniform = cov_c >= uniform_threshold;
    match (a_uniform, c_uniform) {
        (true, true) => JoinOrderDecision::Conceptual,
        (false, true) => JoinOrderDecision::StartWithA,
        (true, false) => JoinOrderDecision::StartWithC,
        (false, false) => {
            // Both clustered: start with the smaller coverage.
            if cov_a <= cov_c {
                JoinOrderDecision::StartWithA
            } else {
                JoinOrderDecision::StartWithC
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_geometry::{Point, Rect};
    use twoknn_index::GridIndex;

    fn uniform_grid(n: usize, seed: u64) -> GridIndex {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed;
                Point::new(i as u64, (h % 100) as f64, ((h / 100) % 100) as f64)
            })
            .collect();
        GridIndex::build_with_bounds(pts, Rect::new(0.0, 0.0, 100.0, 100.0), 8).unwrap()
    }

    fn clustered_grid(n: usize, corner: f64, spread: f64) -> GridIndex {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    corner + (i % 10) as f64 * spread,
                    corner + (i / 10) as f64 * spread,
                )
            })
            .collect();
        GridIndex::build_with_bounds(pts, Rect::new(0.0, 0.0, 100.0, 100.0), 8).unwrap()
    }

    #[test]
    fn coverage_distinguishes_uniform_from_clustered() {
        let u = uniform_grid(2000, 3);
        let c = clustered_grid(200, 5.0, 0.3);
        assert!(coverage_fraction(&u) > 0.8);
        assert!(coverage_fraction(&c) < 0.2);
    }

    #[test]
    fn both_uniform_falls_back_to_conceptual() {
        let a = uniform_grid(1000, 1);
        let c = uniform_grid(1000, 2);
        assert_eq!(
            choose_unchained_order(&a, &c, 0.6),
            JoinOrderDecision::Conceptual
        );
    }

    #[test]
    fn the_clustered_relation_goes_first() {
        let a = clustered_grid(300, 10.0, 0.2);
        let c = uniform_grid(1000, 4);
        assert_eq!(
            choose_unchained_order(&a, &c, 0.6),
            JoinOrderDecision::StartWithA
        );
        assert_eq!(
            choose_unchained_order(&c, &a, 0.6),
            JoinOrderDecision::StartWithC
        );
    }

    #[test]
    fn both_clustered_picks_the_smaller_coverage() {
        let small = clustered_grid(100, 5.0, 0.1); // tiny footprint
        let large = clustered_grid(400, 20.0, 2.0); // larger footprint
        assert_eq!(
            choose_unchained_order(&small, &large, 0.6),
            JoinOrderDecision::StartWithA
        );
        assert_eq!(
            choose_unchained_order(&large, &small, 0.6),
            JoinOrderDecision::StartWithC
        );
    }
}
