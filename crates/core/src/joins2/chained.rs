//! Chained kNN-joins: `A → B → C` (Section 4.2).
//!
//! The query retrieves triplets `(a, b, c)` such that `b` is among the
//! `k_{A−B}` nearest `B` neighbors of `a`, and `c` is among the `k_{B−C}`
//! nearest `C` neighbors of `b`. The three QEPs of Figure 13 are all correct:
//!
//! * **QEP1** ([`chained_right_deep`]) — right-deep plan: materialize
//!   `B ⋈kNN C`, then join `A` against `B` and look the `B` results up in the
//!   materialized pairs.
//! * **QEP2** ([`chained_join_intersection`]) — evaluate `A ⋈kNN B` and
//!   `B ⋈kNN C` independently and intersect on `B`.
//! * **QEP3** ([`chained_nested`]) — nested join: compute the neighborhood of
//!   a `B` point only when it is produced as a neighbor of some `a ∈ A`.
//!   [`chained_nested_cached`] adds the hash-table cache of Section 4.2.1 so
//!   that a `b` appearing in several `A` neighborhoods is expanded only once.
//!
//! Every `*_with_mode` variant partitions its block loops through
//! [`crate::exec::run_partitioned`]; under the default `Pooled` mode a
//! multi-phase plan (e.g. QEP2's two joins) reuses the shared persistent
//! worker pool for each phase instead of spawning a fresh thread team per
//! phase.

use std::collections::HashMap;

use twoknn_geometry::PointId;
use twoknn_index::{get_knn, Metrics, Neighborhood, SpatialIndex};

use crate::exec::{run_over_blocks, run_partitioned, ExecutionMode};
use crate::join::knn_join_rows_with_mode;
use crate::output::{QueryOutput, Triplet};

/// Parameters of a query with two chained kNN-joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainedJoinQuery {
    /// `k_{A−B}`: the k of the join `A ⋈kNN B`.
    pub k_ab: usize,
    /// `k_{B−C}`: the k of the join `B ⋈kNN C`.
    pub k_bc: usize,
}

impl ChainedJoinQuery {
    /// Creates a query description.
    pub fn new(k_ab: usize, k_bc: usize) -> Self {
        Self { k_ab, k_bc }
    }
}

/// QEP1 of Figure 13: the right-deep plan. `B ⋈kNN C` is fully materialized
/// before the outer join runs, so every `b ∈ B` pays for a neighborhood
/// computation even if it never appears as a neighbor of any `a`.
pub fn chained_right_deep<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &ChainedJoinQuery,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    chained_right_deep_with_mode(a, b, c, query, ExecutionMode::Serial)
}

/// QEP1 under an explicit [`ExecutionMode`]: both the materializing join and
/// the outer join are block-partitioned across worker threads.
pub fn chained_right_deep_with_mode<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &ChainedJoinQuery,
    mode: ExecutionMode,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();
    // Materialize (B ⋈kNN C) into a map keyed by b.
    let bc_pairs = knn_join_rows_with_mode(b, c, query.k_bc, mode, &mut metrics);
    let mut bc_by_b: HashMap<PointId, Vec<twoknn_geometry::Point>> = HashMap::new();
    for p in &bc_pairs {
        bc_by_b.entry(p.left.id).or_default().push(p.right);
    }

    // Outer join: A against B, then look b up in the materialized result.
    let rows = run_over_blocks(a.blocks(), mode, &mut metrics, |block, rows, metrics| {
        for a_point in a.block_points(block.id) {
            let nbr_a = get_knn(b, &a_point, query.k_ab, metrics);
            for n in nbr_a.members() {
                if let Some(cs) = bc_by_b.get(&n.point.id) {
                    for c_point in cs {
                        rows.push(Triplet::new(a_point, n.point, *c_point));
                    }
                }
            }
        }
    });
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// QEP2 of Figure 13: evaluate the two joins independently and intersect on
/// the shared `B` component.
pub fn chained_join_intersection<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &ChainedJoinQuery,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    chained_join_intersection_with_mode(a, b, c, query, ExecutionMode::Serial)
}

/// QEP2 under an explicit [`ExecutionMode`]: both independent joins are
/// block-partitioned across worker threads before the intersection on `B`.
pub fn chained_join_intersection_with_mode<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &ChainedJoinQuery,
    mode: ExecutionMode,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();
    let ab_pairs = knn_join_rows_with_mode(a, b, query.k_ab, mode, &mut metrics);
    let bc_pairs = knn_join_rows_with_mode(b, c, query.k_bc, mode, &mut metrics);

    let mut bc_by_b: HashMap<PointId, Vec<twoknn_geometry::Point>> = HashMap::new();
    for p in &bc_pairs {
        bc_by_b.entry(p.left.id).or_default().push(p.right);
    }
    let mut rows = Vec::new();
    for ab in &ab_pairs {
        if let Some(cs) = bc_by_b.get(&ab.right.id) {
            for c_point in cs {
                rows.push(Triplet::new(ab.left, ab.right, *c_point));
            }
        }
    }
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// QEP3 of Figure 13: the nested-join plan **without** caching. The
/// neighborhood of a `b` point is computed each time `b` is produced as a
/// neighbor of some `a` — so a popular `b` is expanded repeatedly.
pub fn chained_nested<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &ChainedJoinQuery,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    chained_nested_with_mode(a, b, c, query, ExecutionMode::Serial)
}

/// QEP3 (uncached) under an explicit [`ExecutionMode`]: `A`'s blocks are
/// partitioned across worker threads. Rows (in order) and merged work
/// counters are identical to the serial run.
pub fn chained_nested_with_mode<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &ChainedJoinQuery,
    mode: ExecutionMode,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    chained_nested_impl(a, b, c, query, false, mode)
}

/// QEP3 with the neighborhood cache of Section 4.2.1: results of the inner
/// join are cached in a hash table keyed by the `b` point, so each distinct
/// `b` is expanded at most once. This is the plan the paper recommends.
pub fn chained_nested_cached<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &ChainedJoinQuery,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    chained_nested_cached_with_mode(a, b, c, query, ExecutionMode::Serial)
}

/// The cached QEP3 under an explicit [`ExecutionMode`].
///
/// In parallel mode, `A`'s blocks are grouped into contiguous chunks and each
/// chunk gets its **own** neighborhood cache — sharing one cache would either
/// serialize the workers behind a lock or make the hit pattern racy. The
/// result set is identical to the serial run (in order); the *cache* counters
/// (`cache_hits`/`cache_misses`, and hence `neighborhoods_computed`) may be
/// higher than serial, because a popular `b` can be expanded once per chunk
/// instead of once overall.
pub fn chained_nested_cached_with_mode<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &ChainedJoinQuery,
    mode: ExecutionMode,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    chained_nested_impl(a, b, c, query, true, mode)
}

fn chained_nested_impl<A, B, C>(
    a: &A,
    b: &B,
    c: &C,
    query: &ChainedJoinQuery,
    use_cache: bool,
    mode: ExecutionMode,
) -> QueryOutput<Triplet>
where
    A: SpatialIndex + Sync + ?Sized,
    B: SpatialIndex + Sync + ?Sized,
    C: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();
    let blocks = a.blocks();

    // One cache per work item. Serial runs use a single chunk spanning every
    // block, so the cache is global exactly as in the paper; parallel runs
    // split the blocks into a few chunks per worker (cheap dynamic load
    // balancing without sacrificing too much cache reuse).
    let threads = mode.effective_threads();
    let chunk_len = if threads <= 1 {
        blocks.len().max(1)
    } else {
        blocks.len().div_ceil(threads * 4).max(1)
    };
    let chunks: Vec<&[twoknn_index::BlockMeta]> = blocks.chunks(chunk_len).collect();

    let rows = run_partitioned(&chunks, mode, &mut metrics, |chunk, rows, metrics| {
        let mut cache: HashMap<PointId, Neighborhood> = HashMap::new();
        for block in *chunk {
            for a_point in a.block_points(block.id) {
                let nbr_a = get_knn(b, &a_point, query.k_ab, metrics);
                for n in nbr_a.members() {
                    let nbr_b = if use_cache {
                        if let Some(hit) = cache.get(&n.point.id) {
                            metrics.cache_hits += 1;
                            hit.clone()
                        } else {
                            metrics.cache_misses += 1;
                            let computed = get_knn(c, &n.point, query.k_bc, metrics);
                            cache.insert(n.point.id, computed.clone());
                            computed
                        }
                    } else {
                        get_knn(c, &n.point, query.k_bc, metrics)
                    };
                    for m in nbr_b.members() {
                        rows.push(Triplet::new(a_point, n.point, m.point));
                    }
                }
            }
        }
    });
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::triplet_id_set;
    use twoknn_geometry::Point;
    use twoknn_index::GridIndex;

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0xD6E8FEB86659FD93)
                    ^ seed.wrapping_mul(0xA3B195354A39B70D);
                Point::new(
                    i as u64,
                    (h % 769) as f64 * 0.13,
                    ((h / 769) % 769) as f64 * 0.13,
                )
            })
            .collect()
    }

    fn grid(pts: Vec<Point>) -> GridIndex {
        GridIndex::build(pts, 8).unwrap()
    }

    #[test]
    fn all_four_plans_agree() {
        let a = grid(scattered(80, 1));
        let b = grid(scattered(150, 2));
        let c = grid(scattered(120, 3));
        for (k_ab, k_bc) in [(1, 1), (2, 2), (3, 4), (4, 2)] {
            let q = ChainedJoinQuery::new(k_ab, k_bc);
            let p1 = triplet_id_set(&chained_right_deep(&a, &b, &c, &q).rows);
            let p2 = triplet_id_set(&chained_join_intersection(&a, &b, &c, &q).rows);
            let p3 = triplet_id_set(&chained_nested(&a, &b, &c, &q).rows);
            let p4 = triplet_id_set(&chained_nested_cached(&a, &b, &c, &q).rows);
            assert_eq!(p1, p2, "k_ab={k_ab} k_bc={k_bc}");
            assert_eq!(p2, p3, "k_ab={k_ab} k_bc={k_bc}");
            assert_eq!(p3, p4, "k_ab={k_ab} k_bc={k_bc}");
        }
    }

    #[test]
    fn caching_removes_repeated_expansions() {
        let a = grid(scattered(200, 4));
        let b = grid(scattered(60, 5)); // few B points => many repeats
        let c = grid(scattered(200, 6));
        let q = ChainedJoinQuery::new(3, 3);
        let cached = chained_nested_cached(&a, &b, &c, &q);
        let uncached = chained_nested(&a, &b, &c, &q);
        assert_eq!(triplet_id_set(&cached.rows), triplet_id_set(&uncached.rows));
        assert!(cached.metrics.cache_hits > 0);
        assert!(
            cached.metrics.neighborhoods_computed < uncached.metrics.neighborhoods_computed,
            "cached {} vs uncached {}",
            cached.metrics.neighborhoods_computed,
            uncached.metrics.neighborhoods_computed
        );
        // Each distinct matched b is expanded exactly once in the cached plan.
        assert_eq!(
            cached.metrics.cache_misses,
            cached.metrics.cache_misses.min(b.num_points() as u64)
        );
    }

    #[test]
    fn nested_plan_skips_unreachable_b_clusters() {
        // B has a cluster far from every A point; QEP3 never expands it,
        // QEP1/QEP2 do.
        let a = grid(scattered(50, 7));
        let mut b_pts = scattered(100, 8);
        for i in 0..100 {
            b_pts.push(Point::new(
                100 + i,
                500.0 + (i % 10) as f64,
                500.0 + (i / 10) as f64,
            ));
        }
        let b = grid(b_pts);
        let c = grid(scattered(150, 9));
        let q = ChainedJoinQuery::new(2, 2);
        let nested = chained_nested_cached(&a, &b, &c, &q);
        let right_deep = chained_right_deep(&a, &b, &c, &q);
        assert_eq!(
            triplet_id_set(&nested.rows),
            triplet_id_set(&right_deep.rows)
        );
        assert!(
            nested.metrics.neighborhoods_computed < right_deep.metrics.neighborhoods_computed,
            "nested {} vs right-deep {}",
            nested.metrics.neighborhoods_computed,
            right_deep.metrics.neighborhoods_computed
        );
    }

    #[test]
    fn empty_a_relation_gives_empty_result() {
        let empty =
            GridIndex::build_with_bounds(vec![], twoknn_geometry::Rect::new(0.0, 0.0, 1.0, 1.0), 2)
                .unwrap();
        let b = grid(scattered(40, 10));
        let c = grid(scattered(40, 11));
        let q = ChainedJoinQuery::new(2, 2);
        assert!(chained_right_deep(&empty, &b, &c, &q).is_empty());
        assert!(chained_nested_cached(&empty, &b, &c, &q).is_empty());
    }
}
