//! Queries with two kNN-join predicates (Section 4 of the paper).
//!
//! The kNN-join is not symmetric, so two joins over three relations come in
//! two flavors:
//!
//! * **Unchained** joins share the *inner* relation:
//!   `(A ⋈kNN B) ∩_B (C ⋈kNN B)` — both `A` and `C` look for their nearest
//!   `B` points, and the results are matched on the shared `B` component.
//!   Evaluating either join "first" and feeding its output to the other is
//!   wrong (Figures 8 and 9); the correct conceptual QEP evaluates both joins
//!   independently and intersects on `B` (Figure 10). The efficient
//!   evaluation ([`unchained_block_marking`]) prunes blocks of the second
//!   join's outer relation using Candidate/Safe block marking (Procedure 4).
//!
//! * **Chained** joins form a path `A → B → C`:
//!   `(A ⋈kNN B) ∩ (B ⋈kNN C)` — the `B` points are both the neighbors of
//!   `A` points and the query points of the second join. All three QEPs of
//!   Figure 13 are equivalent; the *nested* QEP3 avoids computing the
//!   neighborhoods of `B` points that never appear as neighbors of `A`, and a
//!   per-`b` neighborhood cache removes its repeated computations.
//!
//! The `join_order` submodule implements the heuristics of Section 4.1.2 for
//! choosing which unchained join to evaluate first.

mod chained;
mod join_order;
mod unchained;

pub use chained::{
    chained_join_intersection, chained_join_intersection_with_mode, chained_nested,
    chained_nested_cached, chained_nested_cached_with_mode, chained_nested_with_mode,
    chained_right_deep, chained_right_deep_with_mode, ChainedJoinQuery,
};
pub use join_order::{choose_unchained_order, coverage_fraction, JoinOrderDecision};
pub use unchained::{
    unchained_block_marking, unchained_block_marking_with_mode, unchained_conceptual,
    unchained_conceptual_with_mode, unchained_wrong_sequential, UnchainedJoinQuery,
};

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_geometry::Point;

    #[test]
    fn query_descriptors_expose_parameters() {
        let u = UnchainedJoinQuery::new(2, 3);
        assert_eq!((u.k_ab, u.k_cb), (2, 3));
        let c = ChainedJoinQuery::new(4, 5);
        assert_eq!((c.k_ab, c.k_bc), (4, 5));
        // silence unused import in cfg(test)
        let _ = Point::anonymous(0.0, 0.0);
    }
}
