//! The **Counting** algorithm (Procedure 1, Section 3.1).
//!
//! For each outer point `e1`, the algorithm decides *without computing e1's
//! neighborhood* whether that neighborhood could possibly intersect the
//! neighborhood of the focal point `f`:
//!
//! 1. the *search threshold* is the distance from `e1` to the nearest point
//!    of `nbr_f`;
//! 2. blocks of the inner relation are scanned in increasing MAXDIST order
//!    from `e1`, accumulating their point counts, as long as they are
//!    *completely included* within the search threshold (MAXDIST ≤ threshold);
//! 3. if more than `k⋈` points are found this way, then `e1` already has more
//!    than `k⋈` inner points strictly closer than any member of `nbr_f`, so
//!    its neighborhood cannot intersect `nbr_f` and `e1` is skipped.
//!
//! Only the surviving outer points pay for a neighborhood computation.

use twoknn_geometry::Point;
use twoknn_index::{get_knn, Metrics, Neighborhood, SpatialIndex};

use crate::exec::{run_over_blocks, ExecutionMode};
use crate::output::{Pair, QueryOutput};
use crate::select::knn_select_neighborhood;

use super::SelectInnerJoinQuery;

/// Evaluates `(E1 ⋈kNN E2) ∩ (E1 × σ_{kσ,f}(E2))` with the Counting
/// algorithm (Procedure 1).
pub fn counting<O, I>(outer: &O, inner: &I, query: &SelectInnerJoinQuery) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    counting_with_mode(outer, inner, query, ExecutionMode::Serial)
}

/// The Counting algorithm under an explicit [`ExecutionMode`].
///
/// The per-outer-point test is independent of every other point, so in a
/// parallel mode the outer relation's blocks are partitioned across the
/// mode's workers — the shared persistent pool for `Pooled` (the default),
/// a freshly spawned scoped team for `Parallel`. The result rows (in order)
/// and the merged work counters are identical to the serial run.
pub fn counting_with_mode<O, I>(
    outer: &O,
    inner: &I,
    query: &SelectInnerJoinQuery,
    mode: ExecutionMode,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();

    // Line 1: the neighborhood of f (the kNN-select side).
    let nbr_f = knn_select_neighborhood(inner, &query.focal, query.k_select, &mut metrics);
    if nbr_f.is_empty() {
        // An empty select result can never intersect any join neighborhood.
        return QueryOutput::new(Vec::new(), metrics);
    }

    // Lines 3–22: per outer tuple, partitioned by outer block.
    let rows = run_over_blocks(
        outer.blocks(),
        mode,
        &mut metrics,
        |block, rows, metrics| {
            for e1 in outer.block_points(block.id) {
                counting_test_point(&e1, inner, &nbr_f, query, rows, metrics);
            }
        },
    );
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// Procedure 1, lines 5–21, for a single outer point.
fn counting_test_point<I>(
    e1: &Point,
    inner: &I,
    nbr_f: &Neighborhood,
    query: &SelectInnerJoinQuery,
    rows: &mut Vec<Pair>,
    metrics: &mut Metrics,
) where
    I: SpatialIndex + ?Sized,
{
    // Line 5: distance from e1 to the nearest member of nbr_f.
    let search_threshold = nbr_f
        .nearest_distance_from(e1)
        .expect("nbr_f is non-empty here");
    metrics.distance_computations += nbr_f.len() as u64;

    // Lines 6–14: count inner points in blocks completely included
    // within the search threshold, scanning in MAXDIST order from e1.
    let mut count = 0usize;
    let mut max_order = inner.maxdist_order(e1);
    while count <= query.k_join {
        let Some(ob) = max_order.next() else {
            break;
        };
        metrics.blocks_scanned += 1;
        if ob.distance >= search_threshold {
            // This block (and all following ones) is not *strictly*
            // included within the search threshold. Using `>=` keeps
            // the pruning sound even when an inner point lies at
            // exactly the threshold distance (a tie the paper's
            // pseudocode ignores).
            break;
        }
        count += ob.block.count;
    }

    // Lines 15–21: only compute e1's neighborhood if the count did not
    // prove the intersection impossible.
    if count <= query.k_join {
        let nbr_e1 = get_knn(inner, e1, query.k_join, metrics);
        for i in nbr_e1.intersect(nbr_f) {
            rows.push(Pair::new(*e1, i));
        }
    } else {
        metrics.points_pruned += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::pair_id_set;
    use crate::select_join::conceptual;
    use twoknn_geometry::Point;
    use twoknn_index::GridIndex;

    fn grid(points: Vec<Point>) -> GridIndex {
        GridIndex::build(points, 8).unwrap()
    }

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64 * 2654435761) ^ seed.wrapping_mul(0x9E3779B97F4A7C15);
                Point::new(
                    i as u64,
                    (h % 1000) as f64 * 0.1,
                    ((h / 1000) % 1000) as f64 * 0.1,
                )
            })
            .collect()
    }

    #[test]
    fn counting_matches_conceptual_plan() {
        let outer = grid(scattered(150, 1));
        let inner = grid(scattered(400, 2));
        for (k_join, k_select) in [(1, 1), (2, 2), (4, 8), (8, 3)] {
            let query = SelectInnerJoinQuery::new(k_join, k_select, Point::anonymous(30.0, 40.0));
            let fast = counting(&outer, &inner, &query);
            let slow = conceptual(&outer, &inner, &query);
            assert_eq!(
                pair_id_set(&fast.rows),
                pair_id_set(&slow.rows),
                "k_join={k_join} k_select={k_select}"
            );
        }
    }

    #[test]
    fn counting_prunes_far_outer_points() {
        // Outer points far from the focal point with plenty of inner points
        // around them must be pruned without neighborhood computations.
        let mut inner_pts = scattered(500, 3);
        // Dense inner cloud near (90, 90) so that far outer points are
        // surrounded by many closer inner points.
        for i in 0..200 {
            inner_pts.push(Point::new(
                500 + i,
                90.0 + (i % 20) as f64 * 0.05,
                90.0 + (i / 20) as f64 * 0.05,
            ));
        }
        let inner = grid(inner_pts);
        let outer = grid(vec![
            Point::new(0, 90.2, 90.2),
            Point::new(1, 90.4, 90.4),
            Point::new(2, 5.0, 5.0),
        ]);
        let query = SelectInnerJoinQuery::new(2, 2, Point::anonymous(5.0, 5.0));
        let out = counting(&outer, &inner, &query);
        assert!(out.metrics.points_pruned >= 2, "{}", out.metrics);
        // Correctness still holds.
        let slow = conceptual(&outer, &inner, &query);
        assert_eq!(pair_id_set(&out.rows), pair_id_set(&slow.rows));
    }

    #[test]
    fn counting_does_fewer_neighborhood_computations_than_conceptual() {
        let outer = grid(scattered(300, 7));
        let inner = grid(scattered(600, 8));
        let query = SelectInnerJoinQuery::new(3, 3, Point::anonymous(10.0, 10.0));
        let fast = counting(&outer, &inner, &query);
        let slow = conceptual(&outer, &inner, &query);
        assert!(
            fast.metrics.neighborhoods_computed < slow.metrics.neighborhoods_computed,
            "counting {} vs conceptual {}",
            fast.metrics.neighborhoods_computed,
            slow.metrics.neighborhoods_computed
        );
    }

    #[test]
    fn empty_inner_relation_yields_empty_result() {
        let outer = grid(scattered(10, 1));
        let inner =
            GridIndex::build_with_bounds(vec![], twoknn_geometry::Rect::new(0.0, 0.0, 1.0, 1.0), 2)
                .unwrap();
        let query = SelectInnerJoinQuery::new(2, 2, Point::anonymous(0.0, 0.0));
        assert!(counting(&outer, &inner, &query).is_empty());
    }
}
