//! The **Block-Marking** algorithm (Procedures 2 and 3, Section 3.2).
//!
//! Instead of testing every outer point like the Counting algorithm, the
//! Block-Marking algorithm first classifies every *block* of the outer
//! relation as *Contributing* or *Non-Contributing*:
//!
//! * the neighborhood (over the inner relation, with `k⋈`) of the block's
//!   **center** is computed; `r` is the distance from the center to its
//!   farthest neighbor;
//! * with `d` the block's diagonal and `f_farthest` the radius of the focal
//!   neighborhood, the block is Non-Contributing when
//!   `r + d + f_farthest < f_center`, where `f_center` is the distance from
//!   the focal point to the block center (Figure 5). Theorem 1 shows the
//!   center is the reference point that makes this test tightest.
//!
//! The preprocessing scan visits blocks in MINDIST order from the focal point
//! and stops early once a full *contour* of Non-Contributing blocks has been
//! closed (Figure 6): when a Non-Contributing block is found, its MAXDIST `M`
//! from `f` is recorded; if every subsequently scanned block is also
//! Non-Contributing, the scan stops at the first block whose MINDIST reaches
//! `M`, and all remaining blocks are treated as Non-Contributing without any
//! work.
//!
//! After preprocessing, only the points inside Contributing blocks pay for a
//! neighborhood computation; their neighborhoods are intersected with the
//! focal neighborhood exactly as in the conceptual plan.

use twoknn_index::{get_knn, BlockMeta, Metrics, SpatialIndex};

use crate::exec::{run_partitioned, ExecutionMode};
use crate::output::{Pair, QueryOutput};
use crate::select::knn_select_neighborhood;

use super::SelectInnerJoinQuery;

/// Tuning knobs of the Block-Marking algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMarkingConfig {
    /// Enable the contour-based early termination of the preprocessing scan
    /// (Figure 6). When disabled, every outer block is tested individually;
    /// the per-block test is unconditionally sound, so disabling the contour
    /// gives a conservative variant useful for verification.
    pub contour_pruning: bool,
}

impl Default for BlockMarkingConfig {
    fn default() -> Self {
        Self {
            contour_pruning: true,
        }
    }
}

/// Evaluates `(E1 ⋈kNN E2) ∩ (E1 × σ_{kσ,f}(E2))` with the Block-Marking
/// algorithm using the default configuration (contour pruning enabled, as in
/// the paper).
pub fn block_marking<O, I>(outer: &O, inner: &I, query: &SelectInnerJoinQuery) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    block_marking_with_config(outer, inner, query, &BlockMarkingConfig::default())
}

/// Evaluates the query with the Block-Marking algorithm and an explicit
/// configuration.
pub fn block_marking_with_config<O, I>(
    outer: &O,
    inner: &I,
    query: &SelectInnerJoinQuery,
    config: &BlockMarkingConfig,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    block_marking_with_mode(outer, inner, query, config, ExecutionMode::Serial)
}

/// The Block-Marking algorithm under an explicit [`ExecutionMode`].
///
/// The preprocessing scan (Procedure 3) is inherently sequential — the
/// contour-based early stop depends on the order blocks are visited — so it
/// always runs on one thread. The join phase over the Contributing blocks,
/// which dominates the cost, is partitioned across the mode's workers (the
/// shared persistent pool under `Pooled`, the default) in a parallel mode.
/// Rows (in order) and merged work counters are identical to the serial
/// run.
pub fn block_marking_with_mode<O, I>(
    outer: &O,
    inner: &I,
    query: &SelectInnerJoinQuery,
    config: &BlockMarkingConfig,
    mode: ExecutionMode,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();

    // Procedure 2, line 1: the neighborhood of f.
    let nbr_f = knn_select_neighborhood(inner, &query.focal, query.k_select, &mut metrics);
    if nbr_f.is_empty() {
        return QueryOutput::new(Vec::new(), metrics);
    }

    // Procedure 2, line 2 / Procedure 3: preprocessing.
    let contributing = preprocess_blocks(outer, inner, query, nbr_f.radius(), config, &mut metrics);

    // Procedure 2, lines 4–12: join only the points of Contributing blocks,
    // partitioned across workers.
    let rows = run_partitioned(&contributing, mode, &mut metrics, |block, rows, metrics| {
        for e1 in outer.block_points(block.id) {
            let nbr_e1 = get_knn(inner, &e1, query.k_join, metrics);
            for i in nbr_e1.intersect(&nbr_f) {
                rows.push(Pair::new(e1, i));
            }
        }
    });
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// Procedure 3: classify the outer relation's blocks, returning the
/// Contributing ones. `f_farthest` is the radius of the focal neighborhood.
fn preprocess_blocks<O, I>(
    outer: &O,
    inner: &I,
    query: &SelectInnerJoinQuery,
    f_farthest: f64,
    config: &BlockMarkingConfig,
    metrics: &mut Metrics,
) -> Vec<BlockMeta>
where
    O: SpatialIndex + ?Sized,
    I: SpatialIndex + ?Sized,
{
    let mut contributing = Vec::new();
    // `cycle_maxdist` is `M` in Procedure 3: the MAXDIST (from f) of the first
    // Non-Contributing block of the currently open contour cycle; `None`
    // means no cycle is open.
    let mut cycle_maxdist: Option<f64> = None;
    let mut min_order = outer.mindist_order(&query.focal);
    let mut remaining_unscanned = 0u64;

    while let Some(ob) = min_order.next() {
        // Line 7: once a full cycle of Non-Contributing blocks separates the
        // remaining blocks from f, stop scanning.
        if config.contour_pruning {
            if let Some(m) = cycle_maxdist {
                if ob.distance >= m {
                    remaining_unscanned = 1 + min_order.remaining() as u64;
                    break;
                }
            }
        }
        metrics.blocks_scanned += 1;
        let block = ob.block;

        // Empty outer blocks trivially cannot contribute, but for the contour
        // logic they must still be classified geometrically (a block with no
        // outer points can still be Contributing in the geometric sense and
        // would then break a contour). We classify them exactly like the
        // paper does — the test only depends on the block's geometry and the
        // inner relation.
        let is_non_contributing = {
            // Line 10: neighborhood of the block center over the inner
            // relation with the join's k.
            let center = block.center();
            let nbr_center = get_knn(inner, &center, query.k_join, metrics);
            let r = nbr_center.radius();
            let f_center = query.focal.distance(&center);
            metrics.distance_computations += 1;
            // Line 14: the Non-Contributing test.
            nbr_center.len() >= query.k_join && r + block.diagonal() + f_farthest < f_center
        };

        if is_non_contributing {
            metrics.blocks_pruned += 1;
            // Line 16–18: first Non-Contributing block of a new cycle records
            // its MAXDIST from f.
            if cycle_maxdist.is_none() {
                cycle_maxdist = Some(block.maxdist(&query.focal));
            }
        } else {
            // Lines 20–22: a Contributing block interrupts the cycle.
            if block.count > 0 {
                contributing.push(block);
            }
            cycle_maxdist = None;
        }
    }
    metrics.blocks_pruned += remaining_unscanned;
    contributing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::pair_id_set;
    use crate::select_join::{conceptual, counting};
    use twoknn_geometry::Point;
    use twoknn_index::GridIndex;

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(2654435761) ^ seed.wrapping_mul(0x9E3779B97F4A7C15);
                Point::new(
                    i as u64,
                    (h % 997) as f64 * 0.1,
                    ((h / 997) % 997) as f64 * 0.1,
                )
            })
            .collect()
    }

    fn grid(points: Vec<Point>) -> GridIndex {
        GridIndex::build(points, 10).unwrap()
    }

    #[test]
    fn block_marking_matches_conceptual_and_counting() {
        let outer = grid(scattered(250, 21));
        let inner = grid(scattered(500, 22));
        for (k_join, k_select) in [(1, 1), (2, 2), (3, 6), (6, 2)] {
            let query = SelectInnerJoinQuery::new(k_join, k_select, Point::anonymous(20.0, 70.0));
            let bm = block_marking(&outer, &inner, &query);
            let cn = counting(&outer, &inner, &query);
            let cc = conceptual(&outer, &inner, &query);
            assert_eq!(pair_id_set(&bm.rows), pair_id_set(&cc.rows));
            assert_eq!(pair_id_set(&cn.rows), pair_id_set(&cc.rows));
        }
    }

    #[test]
    fn contour_disabled_variant_also_matches() {
        let outer = grid(scattered(200, 31));
        let inner = grid(scattered(300, 32));
        let query = SelectInnerJoinQuery::new(4, 4, Point::anonymous(50.0, 50.0));
        let safe = block_marking_with_config(
            &outer,
            &inner,
            &query,
            &BlockMarkingConfig {
                contour_pruning: false,
            },
        );
        let cc = conceptual(&outer, &inner, &query);
        assert_eq!(pair_id_set(&safe.rows), pair_id_set(&cc.rows));
    }

    #[test]
    fn block_marking_prunes_blocks_on_skewed_data() {
        // Dense outer cluster far from the focal point with plenty of inner
        // points around it: its blocks must be marked Non-Contributing.
        let mut outer_pts = Vec::new();
        let mut inner_pts = Vec::new();
        for i in 0..400 {
            outer_pts.push(Point::new(
                i,
                80.0 + (i % 20) as f64 * 0.1,
                80.0 + (i / 20) as f64 * 0.1,
            ));
            inner_pts.push(Point::new(
                i,
                80.0 + (i % 20) as f64 * 0.1 + 0.05,
                80.0 + (i / 20) as f64 * 0.1 + 0.05,
            ));
        }
        // A few inner points near the focal point to form nbr_f.
        for i in 0..5 {
            inner_pts.push(Point::new(400 + i, 1.0 + i as f64 * 0.1, 1.0));
        }
        // And a couple of outer points near the focal point that do contribute.
        outer_pts.push(Point::new(400, 1.2, 1.1));
        outer_pts.push(Point::new(401, 0.8, 0.9));

        let outer = grid(outer_pts);
        let inner = grid(inner_pts);
        let query = SelectInnerJoinQuery::new(2, 3, Point::anonymous(1.0, 1.0));

        let bm = block_marking(&outer, &inner, &query);
        let cc = conceptual(&outer, &inner, &query);
        assert_eq!(pair_id_set(&bm.rows), pair_id_set(&cc.rows));
        assert!(bm.metrics.blocks_pruned > 0, "{}", bm.metrics);
        assert!(
            bm.metrics.neighborhoods_computed < cc.metrics.neighborhoods_computed,
            "block-marking {} vs conceptual {}",
            bm.metrics.neighborhoods_computed,
            cc.metrics.neighborhoods_computed
        );
        // The near-focal outer points must be in the result.
        assert!(bm.rows.iter().any(|p| p.left.id == 400 || p.left.id == 401));
    }

    #[test]
    fn empty_focal_neighborhood_short_circuits() {
        let outer = grid(scattered(50, 41));
        let inner =
            GridIndex::build_with_bounds(vec![], twoknn_geometry::Rect::new(0.0, 0.0, 1.0, 1.0), 2)
                .unwrap();
        let query = SelectInnerJoinQuery::new(2, 2, Point::anonymous(0.5, 0.5));
        let out = block_marking(&outer, &inner, &query);
        assert!(out.is_empty());
        assert_eq!(out.metrics.neighborhoods_computed, 1); // only nbr_f
    }
}
