//! The conceptually correct QEP (Figure 1) and the invalid pushdown plan
//! (Figure 2) for a kNN-select on the inner relation of a kNN-join.

use twoknn_index::{Metrics, SpatialIndex};

use crate::exec::ExecutionMode;
use crate::join::knn_join_rows_with_mode;
use crate::output::{Pair, QueryOutput};
use crate::select::knn_select_neighborhood;

use super::SelectInnerJoinQuery;

/// The conceptually correct QEP of Figure 1: evaluate the full kNN-join
/// `E1 ⋈kNN E2`, evaluate the kNN-select `σ_{kσ,f}(E2)` independently, and
/// keep the join pairs whose inner point belongs to the select's result.
///
/// This plan is correct for any input but computes the neighborhood of every
/// outer point — the cost the Counting and Block-Marking algorithms avoid.
pub fn conceptual<O, I>(outer: &O, inner: &I, query: &SelectInnerJoinQuery) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    conceptual_with_mode(outer, inner, query, ExecutionMode::Serial)
}

/// The conceptual QEP under an explicit [`ExecutionMode`]: the full kNN-join
/// is block-partitioned across worker threads in parallel mode.
pub fn conceptual_with_mode<O, I>(
    outer: &O,
    inner: &I,
    query: &SelectInnerJoinQuery,
    mode: ExecutionMode,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();
    let nbr_f = knn_select_neighborhood(inner, &query.focal, query.k_select, &mut metrics);
    let join_pairs = knn_join_rows_with_mode(outer, inner, query.k_join, mode, &mut metrics);
    let rows: Vec<Pair> = join_pairs
        .into_iter()
        .filter(|pair| nbr_f.contains_id(pair.right.id))
        .collect();
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// The **invalid** plan of Figure 2: push the kNN-select below the inner
/// relation of the kNN-join, i.e. evaluate `E1 ⋈kNN (σ_{kσ,f}(E2))`.
///
/// "Pushing a kNN-select under the inner relation of a kNN-join ... reduces
/// the scope of the points being considered in the inner relation ... and
/// hence, the kNN-join will not be performed correctly." This function exists
/// so that tests, examples and documentation can *demonstrate* the
/// non-equivalence; it must not be used to answer the query.
pub fn invalid_inner_pushdown<O, I>(
    outer: &O,
    inner: &I,
    query: &SelectInnerJoinQuery,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + ?Sized,
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let nbr_f = knn_select_neighborhood(inner, &query.focal, query.k_select, &mut metrics);

    // Join the outer relation against only the selected points: for each
    // outer point, its k⋈ nearest among the selected ones.
    let mut rows = Vec::new();
    for block in outer.blocks() {
        for e1 in outer.block_points(block.id) {
            let mut candidates: Vec<(f64, twoknn_geometry::Point)> = nbr_f
                .points()
                .map(|p| {
                    metrics.distance_computations += 1;
                    (e1.distance(p), *p)
                })
                .collect();
            candidates.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite distances")
                    .then(a.1.id.cmp(&b.1.id))
            });
            for (_, p) in candidates.into_iter().take(query.k_join) {
                rows.push(Pair::new(e1, p));
            }
        }
    }
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::pair_id_set;
    use twoknn_geometry::Point;
    use twoknn_index::GridIndex;

    /// A layout in the spirit of Figures 1 and 2: hotels near the shopping
    /// center plus hotels far from it; mechanics spread around. The invalid
    /// pushdown reports every mechanic paired with a selected hotel, the
    /// correct plan only keeps mechanics whose own neighborhood reaches the
    /// selected hotels.
    fn setup() -> (GridIndex, GridIndex, SelectInnerJoinQuery) {
        let mechanics = GridIndex::build(
            vec![
                Point::new(1, 1.0, 1.0),
                Point::new(2, 2.0, 2.0),
                Point::new(3, 9.0, 9.0),
                Point::new(4, 10.0, 10.0),
            ],
            4,
        )
        .unwrap();
        let hotels = GridIndex::build(
            vec![
                Point::new(1, 1.5, 1.0),
                Point::new(2, 2.5, 2.0),
                Point::new(3, 9.5, 9.0),
                Point::new(4, 10.5, 10.0),
            ],
            4,
        )
        .unwrap();
        // Shopping center near the (1,1) corner: selects hotels 1 and 2.
        let query = SelectInnerJoinQuery::new(2, 2, Point::anonymous(1.0, 0.5));
        (mechanics, hotels, query)
    }

    #[test]
    fn conceptual_keeps_only_reachable_selected_hotels() {
        let (mechanics, hotels, query) = setup();
        let out = conceptual(&mechanics, &hotels, &query);
        let ids = pair_id_set(&out.rows);
        // Mechanics 1 and 2 are near hotels 1/2 (the selected ones); mechanics
        // 3 and 4 have hotels 3/4 as their neighborhood, which are not
        // selected, so they contribute nothing.
        let expected: std::collections::BTreeSet<(u64, u64)> =
            [(1, 1), (1, 2), (2, 1), (2, 2)].into_iter().collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn invalid_pushdown_differs_from_correct_plan() {
        let (mechanics, hotels, query) = setup();
        let correct = pair_id_set(&conceptual(&mechanics, &hotels, &query).rows);
        let wrong = pair_id_set(&invalid_inner_pushdown(&mechanics, &hotels, &query).rows);
        assert_ne!(correct, wrong);
        // The invalid plan pairs *every* mechanic with the selected hotels.
        assert!(wrong.contains(&(3, 1)));
        assert!(wrong.contains(&(4, 2)));
        // And the correct result is a subset of the wrong one in this layout.
        assert!(correct.is_subset(&wrong));
    }

    #[test]
    fn conceptual_with_empty_inner_is_empty() {
        let (mechanics, _, query) = setup();
        let empty =
            GridIndex::build_with_bounds(vec![], twoknn_geometry::Rect::new(0.0, 0.0, 1.0, 1.0), 2)
                .unwrap();
        assert!(conceptual(&mechanics, &empty, &query).is_empty());
    }
}
