//! kNN-select on the **outer** relation of a kNN-join (Figure 3).
//!
//! Unlike the inner-relation case, pushing the selection below the *outer*
//! relation of a kNN-join is valid:
//!
//! ```text
//! (E1 ⋈kNN E2) ∩ ((σ_{kσ,f}(E1)) × E2)  ≡  (σ_{kσ,f}(E1)) ⋈kNN E2
//! ```
//!
//! because excluding outer points that the selection would discard anyway
//! cannot change which inner points the surviving outer points join with.
//! Both QEPs of Figure 3 are implemented so the equivalence can be tested and
//! so the plan layer can expose the pushdown as a legal transformation.

use twoknn_index::{Metrics, SpatialIndex};

use crate::exec::ExecutionMode;
use crate::join::{knn_join_points, knn_join_rows_with_mode};
use crate::output::{Pair, QueryOutput};
use crate::select::knn_select_neighborhood;

use super::SelectOuterJoinQuery;

/// QEP1 of Figure 3: push the selection below the outer relation, i.e.
/// evaluate `(σ_{kσ,f}(E1)) ⋈kNN E2`. This is the *efficient* plan: only the
/// `kσ` selected outer points are joined.
pub fn select_on_outer_pushdown<O, I>(
    outer: &O,
    inner: &I,
    query: &SelectOuterJoinQuery,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + ?Sized,
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let selected = knn_select_neighborhood(outer, &query.focal, query.k_select, &mut metrics);
    let selected_points: Vec<_> = selected.points().copied().collect();
    let rows = knn_join_points(&selected_points, inner, query.k_join, &mut metrics);
    QueryOutput::new(rows, metrics)
}

/// QEP2 of Figure 3: evaluate the full join `E1 ⋈kNN E2` first and apply the
/// selection on the outer attribute of the result afterwards. Same result as
/// [`select_on_outer_pushdown`], but the join is computed for every outer
/// point.
pub fn select_on_outer_after_join<O, I>(
    outer: &O,
    inner: &I,
    query: &SelectOuterJoinQuery,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    select_on_outer_after_join_with_mode(outer, inner, query, ExecutionMode::Serial)
}

/// QEP2 of Figure 3 under an explicit [`ExecutionMode`]: the full join is
/// block-partitioned across worker threads in parallel mode. (The pushdown
/// QEP1 only ever joins the `kσ` selected points, so it has no parallel
/// variant — it is already the cheap plan.)
pub fn select_on_outer_after_join_with_mode<O, I>(
    outer: &O,
    inner: &I,
    query: &SelectOuterJoinQuery,
    mode: ExecutionMode,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + Sync + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    let mut metrics = Metrics::default();
    let selected = knn_select_neighborhood(outer, &query.focal, query.k_select, &mut metrics);
    let join_pairs = knn_join_rows_with_mode(outer, inner, query.k_join, mode, &mut metrics);
    let rows: Vec<Pair> = join_pairs
        .into_iter()
        .filter(|pair| selected.contains_id(pair.left.id))
        .collect();
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::pair_id_set;
    use twoknn_geometry::Point;
    use twoknn_index::GridIndex;

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(6364136223846793005) ^ seed;
                Point::new(
                    i as u64,
                    (h % 887) as f64 * 0.11,
                    ((h / 887) % 887) as f64 * 0.12,
                )
            })
            .collect()
    }

    #[test]
    fn pushdown_is_equivalent_to_select_after_join() {
        let outer = GridIndex::build(scattered(200, 5), 8).unwrap();
        let inner = GridIndex::build(scattered(300, 6), 8).unwrap();
        for (k_join, k_select) in [(1, 1), (2, 2), (3, 10), (8, 4)] {
            let query = SelectOuterJoinQuery::new(k_join, k_select, Point::anonymous(40.0, 40.0));
            let a = select_on_outer_pushdown(&outer, &inner, &query);
            let b = select_on_outer_after_join(&outer, &inner, &query);
            assert_eq!(
                pair_id_set(&a.rows),
                pair_id_set(&b.rows),
                "k_join={k_join} k_select={k_select}"
            );
        }
    }

    #[test]
    fn pushdown_is_much_cheaper() {
        let outer = GridIndex::build(scattered(400, 7), 10).unwrap();
        let inner = GridIndex::build(scattered(400, 8), 10).unwrap();
        let query = SelectOuterJoinQuery::new(2, 5, Point::anonymous(10.0, 90.0));
        let fast = select_on_outer_pushdown(&outer, &inner, &query);
        let slow = select_on_outer_after_join(&outer, &inner, &query);
        assert!(
            fast.metrics.neighborhoods_computed < slow.metrics.neighborhoods_computed / 10,
            "pushdown {} vs after-join {}",
            fast.metrics.neighborhoods_computed,
            slow.metrics.neighborhoods_computed
        );
    }

    #[test]
    fn result_cardinality_is_bounded_by_k_select_times_k_join() {
        let outer = GridIndex::build(scattered(100, 9), 6).unwrap();
        let inner = GridIndex::build(scattered(100, 10), 6).unwrap();
        let query = SelectOuterJoinQuery::new(3, 4, Point::anonymous(50.0, 50.0));
        let out = select_on_outer_pushdown(&outer, &inner, &query);
        assert!(out.len() <= query.k_join * query.k_select);
        assert_eq!(out.len(), query.k_join * query.k_select);
    }
}
