//! Queries combining a kNN-join with a kNN-select (Section 3 of the paper).
//!
//! The query evaluated by this module is, formally,
//!
//! ```text
//! (E1 ⋈kNN E2) ∩ (E1 × σ_{kσ,f}(E2))
//! ```
//!
//! i.e. the pairs `(e1, e2)` such that `e2` is among the `k⋈` nearest
//! neighbors of `e1` **and** among the `kσ` nearest neighbors of the focal
//! point `f`. The motivating example of the paper: mechanic shops joined with
//! their two closest hotels, keeping only hotels that are among the two
//! closest to a given shopping center.
//!
//! The naive relational optimization — pushing the kNN-select below the
//! *inner* relation of the join — is **invalid** (it changes the result,
//! Figures 1 and 2); [`invalid_inner_pushdown`] implements that wrong plan so
//! tests and examples can demonstrate the non-equivalence. Pushing a select
//! below the *outer* relation is valid (Figure 3) and implemented in
//! [`select_on_outer_pushdown`] / [`select_on_outer_after_join`].
//!
//! The efficient algorithms that preserve the correct semantics are
//! [`counting`] (Procedure 1) and [`block_marking`] (Procedures 2–3).

mod block_marking;
mod conceptual;
mod counting;
mod outer_pushdown;
mod range_select;

pub use block_marking::{
    block_marking, block_marking_with_config, block_marking_with_mode, BlockMarkingConfig,
};
pub use conceptual::{conceptual, conceptual_with_mode, invalid_inner_pushdown};
pub use counting::{counting, counting_with_mode};
pub use outer_pushdown::{
    select_on_outer_after_join, select_on_outer_after_join_with_mode, select_on_outer_pushdown,
};
pub use range_select::{
    range_inner_block_marking, range_inner_conceptual, range_inner_counting,
    range_inner_invalid_pushdown, RangeInnerJoinQuery,
};

use twoknn_geometry::Point;

/// Parameters of a query with a kNN-select on the **inner** relation of a
/// kNN-join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectInnerJoinQuery {
    /// `k⋈`: the k value of the kNN-join predicate.
    pub k_join: usize,
    /// `kσ`: the k value of the kNN-select predicate.
    pub k_select: usize,
    /// The focal point of the kNN-select (e.g. the shopping center).
    pub focal: Point,
}

impl SelectInnerJoinQuery {
    /// Creates a query description.
    pub fn new(k_join: usize, k_select: usize, focal: Point) -> Self {
        Self {
            k_join,
            k_select,
            focal,
        }
    }
}

/// Parameters of a query with a kNN-select on the **outer** relation of a
/// kNN-join (the completeness case of Section 3; pushdown is valid here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectOuterJoinQuery {
    /// `k⋈`: the k value of the kNN-join predicate.
    pub k_join: usize,
    /// `kσ`: the k value of the kNN-select predicate applied to the outer
    /// relation.
    pub k_select: usize,
    /// The focal point of the kNN-select.
    pub focal: Point,
}

impl SelectOuterJoinQuery {
    /// Creates a query description.
    pub fn new(k_join: usize, k_select: usize, focal: Point) -> Self {
        Self {
            k_join,
            k_select,
            focal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_constructors_store_parameters() {
        let f = Point::anonymous(1.0, 2.0);
        let q = SelectInnerJoinQuery::new(2, 3, f);
        assert_eq!((q.k_join, q.k_select), (2, 3));
        assert_eq!(q.focal, f);
        let q = SelectOuterJoinQuery::new(4, 5, f);
        assert_eq!((q.k_join, q.k_select), (4, 5));
    }
}
