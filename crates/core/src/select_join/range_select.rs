//! Range selection on the inner relation of a kNN-join.
//!
//! Footnote 1 of the paper: "Notice that the same challenge exists if the
//! selection is a spatial range (e.g., rectangle), or a relational
//! attribute-based selection." This module carries the paper's machinery over
//! to that case: the query
//!
//! ```text
//! (E1 ⋈kNN E2) ∩ (E1 × σ_R(E2))
//! ```
//!
//! returns the pairs `(e1, e2)` where `e2` is among the `k⋈` nearest inner
//! points of `e1` **and** lies inside the rectangle `R`. Pushing `σ_R` below
//! the join's inner relation is just as invalid as pushing a kNN-select, and
//! the same two pruning ideas apply:
//!
//! * **Counting** (per outer point): if more than `k⋈` inner points are
//!   strictly closer to `e1` than `MINDIST(e1, R)`, none of `e1`'s neighbors
//!   can be inside `R`, so `e1` is skipped without a neighborhood
//!   computation.
//! * **Block-Marking** (per outer block): with `r` the radius of the
//!   `k⋈`-neighborhood of the block center and `d` the block diagonal, the
//!   block cannot contribute when `MINDIST(center, R) > r + d`, because then
//!   every point in the block has `k⋈` inner points closer than anything
//!   inside `R`.

use twoknn_geometry::{mindist, Rect};
use twoknn_index::{get_knn, Metrics, SpatialIndex};

use crate::join::knn_join_with_metrics;
use crate::output::{Pair, QueryOutput};

/// Parameters of a query with a range selection on the **inner** relation of
/// a kNN-join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeInnerJoinQuery {
    /// `k⋈`: the k value of the kNN-join predicate.
    pub k_join: usize,
    /// The selection rectangle applied to the inner relation.
    pub range: Rect,
}

impl RangeInnerJoinQuery {
    /// Creates a query description.
    pub fn new(k_join: usize, range: Rect) -> Self {
        Self { k_join, range }
    }
}

/// The conceptually correct QEP: evaluate the full kNN-join and keep the
/// pairs whose inner point falls inside the range.
pub fn range_inner_conceptual<O, I>(
    outer: &O,
    inner: &I,
    query: &RangeInnerJoinQuery,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + ?Sized,
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let join_pairs = knn_join_with_metrics(outer, inner, query.k_join, &mut metrics);
    let rows: Vec<Pair> = join_pairs
        .into_iter()
        .filter(|pair| query.range.contains(&pair.right))
        .collect();
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// The **invalid** pushdown: join each outer point against only the inner
/// points inside the range. Provided to demonstrate the non-equivalence
/// (footnote 1); never use it to answer the query.
pub fn range_inner_invalid_pushdown<O, I>(
    outer: &O,
    inner: &I,
    query: &RangeInnerJoinQuery,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + ?Sized,
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    // Materialize σ_R(E2).
    let mut selected = Vec::new();
    for block in inner.blocks() {
        if !block.mbr.intersects(&query.range) {
            continue;
        }
        metrics.blocks_scanned += 1;
        for p in inner.block_points(block.id) {
            metrics.points_scanned += 1;
            if query.range.contains(&p) {
                selected.push(p);
            }
        }
    }
    let mut rows = Vec::new();
    for block in outer.blocks() {
        for e1 in outer.block_points(block.id) {
            let mut ranked: Vec<(f64, twoknn_geometry::Point)> = selected
                .iter()
                .map(|q| {
                    metrics.distance_computations += 1;
                    (e1.distance(q), *q)
                })
                .collect();
            ranked.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite distances")
                    .then(a.1.id.cmp(&b.1.id))
            });
            for (_, q) in ranked.into_iter().take(query.k_join) {
                rows.push(Pair::new(e1, q));
            }
        }
    }
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// Counting-style evaluation: per outer point, count the inner points in
/// blocks strictly closer than `MINDIST(e1, R)`; only survivors pay for a
/// neighborhood computation.
pub fn range_inner_counting<O, I>(
    outer: &O,
    inner: &I,
    query: &RangeInnerJoinQuery,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + ?Sized,
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let mut rows = Vec::new();
    for block in outer.blocks() {
        for e1 in outer.block_points(block.id) {
            let search_threshold = mindist(&e1, &query.range);
            let mut count = 0usize;
            let mut max_order = inner.maxdist_order(&e1);
            while count <= query.k_join {
                let Some(ob) = max_order.next() else {
                    break;
                };
                metrics.blocks_scanned += 1;
                if ob.distance >= search_threshold {
                    break;
                }
                count += ob.block.count;
            }
            if count <= query.k_join {
                let nbr = get_knn(inner, &e1, query.k_join, &mut metrics);
                for n in nbr.members() {
                    if query.range.contains(&n.point) {
                        rows.push(Pair::new(e1, n.point));
                    }
                }
            } else {
                metrics.points_pruned += 1;
            }
        }
    }
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

/// Block-Marking-style evaluation: classify every outer block with a single
/// neighborhood computation at its center, then join only the points of the
/// Contributing blocks.
pub fn range_inner_block_marking<O, I>(
    outer: &O,
    inner: &I,
    query: &RangeInnerJoinQuery,
) -> QueryOutput<Pair>
where
    O: SpatialIndex + ?Sized,
    I: SpatialIndex + ?Sized,
{
    let mut metrics = Metrics::default();
    let mut rows = Vec::new();
    for block in outer.blocks() {
        if block.count == 0 {
            continue;
        }
        metrics.blocks_scanned += 1;
        let center = block.center();
        let range_dist = mindist(&center, &query.range);
        // Cheap accept: a block overlapping (or touching) the range always
        // needs per-point processing.
        let non_contributing = if range_dist <= block.diagonal() {
            false
        } else {
            let nbr_center = get_knn(inner, &center, query.k_join, &mut metrics);
            nbr_center.len() >= query.k_join && nbr_center.radius() + block.diagonal() < range_dist
        };
        if non_contributing {
            metrics.blocks_pruned += 1;
            continue;
        }
        for e1 in outer.block_points(block.id) {
            let nbr = get_knn(inner, &e1, query.k_join, &mut metrics);
            for n in nbr.members() {
                if query.range.contains(&n.point) {
                    rows.push(Pair::new(e1, n.point));
                }
            }
        }
    }
    metrics.tuples_emitted = rows.len() as u64;
    QueryOutput::new(rows, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::pair_id_set;
    use twoknn_geometry::Point;
    use twoknn_index::GridIndex;

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
                    ^ seed.wrapping_mul(0xC2B2AE3D27D4EB4F);
                Point::new(
                    i as u64,
                    (h % 1009) as f64 * 0.1,
                    ((h / 1009) % 1009) as f64 * 0.1,
                )
            })
            .collect()
    }

    fn grid(points: Vec<Point>) -> GridIndex {
        GridIndex::build(points, 9).unwrap()
    }

    #[test]
    fn counting_and_block_marking_match_conceptual() {
        let outer = grid(scattered(200, 51));
        let inner = grid(scattered(400, 52));
        for (k, range) in [
            (2, Rect::new(10.0, 10.0, 30.0, 30.0)),
            (4, Rect::new(0.0, 0.0, 100.0, 100.0)),
            (3, Rect::new(80.0, 80.0, 95.0, 95.0)),
            (1, Rect::new(49.0, 49.0, 51.0, 51.0)),
        ] {
            let query = RangeInnerJoinQuery::new(k, range);
            let reference = pair_id_set(&range_inner_conceptual(&outer, &inner, &query).rows);
            assert_eq!(
                pair_id_set(&range_inner_counting(&outer, &inner, &query).rows),
                reference,
                "counting, k={k}"
            );
            assert_eq!(
                pair_id_set(&range_inner_block_marking(&outer, &inner, &query).rows),
                reference,
                "block-marking, k={k}"
            );
        }
    }

    #[test]
    fn pushdown_changes_the_result() {
        let outer = grid(scattered(100, 53));
        let inner = grid(scattered(200, 54));
        // A small range far from most outer points: the pushdown pairs every
        // outer point with in-range hotels, the correct plan only keeps outer
        // points whose own neighborhood reaches the range.
        let query = RangeInnerJoinQuery::new(2, Rect::new(5.0, 5.0, 15.0, 15.0));
        let correct = pair_id_set(&range_inner_conceptual(&outer, &inner, &query).rows);
        let wrong = pair_id_set(&range_inner_invalid_pushdown(&outer, &inner, &query).rows);
        assert_ne!(correct, wrong);
        assert!(correct.len() < wrong.len());
        assert!(correct.is_subset(&wrong));
    }

    #[test]
    fn far_away_range_prunes_most_of_the_outer_relation() {
        let outer = grid(scattered(300, 55));
        let inner = grid(scattered(600, 56));
        // The range sits in one corner; outer points elsewhere are pruned.
        let query = RangeInnerJoinQuery::new(2, Rect::new(0.0, 0.0, 8.0, 8.0));
        let counting = range_inner_counting(&outer, &inner, &query);
        let marking = range_inner_block_marking(&outer, &inner, &query);
        let reference = range_inner_conceptual(&outer, &inner, &query);
        assert_eq!(pair_id_set(&counting.rows), pair_id_set(&reference.rows));
        assert_eq!(pair_id_set(&marking.rows), pair_id_set(&reference.rows));
        assert!(counting.metrics.points_pruned > 200, "{}", counting.metrics);
        assert!(marking.metrics.blocks_pruned > 0, "{}", marking.metrics);
        assert!(marking.metrics.neighborhoods_computed < reference.metrics.neighborhoods_computed);
    }

    #[test]
    fn empty_range_yields_empty_result() {
        let outer = grid(scattered(50, 57));
        let inner = grid(scattered(80, 58));
        // A degenerate range containing no inner point.
        let query = RangeInnerJoinQuery::new(3, Rect::new(-10.0, -10.0, -5.0, -5.0));
        assert!(range_inner_conceptual(&outer, &inner, &query).is_empty());
        assert!(range_inner_counting(&outer, &inner, &query).is_empty());
        assert!(range_inner_block_marking(&outer, &inner, &query).is_empty());
    }
}
