//! Deriving guard regions from a standing query's shape, its pinned
//! snapshot, and its current result.
//!
//! The soundness contract (what [`maintain`](super::maintain) relies on):
//! for each referenced relation, a write whose **old and new positions**
//! all fall outside the guard (a) cannot change the query's result, and
//! (b) leaves every guard of the subscription valid. (b) is what lets the
//! maintainer skip a publish without refreshing anything: outside-guard
//! inserts never enter a guarded kNN set and outside-guard removes were
//! never in one, so every kth-NN distance the guard was derived from is
//! unchanged.
//!
//! Three constructions cover the five query shapes:
//!
//! * **Focal circle** — a kNN-select predicate `σ_{k,f}` is guarded by the
//!   circle at `f` with radius the *current* kth-NN distance: only writes
//!   inside it can change the select's membership (or its radius).
//! * **Result circles** — a join side whose outer points are pinned by the
//!   current result (the selected points of a select-on-outer pushdown, the
//!   `b`-points of a chained join) is guarded by one circle per pinned
//!   point with radius its current kth-join distance, read directly off the
//!   result rows. Sound because the pinned set itself can only change via
//!   writes to *other* relations — which trigger a re-evaluation and a
//!   guard refresh.
//! * **Block expansion** — a join inner relation whose outer side is a
//!   whole relation is guarded per outer block `B`: `MBR(B)` expanded by
//!   `kthNNdist(center(B)) + diagonal(B)/2`. By the triangle inequality
//!   every outer point `a ∈ B` has `kthNNdist(a) ≤ kthNNdist(center) +
//!   dist(a, center)`, so any inner write relevant to *some* `a` falls
//!   inside the expansion — the same center-based bound Block-Marking's
//!   preprocessing exploits (Theorem 1 of the paper).
//!
//! Sides where any insert creates result rows (the outer relation of a
//! kNN-join, a relation with fewer points than a predicate's `k`) get
//! [`Guard::Everything`].

use std::collections::HashMap;

use twoknn_geometry::{Point, Predicate, Rect};
use twoknn_index::{get_knn, Metrics, SpatialIndex};

use crate::output::{Pair, Triplet};
use crate::plan::executor::QuerySpec;
use crate::plan::Row;
use crate::select::knn_select_filtered_neighborhood;
use crate::store::DbSnapshot;

use super::registry::Guard;

/// The bounding square of a circle — guards are axis-aligned rectangles,
/// so circles are kept conservatively as their bounding boxes.
fn circle(center: &Point, radius: f64) -> Rect {
    let r = radius.max(0.0);
    Rect::new(center.x - r, center.y - r, center.x + r, center.y + r)
}

/// The focal-circle guard of a kNN-select `σ_{k,focal}` over `relation`.
fn select_guard(
    relation: &dyn SpatialIndex,
    focal: &Point,
    k: usize,
    metrics: &mut Metrics,
) -> Guard {
    if relation.num_points() < k {
        // Fewer points than k: any insert anywhere joins the select result.
        return Guard::Everything;
    }
    let kth = get_knn(relation, focal, k, metrics).radius();
    Guard::Regions(vec![circle(focal, kth)])
}

/// The focal-circle guard of a **filtered** kNN-select: the radius is the
/// k-th *matching* distance — never smaller than the unfiltered k-th
/// distance, so the circle still covers every position whose write could
/// change the (filtered) membership. Fewer than `k` matching points means
/// any matching insert anywhere joins the result: unbounded.
fn filtered_select_guard(
    relation: &dyn SpatialIndex,
    focal: &Point,
    k: usize,
    predicate: &Predicate,
    metrics: &mut Metrics,
) -> Guard {
    let nbr = knn_select_filtered_neighborhood(relation, focal, k, predicate, metrics);
    if nbr.len() < k {
        return Guard::Everything;
    }
    Guard::Regions(vec![circle(focal, nbr.radius())])
}

/// The block-expansion guard on `inner` for the join `outer ⋈_k inner`:
/// one rectangle per occupied outer block.
fn expansion_guard(
    outer: &dyn SpatialIndex,
    inner: &dyn SpatialIndex,
    k: usize,
    metrics: &mut Metrics,
) -> Guard {
    if inner.num_points() < k {
        return Guard::Everything;
    }
    let mut rects = Vec::new();
    for block in outer.blocks() {
        if block.count == 0 {
            continue;
        }
        let center = block.mbr.center();
        let kth = get_knn(inner, &center, k, metrics).radius();
        rects.push(block.mbr.expanded(kth + block.mbr.diagonal() * 0.5));
    }
    Guard::Regions(rects)
}

/// Result-circle guard on the join's inner relation: one circle per pinned
/// outer point, radius its farthest joined partner in the current rows.
/// `pairs` yields `(outer point, inner point)` per result row.
fn result_circles_guard(
    inner: &dyn SpatialIndex,
    k: usize,
    pairs: impl Iterator<Item = (Point, Point)>,
) -> Guard {
    if inner.num_points() < k {
        return Guard::Everything;
    }
    let mut radii: HashMap<u64, (Point, f64)> = HashMap::new();
    for (outer, joined) in pairs {
        let d = outer.distance(&joined);
        let entry = radii.entry(outer.id).or_insert((outer, d));
        if d > entry.1 {
            entry.1 = d;
        }
    }
    // Rect order within a guard is never observed (containment tests and
    // cell bucketing are order-independent), so HashMap iteration order is
    // fine as-is.
    Guard::Regions(radii.values().map(|(p, r)| circle(p, *r)).collect())
}

fn merge_into(guards: &mut HashMap<String, Guard>, relation: &str, guard: Guard) {
    match guards.remove(relation) {
        Some(existing) => {
            guards.insert(relation.to_string(), existing.merge(guard));
        }
        None => {
            guards.insert(relation.to_string(), guard);
        }
    }
}

/// Extracts the `(outer, inner)` point pairs of pair-valued rows.
fn pair_rows(rows: &[Row]) -> impl Iterator<Item = (Point, Point)> + '_ {
    rows.iter().filter_map(|row| match row {
        Row::Pair(Pair { left, right }) => Some((*left, *right)),
        _ => None,
    })
}

/// Extracts the `(b, c)` point pairs of triplet-valued rows.
fn chained_bc_rows(rows: &[Row]) -> impl Iterator<Item = (Point, Point)> + '_ {
    rows.iter().filter_map(|row| match row {
        Row::Triplet(Triplet { b, c, .. }) => Some((*b, *c)),
        _ => None,
    })
}

/// Computes the guard of every relation a standing query references, from
/// the snapshot it was just evaluated against and its current result rows.
/// kNN work performed for the guards (focal / block-center neighborhoods)
/// is counted into `metrics`.
pub(crate) fn compute_guards(
    spec: &QuerySpec,
    snapshot: &DbSnapshot,
    rows: &[Row],
    metrics: &mut Metrics,
) -> Result<HashMap<String, Guard>, crate::error::QueryError> {
    let mut guards = HashMap::new();
    match spec {
        QuerySpec::SelectInnerOfJoin {
            outer,
            inner,
            query,
        } => {
            let outer_rel = snapshot.relation(outer)?;
            let inner_rel = snapshot.relation(inner)?;
            // Any outer insert gains a joined row that may intersect the
            // select: unbounded.
            merge_into(&mut guards, outer, Guard::Everything);
            // Inner writes matter inside the select circle or wherever they
            // can enter some outer point's k_join neighborhood.
            let select = select_guard(inner_rel, &query.focal, query.k_select, metrics);
            let expansion = expansion_guard(outer_rel, inner_rel, query.k_join, metrics);
            merge_into(&mut guards, inner, select.merge(expansion));
        }
        QuerySpec::SelectOuterOfJoin {
            outer,
            inner,
            query,
        } => {
            let outer_rel = snapshot.relation(outer)?;
            let inner_rel = snapshot.relation(inner)?;
            // Outer writes matter only where they can change the select.
            merge_into(
                &mut guards,
                outer,
                select_guard(outer_rel, &query.focal, query.k_select, metrics),
            );
            // The selected outer points are pinned by the result: the
            // pushdown joins each selected point with its full k_join
            // neighborhood, so the rows carry every per-point radius.
            merge_into(
                &mut guards,
                inner,
                result_circles_guard(inner_rel, query.k_join, pair_rows(rows)),
            );
        }
        QuerySpec::UnchainedJoins { a, b, c, query } => {
            let a_rel = snapshot.relation(a)?;
            let b_rel = snapshot.relation(b)?;
            let c_rel = snapshot.relation(c)?;
            merge_into(&mut guards, a, Guard::Everything);
            merge_into(&mut guards, c, Guard::Everything);
            let from_a = expansion_guard(a_rel, b_rel, query.k_ab, metrics);
            let from_c = expansion_guard(c_rel, b_rel, query.k_cb, metrics);
            merge_into(&mut guards, b, from_a.merge(from_c));
        }
        QuerySpec::ChainedJoins { a, b, c, query } => {
            let a_rel = snapshot.relation(a)?;
            let b_rel = snapshot.relation(b)?;
            let c_rel = snapshot.relation(c)?;
            merge_into(&mut guards, a, Guard::Everything);
            merge_into(
                &mut guards,
                b,
                expansion_guard(a_rel, b_rel, query.k_ab, metrics),
            );
            // The b-points reachable from A are pinned by the result; every
            // result b carries its full k_bc neighborhood in the rows.
            merge_into(
                &mut guards,
                c,
                result_circles_guard(c_rel, query.k_bc, chained_bc_rows(rows)),
            );
        }
        QuerySpec::TwoSelects { relation, query } => {
            let rel = snapshot.relation(relation)?;
            let g1 = select_guard(rel, &query.f1, query.k1, metrics);
            let g2 = select_guard(rel, &query.f2, query.k2, metrics);
            merge_into(&mut guards, relation, g1.merge(g2));
        }
        QuerySpec::KnnSelect { relation, query } => {
            let rel = snapshot.relation(relation)?;
            merge_into(
                &mut guards,
                relation,
                select_guard(rel, &query.focal, query.k, metrics),
            );
        }
        QuerySpec::Filtered { spec, filters } => match spec.as_ref() {
            // A filtered single select keeps a precise guard: the circle at
            // the *filtered* k-th distance. Sound regardless of post
            // filters — a write outside the circle cannot change the
            // filtered kNN set, hence not any residual-filtered subset of
            // it either.
            QuerySpec::KnnSelect { relation, query } => {
                let rel = snapshot.relation(relation)?;
                let predicate = filters
                    .pre
                    .get(relation)
                    .cloned()
                    .unwrap_or(Predicate::True);
                merge_into(
                    &mut guards,
                    relation,
                    filtered_select_guard(rel, &query.focal, query.k, &predicate, metrics),
                );
            }
            // Every other filtered shape falls back to unbounded guards on
            // all referenced relations: always sound (every publish
            // re-evaluates), at the cost of maintenance work. Tightening
            // these is future work.
            inner => {
                for name in inner.relations() {
                    merge_into(&mut guards, name, Guard::Everything);
                }
            }
        },
    }
    Ok(guards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selects2::TwoSelectsQuery;
    use crate::store::RelationStore;
    use twoknn_index::GridIndex;

    fn store_with(points: Vec<Point>) -> RelationStore {
        let store = RelationStore::default();
        store.register(
            "R",
            std::sync::Arc::new(GridIndex::build(points, 5).unwrap()),
            crate::store::IndexConfig::Grid { cells_per_axis: 5 },
        );
        store
    }

    fn cloud(n: usize) -> Vec<Point> {
        (0..n as u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                Point::new(i, (h % 997) as f64 * 0.1, ((h / 997) % 997) as f64 * 0.1)
            })
            .collect()
    }

    #[test]
    fn two_selects_guard_is_the_pair_of_focal_circles() {
        let store = store_with(cloud(500));
        let snapshot = store.pin_many(&["R"]).unwrap();
        let spec = QuerySpec::TwoSelects {
            relation: "R".into(),
            query: TwoSelectsQuery::new(
                4,
                Point::anonymous(20.0, 20.0),
                8,
                Point::anonymous(70.0, 70.0),
            ),
        };
        let mut m = Metrics::default();
        let guards = compute_guards(&spec, &snapshot, &[], &mut m).unwrap();
        let rel = snapshot.relation("R").unwrap();
        match &guards["R"] {
            Guard::Regions(rects) => {
                assert_eq!(rects.len(), 2);
                // Each circle's radius is the kth-NN distance of its focal.
                let r1 = get_knn(rel, &Point::anonymous(20.0, 20.0), 4, &mut m).radius();
                assert!((rects[0].width() * 0.5 - r1).abs() < 1e-9);
                // Guards are tight: far positions are uncovered.
                let far = Point::anonymous(500.0, 500.0);
                assert!(!rects.iter().any(|r| r.contains(&far)));
            }
            g => panic!("expected bounded guard, got {g:?}"),
        }
    }

    #[test]
    fn undersized_relation_forces_an_unbounded_guard() {
        let store = store_with(cloud(3));
        let snapshot = store.pin_many(&["R"]).unwrap();
        let spec = QuerySpec::TwoSelects {
            relation: "R".into(),
            query: TwoSelectsQuery::new(
                10,
                Point::anonymous(0.0, 0.0),
                2,
                Point::anonymous(1.0, 1.0),
            ),
        };
        let mut m = Metrics::default();
        let guards = compute_guards(&spec, &snapshot, &[], &mut m).unwrap();
        assert!(matches!(guards["R"], Guard::Everything));
    }
}
