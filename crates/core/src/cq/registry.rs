//! The spatial guard registry: which standing queries can a write at a
//! given position possibly affect?
//!
//! Guards are registered per relation. Each relation keeps its bounded
//! guard rectangles bucketed in a small uniform grid (the same
//! clamped-cell idiom as the store's overlay grid in
//! [`store::overlay`](crate::store)): a rectangle is registered in every
//! cell its clamped footprint overlaps, and a probe point clamps into
//! exactly one cell. Clamping is componentwise monotone, so a point inside
//! a guard rectangle always lands in a cell that rectangle was registered
//! in — points and rectangles far outside the anchored extent meet in the
//! edge cells and are resolved by the exact containment test.
//!
//! Unbounded guards ([`Guard::Everything`]) are kept in a side list: they
//! match every probe, no grid traffic.

use std::collections::{BTreeSet, HashMap};

use twoknn_geometry::{Point, Rect};

use super::SubscriptionId;

/// The guard a subscription registers against one relation.
#[derive(Debug, Clone)]
pub(crate) enum Guard {
    /// Every write to the relation may change the result (e.g. the outer
    /// side of a kNN-join: any insert creates new rows).
    Everything,
    /// Only writes whose old or new position falls inside one of these
    /// rectangles can change the result. An empty list means *no* write to
    /// this relation can (e.g. the C-side of a chained join whose result is
    /// empty because A is).
    Regions(Vec<Rect>),
}

impl Guard {
    /// Merges another guard for the same (subscription, relation) pair —
    /// used when a relation plays several roles in one query (e.g. both
    /// sides of an unchained join).
    pub(crate) fn merge(self, other: Guard) -> Guard {
        match (self, other) {
            (Guard::Regions(mut a), Guard::Regions(b)) => {
                a.extend(b);
                Guard::Regions(a)
            }
            _ => Guard::Everything,
        }
    }
}

/// Cells-per-axis target: ≈ √(rects / CELL_TARGET), capped.
const CELL_TARGET: usize = 8;
const MAX_CELLS_PER_AXIS: usize = 64;

fn desired_fanout(rects: usize) -> usize {
    ((rects as f64 / CELL_TARGET as f64).sqrt().ceil() as usize).clamp(1, MAX_CELLS_PER_AXIS)
}

/// All guards registered against one relation.
#[derive(Debug)]
struct RelationGuards {
    /// Every subscription guarding this relation, with its exact guard.
    guards: HashMap<SubscriptionId, Guard>,
    /// Subscriptions with an unbounded guard (sorted for determinism).
    unbounded: BTreeSet<SubscriptionId>,
    /// Extent the grid decomposition is anchored to (meaningless while
    /// `cells_per_axis == 0`).
    bounds: Rect,
    /// Cells per axis; 0 iff no bounded rectangles are registered.
    cells_per_axis: usize,
    /// Per cell: `(subscription, index into its rect list)` for every
    /// rectangle overlapping the cell — a probe tests only the rects
    /// registered in its cell, never a subscription's whole rect list.
    cells: Vec<Vec<(SubscriptionId, usize)>>,
    /// Total registered rectangles (sizes the fanout).
    rect_count: usize,
}

impl Default for RelationGuards {
    fn default() -> Self {
        Self {
            guards: HashMap::new(),
            unbounded: BTreeSet::new(),
            bounds: Rect::new(0.0, 0.0, 0.0, 0.0),
            cells_per_axis: 0,
            cells: Vec::new(),
            rect_count: 0,
        }
    }
}

impl RelationGuards {
    fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }

    /// The cell coordinate range a rectangle's clamped footprint overlaps.
    fn cell_span(&self, rect: &Rect) -> (usize, usize, usize, usize) {
        let n = self.cells_per_axis;
        debug_assert!(n > 0);
        let cw = (self.bounds.width() / n as f64).max(f64::MIN_POSITIVE);
        let ch = (self.bounds.height() / n as f64).max(f64::MIN_POSITIVE);
        let clamp = |v: isize| v.clamp(0, n as isize - 1) as usize;
        let ix0 = clamp(((rect.min_x - self.bounds.min_x) / cw).floor() as isize);
        let ix1 = clamp(((rect.max_x - self.bounds.min_x) / cw).floor() as isize);
        let iy0 = clamp(((rect.min_y - self.bounds.min_y) / ch).floor() as isize);
        let iy1 = clamp(((rect.max_y - self.bounds.min_y) / ch).floor() as isize);
        (ix0, ix1, iy0, iy1)
    }

    /// The cell a probe point clamps into.
    fn cell_of(&self, p: &Point) -> usize {
        let n = self.cells_per_axis;
        debug_assert!(n > 0);
        let cw = (self.bounds.width() / n as f64).max(f64::MIN_POSITIVE);
        let ch = (self.bounds.height() / n as f64).max(f64::MIN_POSITIVE);
        let clamp = |v: isize| v.clamp(0, n as isize - 1) as usize;
        let ix = clamp(((p.x - self.bounds.min_x) / cw).floor() as isize);
        let iy = clamp(((p.y - self.bounds.min_y) / ch).floor() as isize);
        iy * n + ix
    }

    /// Registers one subscription's bounded rectangles into the grid. Each
    /// rectangle visits each overlapped cell exactly once, so `(sub, rect)`
    /// entries are unique per cell by construction — no dedup scan needed.
    fn bucket(&mut self, sub: SubscriptionId, rects: &[Rect]) {
        for (index, rect) in rects.iter().enumerate() {
            let (ix0, ix1, iy0, iy1) = self.cell_span(rect);
            for iy in iy0..=iy1 {
                for ix in ix0..=ix1 {
                    self.cells[iy * self.cells_per_axis + ix].push((sub, index));
                }
            }
        }
    }

    /// Rebuilds the grid decomposition over the current guard population.
    fn rebucket(&mut self) {
        let mut extent: Option<Rect> = None;
        let mut rects = 0usize;
        for guard in self.guards.values() {
            if let Guard::Regions(list) = guard {
                rects += list.len();
                for r in list {
                    extent = Some(match extent {
                        Some(e) => e.union(r),
                        None => *r,
                    });
                }
            }
        }
        self.rect_count = rects;
        let Some(bounds) = extent else {
            self.bounds = Rect::new(0.0, 0.0, 0.0, 0.0);
            self.cells_per_axis = 0;
            self.cells = Vec::new();
            return;
        };
        self.bounds = bounds;
        self.cells_per_axis = desired_fanout(rects);
        self.cells = vec![Vec::new(); self.cells_per_axis * self.cells_per_axis];
        let subs: Vec<SubscriptionId> = self.guards.keys().copied().collect();
        for sub in subs {
            if let Guard::Regions(list) = self.guards[&sub].clone() {
                self.bucket(sub, &list);
            }
        }
    }

    /// Installs (or replaces) one subscription's guard.
    fn install(&mut self, sub: SubscriptionId, guard: Guard) {
        self.remove(sub);
        match &guard {
            Guard::Everything => {
                self.unbounded.insert(sub);
                self.guards.insert(sub, guard);
            }
            Guard::Regions(rects) => {
                let rects = rects.clone();
                self.rect_count += rects.len();
                self.guards.insert(sub, guard);
                // Re-anchor when the decomposition is geometrically stale or
                // the new rectangles outgrow the anchored extent badly
                // enough that edge cells would crowd; otherwise bucket
                // incrementally (clamping keeps correctness either way).
                let desired = desired_fanout(self.rect_count);
                let stale = self.cells_per_axis == 0
                    || desired >= self.cells_per_axis * 2
                    || desired * 2 <= self.cells_per_axis;
                if stale {
                    self.rebucket();
                } else {
                    self.bucket(sub, &rects);
                }
            }
        }
    }

    /// Removes one subscription's guard entirely.
    fn remove(&mut self, sub: SubscriptionId) {
        let Some(previous) = self.guards.remove(&sub) else {
            return;
        };
        match previous {
            Guard::Everything => {
                self.unbounded.remove(&sub);
            }
            Guard::Regions(rects) => {
                self.rect_count -= rects.len();
                if self.cells_per_axis > 0 {
                    for cell in &mut self.cells {
                        cell.retain(|(s, _)| *s != sub);
                    }
                }
            }
        }
    }

    /// Splits this relation's subscriptions into affected / total for a
    /// batch of write positions. Cost is O(positions × cell occupancy):
    /// only the rects registered in a probe's cell are containment-tested,
    /// never a candidate subscription's whole rect list.
    fn probe(&self, positions: &[Point], affected: &mut BTreeSet<SubscriptionId>) {
        affected.extend(self.unbounded.iter().copied());
        if self.cells_per_axis == 0 {
            return;
        }
        for p in positions {
            for (sub, index) in &self.cells[self.cell_of(p)] {
                if affected.contains(sub) {
                    continue;
                }
                let Guard::Regions(rects) = &self.guards[sub] else {
                    unreachable!("only bounded guards are bucketed");
                };
                if rects[*index].contains(p) {
                    affected.insert(*sub);
                }
            }
        }
    }
}

/// Guards of every subscription, keyed by relation name.
#[derive(Debug, Default)]
pub(crate) struct GuardRegistry {
    relations: HashMap<String, RelationGuards>,
}

impl GuardRegistry {
    /// Installs (or replaces) a subscription's guards. Relations the
    /// subscription previously guarded but no longer does are cleaned up by
    /// [`GuardRegistry::remove`]; standing queries reference a fixed
    /// relation set, so install always covers the same names.
    pub(crate) fn install(&mut self, sub: SubscriptionId, guards: HashMap<String, Guard>) {
        for (relation, guard) in guards {
            self.relations
                .entry(relation)
                .or_default()
                .install(sub, guard);
        }
    }

    /// Removes a subscription's guards from every relation.
    pub(crate) fn remove(&mut self, sub: SubscriptionId) {
        self.relations.retain(|_, guards| {
            guards.remove(sub);
            !guards.is_empty()
        });
    }

    /// Probes a publish on `relation` with the batch's effective write
    /// positions (old and new). Returns the affected subscriptions and the
    /// total number guarding the relation — `total - affected.len()` is the
    /// number of guard-pruned skips.
    pub(crate) fn probe(
        &self,
        relation: &str,
        positions: &[Point],
    ) -> (BTreeSet<SubscriptionId>, usize) {
        let mut affected = BTreeSet::new();
        let Some(guards) = self.relations.get(relation) else {
            return (affected, 0);
        };
        guards.probe(positions, &mut affected);
        (affected, guards.guards.len())
    }

    /// Number of subscriptions guarding `relation` — O(1), no set
    /// materialization (the skip counter's denominator on every publish).
    pub(crate) fn count_on(&self, relation: &str) -> usize {
        self.relations
            .get(relation)
            .map(|guards| guards.guards.len())
            .unwrap_or(0)
    }

    /// Whether `sub` currently guards `relation` — O(1) (the dirty-set
    /// filter on the publish path).
    pub(crate) fn is_guarding(&self, relation: &str, sub: SubscriptionId) -> bool {
        self.relations
            .get(relation)
            .map(|guards| guards.guards.contains_key(&sub))
            .unwrap_or(false)
    }

    /// Every subscription guarding `relation` (the re-evaluate-all policy's
    /// "affected" set).
    pub(crate) fn all_on(&self, relation: &str) -> (BTreeSet<SubscriptionId>, usize) {
        match self.relations.get(relation) {
            Some(guards) => {
                let subs: BTreeSet<SubscriptionId> = guards.guards.keys().copied().collect();
                let total = subs.len();
                (subs, total)
            }
            None => (BTreeSet::new(), 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(x0, y0, x1, y1)
    }

    fn ids(set: &BTreeSet<SubscriptionId>) -> Vec<u64> {
        set.iter().map(|s| s.0).collect()
    }

    #[test]
    fn probe_matches_rect_membership_exactly() {
        let mut reg = GuardRegistry::default();
        for i in 0..50u64 {
            let cx = (i % 10) as f64 * 10.0;
            let cy = (i / 10) as f64 * 10.0;
            reg.install(
                SubscriptionId(i),
                HashMap::from([(
                    "R".to_string(),
                    Guard::Regions(vec![rect(cx, cy, cx + 4.0, cy + 4.0)]),
                )]),
            );
        }
        // A point inside exactly one guard.
        let (affected, total) = reg.probe("R", &[Point::anonymous(21.0, 11.0)]);
        assert_eq!(total, 50);
        assert_eq!(ids(&affected), vec![12]);
        // A point far outside every guard.
        let (affected, _) = reg.probe("R", &[Point::anonymous(500.0, 500.0)]);
        assert!(affected.is_empty());
        // Several points: union of matches.
        let (affected, _) = reg.probe(
            "R",
            &[Point::anonymous(1.0, 1.0), Point::anonymous(43.0, 33.0)],
        );
        assert_eq!(ids(&affected), vec![0, 34]);
        // Unknown relation: nothing guards it.
        let (affected, total) = reg.probe("Nope", &[Point::anonymous(1.0, 1.0)]);
        assert!(affected.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn unbounded_guards_match_every_probe() {
        let mut reg = GuardRegistry::default();
        reg.install(
            SubscriptionId(1),
            HashMap::from([("R".to_string(), Guard::Everything)]),
        );
        reg.install(
            SubscriptionId(2),
            HashMap::from([(
                "R".to_string(),
                Guard::Regions(vec![rect(0.0, 0.0, 1.0, 1.0)]),
            )]),
        );
        let (affected, total) = reg.probe("R", &[Point::anonymous(900.0, 900.0)]);
        assert_eq!(ids(&affected), vec![1]);
        assert_eq!(total, 2);
    }

    #[test]
    fn empty_region_guard_never_matches_but_counts() {
        let mut reg = GuardRegistry::default();
        reg.install(
            SubscriptionId(7),
            HashMap::from([("R".to_string(), Guard::Regions(vec![]))]),
        );
        let (affected, total) = reg.probe("R", &[Point::anonymous(0.0, 0.0)]);
        assert!(affected.is_empty());
        assert_eq!(total, 1);
    }

    #[test]
    fn install_replaces_and_remove_cleans_up() {
        let mut reg = GuardRegistry::default();
        let sub = SubscriptionId(3);
        reg.install(
            sub,
            HashMap::from([(
                "R".to_string(),
                Guard::Regions(vec![rect(0.0, 0.0, 5.0, 5.0)]),
            )]),
        );
        assert_eq!(
            ids(&reg.probe("R", &[Point::anonymous(2.0, 2.0)]).0),
            vec![3]
        );
        // Replace with a guard elsewhere: the old rect no longer matches.
        reg.install(
            sub,
            HashMap::from([(
                "R".to_string(),
                Guard::Regions(vec![rect(50.0, 50.0, 55.0, 55.0)]),
            )]),
        );
        assert!(reg.probe("R", &[Point::anonymous(2.0, 2.0)]).0.is_empty());
        assert_eq!(
            ids(&reg.probe("R", &[Point::anonymous(52.0, 52.0)]).0),
            vec![3]
        );
        reg.remove(sub);
        let (affected, total) = reg.probe("R", &[Point::anonymous(52.0, 52.0)]);
        assert!(affected.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn probes_outside_the_anchored_extent_clamp_soundly() {
        let mut reg = GuardRegistry::default();
        // Anchor the grid with many rects in [0, 100]².
        for i in 0..40u64 {
            let c = i as f64 * 2.0;
            reg.install(
                SubscriptionId(i),
                HashMap::from([(
                    "R".to_string(),
                    Guard::Regions(vec![rect(c, c, c + 1.0, c + 1.0)]),
                )]),
            );
        }
        // A guard installed far outside the extent (no re-anchor forced):
        // a probe inside it must still match via edge-cell clamping.
        reg.install(
            SubscriptionId(99),
            HashMap::from([(
                "R".to_string(),
                Guard::Regions(vec![rect(1_000.0, 1_000.0, 1_001.0, 1_001.0)]),
            )]),
        );
        let (affected, _) = reg.probe("R", &[Point::anonymous(1_000.5, 1_000.5)]);
        assert_eq!(ids(&affected), vec![99]);
    }

    #[test]
    fn merge_prefers_everything() {
        let g = Guard::Regions(vec![rect(0.0, 0.0, 1.0, 1.0)]).merge(Guard::Everything);
        assert!(matches!(g, Guard::Everything));
        let g = Guard::Regions(vec![rect(0.0, 0.0, 1.0, 1.0)])
            .merge(Guard::Regions(vec![rect(2.0, 2.0, 3.0, 3.0)]));
        match g {
            Guard::Regions(r) => assert_eq!(r.len(), 2),
            _ => panic!("expected regions"),
        }
    }
}
