//! The continuous-query engine: subscription lifecycle and incremental
//! maintenance over publishes.
//!
//! # Concurrency model
//!
//! * **Publishes** ([`CqEngine::on_publish`], called from
//!   [`Database::ingest`](crate::plan::Database::ingest) after the store
//!   swapped the new snapshot in) probe the guard registry on the writer's
//!   thread — cheap: O(write positions × cell occupancy) — and only
//!   *schedule* re-evaluations, as detached [`WorkerPool`] jobs.
//! * **Re-evaluations** serialize per subscription on its state mutex and
//!   **coalesce** under an epoch pair (`scheduled`/`applied`): a burst of
//!   publishes queues a burst of jobs, but each job that finds its target
//!   epoch already applied returns immediately, so the burst costs one
//!   re-evaluation plus cheap no-ops. Re-evaluations pin the *current*
//!   relation versions (not the triggering publish's), which is what makes
//!   coalescing sound — a later evaluation always covers earlier publishes.
//! * **Stale-guard closure**: between a publish that affects a subscription
//!   and the re-evaluation that refreshes its guards, the registered guards
//!   may under-approximate (e.g. a removed select member grows the focal
//!   circle). Any publish arriving in that window sees the subscription in
//!   the engine's *dirty set* and re-evaluates it unconditionally instead
//!   of trusting the stale guard. Scheduling (epoch bump + dirty insert)
//!   and the fresh-guard install + dirty clear both happen under the
//!   engine lock, so the window is closed exactly — and the publish path
//!   stays O(writes × cell occupancy + dirty), never O(subscriptions).
//! * **Lock order** is subscription-state → engine-state; the engine lock
//!   is never held while taking a subscription lock.
//!
//! A re-evaluation diffs the fresh rows against the last emitted state by
//! row id-tuple and appends a [`ResultDelta`] only when something changed;
//! [`Database::poll`](crate::plan::Database::poll) drains the queue.
//!
//! Re-evaluations run the plain kNN entry points, so every query a worker
//! (or the inline path) executes shares that thread's
//! [`ScratchSpace`](twoknn_index::ScratchSpace) via
//! [`with_thread_scratch`](twoknn_index::with_thread_scratch) — a publish
//! burst's worth of re-evaluations re-allocates no per-query kNN state.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use twoknn_geometry::Point;
use twoknn_index::Metrics;

use crate::error::QueryError;
use crate::exec::{ExecutionMode, WorkerPool};
use crate::obs::{EventKind, HistogramKind};
use crate::plan::executor::QuerySpec;
use crate::plan::physical::compile;
use crate::plan::strategy::Strategy;
use crate::plan::Row;
use crate::store::{IngestReceipt, RelationStore, WriteOp};

use super::guard::compute_guards;
use super::registry::GuardRegistry;
use super::{MaintenancePolicy, ResultDelta, SubscriptionId};

/// A row's identity: its component point ids, padded with `u64::MAX`.
/// Deltas are keyed by this — a retained row whose points merely moved is
/// not re-reported.
type RowKey = [u64; 3];

fn row_key(row: &Row) -> RowKey {
    let mut key = [u64::MAX; 3];
    for (slot, id) in key.iter_mut().zip(row.ids()) {
        *slot = id;
    }
    key
}

/// One standing query.
struct Subscription {
    id: SubscriptionId,
    spec: QuerySpec,
    /// The physical strategy pinned at subscribe time (explicit or
    /// optimizer-chosen); every re-evaluation compiles with it.
    strategy: Strategy,
    /// Maintenance epochs: `scheduled` counts re-evaluations requested
    /// (bumped only under the engine lock), `applied` the epoch the last
    /// completed re-evaluation covered. `scheduled > applied` ⇔ a
    /// re-evaluation is pending or in flight (mirrored in the engine's
    /// dirty set, which is what the publish path consults).
    scheduled: AtomicU64,
    applied: AtomicU64,
    state: Mutex<SubState>,
}

/// The mutable per-subscription state, serialized by its mutex.
struct SubState {
    /// Current result, keyed by row identity (sorted for determinism).
    rows: BTreeMap<RowKey, Row>,
    /// Deltas emitted and not yet polled.
    pending: Vec<ResultDelta>,
    /// Highest version the result reflects (monotone).
    version: u64,
}

/// Registry + subscription table, guarded by the engine mutex.
struct EngineState {
    registry: GuardRegistry,
    subs: HashMap<SubscriptionId, Arc<Subscription>>,
    policy: MaintenancePolicy,
    /// Subscriptions with a pending or in-flight re-evaluation — their
    /// registered guards may be stale, so the publish path re-evaluates
    /// them unconditionally instead of scanning every subscription's
    /// epochs. Kept in lockstep with the epoch pair under this mutex.
    dirty: BTreeSet<SubscriptionId>,
}

/// The engine behind [`Database`](crate::plan::Database)'s continuous-query
/// API. Created lazily on first use; shares the store's metrics record and
/// the database's worker pool.
pub(crate) struct CqEngine {
    store: Arc<RelationStore>,
    pool: Arc<WorkerPool>,
    metrics: Arc<Mutex<Metrics>>,
    state: Mutex<EngineState>,
    next_id: AtomicU64,
}

impl CqEngine {
    pub(crate) fn new(
        store: Arc<RelationStore>,
        pool: Arc<WorkerPool>,
        metrics: Arc<Mutex<Metrics>>,
    ) -> Self {
        Self {
            store,
            pool,
            metrics,
            state: Mutex::new(EngineState {
                registry: GuardRegistry::default(),
                subs: HashMap::new(),
                policy: MaintenancePolicy::default(),
                dirty: BTreeSet::new(),
            }),
            next_id: AtomicU64::new(0),
        }
    }

    /// Switches between guarded maintenance and the re-evaluate-all
    /// baseline.
    pub(crate) fn set_policy(&self, policy: MaintenancePolicy) {
        self.lock_state().policy = policy;
    }

    /// Number of registered subscriptions.
    pub(crate) fn len(&self) -> usize {
        self.lock_state().subs.len()
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, EngineState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn find(&self, id: SubscriptionId) -> Result<Arc<Subscription>, QueryError> {
        self.lock_state()
            .subs
            .get(&id)
            .cloned()
            .ok_or(QueryError::UnknownSubscription { id: id.0 })
    }

    /// Registers a standing query: evaluates it once against the current
    /// snapshot, installs its guards, and emits the initial result as the
    /// first delta.
    pub(crate) fn subscribe(
        self: &Arc<Self>,
        spec: QuerySpec,
        strategy: Strategy,
    ) -> Result<SubscriptionId, QueryError> {
        let names = spec.relations();
        let snapshot = self.store.pin_many(&names)?;
        let pinned_versions = snapshot.versions();
        let plan = compile(&snapshot, &spec, strategy)?;
        let result = plan.execute(ExecutionMode::default_mode());
        let rows = result.rows();
        let mut work = result.metrics();
        let guards = compute_guards(&spec, &snapshot, &rows, &mut work)?;
        let version = pinned_versions.iter().map(|(_, v)| *v).max().unwrap_or(0);

        let id = SubscriptionId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let mut initial = Vec::new();
        if !rows.is_empty() {
            initial.push(ResultDelta {
                added: rows.clone(),
                removed: Vec::new(),
                version,
            });
        }
        let sub = Arc::new(Subscription {
            id,
            spec,
            strategy,
            scheduled: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            state: Mutex::new(SubState {
                rows: rows.iter().map(|r| (row_key(r), *r)).collect(),
                pending: initial,
                version,
            }),
        });
        {
            let mut st = self.lock_state();
            st.subs.insert(id, Arc::clone(&sub));
            st.registry.install(id, guards);
        }
        self.merge_metrics(&work);

        // Close the subscribe/ingest race: a publish that landed between
        // our pin and the registry install was never probed against these
        // guards — if any referenced relation moved past the pinned
        // version, re-evaluate once to catch up.
        let advanced = pinned_versions.iter().any(|(name, pinned)| {
            self.store
                .get(name)
                .map(|rel| rel.load().version() > *pinned)
                .unwrap_or(false)
        });
        if advanced {
            {
                let mut st = self.lock_state();
                Self::mark_scheduled(&mut st, &sub);
            }
            self.spawn_reevaluation(&sub);
        }
        Ok(id)
    }

    /// Drops a standing query. Pending deltas are discarded; an in-flight
    /// re-evaluation finishes against its own handles and is discarded too.
    pub(crate) fn unsubscribe(&self, id: SubscriptionId) -> Result<(), QueryError> {
        let mut st = self.lock_state();
        st.subs
            .remove(&id)
            .ok_or(QueryError::UnknownSubscription { id: id.0 })?;
        st.registry.remove(id);
        st.dirty.remove(&id);
        Ok(())
    }

    /// Drains the subscription's emitted-and-unpolled deltas, in emission
    /// order.
    pub(crate) fn poll(&self, id: SubscriptionId) -> Result<Vec<ResultDelta>, QueryError> {
        let sub = self.find(id)?;
        let mut st = sub.state.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(std::mem::take(&mut st.pending))
    }

    /// The subscription's current accumulated result (what folding every
    /// delta emitted so far — polled or not — reconstructs), sorted by row
    /// identity, plus the version it reflects.
    pub(crate) fn result(&self, id: SubscriptionId) -> Result<(Vec<Row>, u64), QueryError> {
        let sub = self.find(id)?;
        let st = sub.state.lock().unwrap_or_else(PoisonError::into_inner);
        Ok((st.rows.values().copied().collect(), st.version))
    }

    /// Reacts to one published ingest batch: probe guards, count skips,
    /// schedule re-evaluations for affected subscriptions.
    pub(crate) fn on_publish(
        self: &Arc<Self>,
        relation: &str,
        ops: &[WriteOp],
        receipt: &IngestReceipt,
    ) {
        // Effective write positions, old and new: an upsert matters where
        // the point lands *and* where it left; a remove where it was.
        // (An id upserted and removed within one batch contributes its
        // transient position through the upsert arm.)
        let mut positions: Vec<Point> = Vec::new();
        for (op, changed) in ops.iter().zip(&receipt.changed) {
            if !*changed {
                continue;
            }
            match op {
                WriteOp::Upsert(p) => {
                    positions.push(*p);
                    if let Some(old) = receipt.prev.position_of(p.id) {
                        if (old.x, old.y) != (p.x, p.y) {
                            positions.push(old);
                        }
                    }
                }
                WriteOp::Remove(id) => {
                    if let Some(old) = receipt.prev.position_of(*id) {
                        positions.push(old);
                    }
                }
            }
        }
        if positions.is_empty() {
            return;
        }

        let (to_run, skips) = {
            let mut st = self.lock_state();
            let total = st.registry.count_on(relation);
            if total == 0 {
                return;
            }
            let mut affected = match st.policy {
                MaintenancePolicy::Guarded => st.registry.probe(relation, &positions).0,
                MaintenancePolicy::ReevalAll => st.registry.all_on(relation).0,
            };
            if matches!(st.policy, MaintenancePolicy::Guarded) {
                // Dirty subscriptions may carry stale guards — never trust
                // a skip for them. O(dirty), not O(subscriptions): quiet
                // populations cost nothing here.
                for id in &st.dirty {
                    if !affected.contains(id) && st.registry.is_guarding(relation, *id) {
                        affected.insert(*id);
                    }
                }
            }
            let subs: Vec<Arc<Subscription>> = affected
                .iter()
                .filter_map(|id| st.subs.get(id).cloned())
                .collect();
            for sub in &subs {
                Self::mark_scheduled(&mut st, sub);
            }
            (subs, (total - affected.len()) as u64)
        };

        {
            let mut m = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
            m.cq_reevals += to_run.len() as u64;
            m.cq_skips += skips;
        }
        // A guard-probe storm — one publish fanning out into many
        // re-evaluations — is the cq pathology worth flagging.
        if to_run.len() >= 8 {
            self.store.obs().event(
                EventKind::CqReevalStorm,
                format!(
                    "publish on `{relation}` scheduled {} re-evaluation(s)",
                    to_run.len()
                ),
            );
        }
        for sub in &to_run {
            self.spawn_reevaluation(sub);
        }
    }

    /// Schedules every subscription referencing `relation` — used when the
    /// relation is replaced wholesale (re-registration), where no per-write
    /// positions exist to probe.
    pub(crate) fn reevaluate_all_on(self: &Arc<Self>, relation: &str) {
        let to_run: Vec<Arc<Subscription>> = {
            let mut st = self.lock_state();
            let (all, _) = st.registry.all_on(relation);
            let subs: Vec<Arc<Subscription>> = all
                .iter()
                .filter_map(|id| st.subs.get(id).cloned())
                .collect();
            for sub in &subs {
                Self::mark_scheduled(&mut st, sub);
            }
            subs
        };
        if to_run.is_empty() {
            return;
        }
        {
            let mut m = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
            m.cq_reevals += to_run.len() as u64;
        }
        for sub in &to_run {
            self.spawn_reevaluation(sub);
        }
    }

    /// Bumps the subscription's epoch and marks it dirty. Always called
    /// under the engine lock, so the dirty set and the epoch pair move
    /// together and the publish path can trust either.
    fn mark_scheduled(st: &mut EngineState, sub: &Arc<Subscription>) {
        sub.scheduled.fetch_add(1, Ordering::AcqRel);
        st.dirty.insert(sub.id);
    }

    /// Queues the detached re-evaluation job for an already-marked
    /// subscription (inline on a parallelism-1 pool, so single-threaded
    /// setups stay deterministic).
    fn spawn_reevaluation(self: &Arc<Self>, sub: &Arc<Subscription>) {
        let engine = Arc::clone(self);
        let sub = Arc::clone(sub);
        self.pool.spawn(move || engine.reevaluate(&sub));
    }

    /// One maintenance re-evaluation: re-runs the standing query against
    /// the current snapshots, emits the id-keyed delta, refreshes guards,
    /// and advances the applied epoch.
    fn reevaluate(self: &Arc<Self>, sub: &Arc<Subscription>) {
        let mut st = sub.state.lock().unwrap_or_else(PoisonError::into_inner);
        let target = sub.scheduled.load(Ordering::Acquire);
        if sub.applied.load(Ordering::Acquire) >= target {
            return; // coalesced: an earlier job already covered this epoch
        }
        let names = sub.spec.relations();
        // A referenced relation may have been deregistered since: leave the
        // subscription at its last state. It stays in the dirty set, so
        // nothing ever trusts its (now meaningless) guards, and
        // re-registration schedules a fresh re-evaluation that recovers it.
        let Ok(snapshot) = self.store.pin_many(&names) else {
            return;
        };
        let Ok(plan) = compile(&snapshot, &sub.spec, sub.strategy) else {
            return;
        };
        let obs = self.store.obs();
        let start = std::time::Instant::now();
        let result = if obs.trace_enabled() {
            let (result, trace) = plan.execute_traced(ExecutionMode::default_mode());
            obs.push_trace(format!("cq sub#{}", sub.id.0), trace);
            result
        } else {
            plan.execute(ExecutionMode::default_mode())
        };
        obs.record(HistogramKind::CqReeval, start.elapsed());
        let rows = result.rows();
        let mut work = result.metrics();
        let version = snapshot
            .versions()
            .iter()
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0);

        let fresh: BTreeMap<RowKey, Row> = rows.iter().map(|r| (row_key(r), *r)).collect();
        let added: Vec<Row> = fresh
            .iter()
            .filter(|(key, _)| !st.rows.contains_key(*key))
            .map(|(_, row)| *row)
            .collect();
        let removed: Vec<Row> = st
            .rows
            .iter()
            .filter(|(key, _)| !fresh.contains_key(*key))
            .map(|(_, row)| *row)
            .collect();
        if !added.is_empty() || !removed.is_empty() {
            st.pending.push(ResultDelta {
                added,
                removed,
                version,
            });
        }
        st.rows = fresh;
        st.version = version;

        // Install the fresh guards, advance the applied epoch, and clear
        // the dirty mark in ONE engine-lock section: scheduling also
        // happens under this lock, so `scheduled == target` here proves no
        // newer re-evaluation is pending and the just-installed guards are
        // safe to trust for the next publish.
        let guards = compute_guards(&sub.spec, &snapshot, &rows, &mut work).ok();
        {
            let mut est = self.lock_state();
            if let Some(guards) = guards {
                if est.subs.contains_key(&sub.id) {
                    est.registry.install(sub.id, guards);
                }
            }
            sub.applied.store(target, Ordering::Release);
            if sub.scheduled.load(Ordering::Acquire) == target {
                est.dirty.remove(&sub.id);
            }
        }
        drop(st);
        self.merge_metrics(&work);
    }

    fn merge_metrics(&self, work: &Metrics) {
        let mut m = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        m.merge(work);
    }
}

impl std::fmt::Debug for CqEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CqEngine")
            .field("subscriptions", &self.len())
            .finish_non_exhaustive()
    }
}
