//! Continuous queries: standing two-kNN-predicate queries incrementally
//! maintained over ingest.
//!
//! The paper's motivating workloads are location-based services over moving
//! objects — the *same* kNN-select / kNN-join queries asked continuously as
//! positions stream in. Re-running every registered query on every position
//! report is the naive plan; this module implements the incremental one:
//!
//! ```text
//!  subscribe(spec, strategy)             ingest(relation, ops)
//!        │                                     │ publish (store)
//!        ▼                                     ▼
//!  evaluate once ──► guard region ──►  guard registry probe
//!  (pinned snapshot)  per relation     │            │
//!                                      │ outside    │ intersects
//!                                      ▼            ▼
//!                                  cq_skips     re-evaluate (detached
//!                                  (counted)    WorkerPool job, coalesced)
//!                                                   │
//!                                                   ▼
//!                                       ResultDelta { added, removed }
//!                                                   │
//!                                        Database::poll(subscription)
//! ```
//!
//! A **guard region** is a set of rectangles per referenced relation with
//! the soundness property: *a write whose old and new positions all fall
//! outside the guard cannot change the subscription's result, and leaves
//! the guard itself valid*. [`guard`](self) derives them from the paper's
//! own machinery — kNN-select predicates guard the focal circle with radius
//! the current kth-NN distance; join inner relations guard each outer
//! block's MBR expanded by `kth-NN-dist(block center) + diagonal/2` (sound
//! by the triangle inequality, the same bound Block-Marking's preprocessing
//! exploits); join sides where any insert creates rows (e.g. the outer
//! relation of a kNN-join) are guarded unboundedly — every write to them
//! re-evaluates.
//!
//! The [`registry`](self) buckets guard rectangles into a per-relation
//! uniform grid (the same clamped-cell idiom as the store's overlay grid),
//! so probing a publish costs O(writes × cell occupancy) regardless of how
//! many subscriptions are registered. The [`maintain`](self) module turns
//! publishes into skip/re-evaluate decisions, runs re-evaluations as
//! detached [`WorkerPool`](crate::exec::WorkerPool) jobs (coalesced per
//! subscription under an epoch counter, so write bursts cost one
//! re-evaluation, not one per batch), and emits id-keyed [`ResultDelta`]s.
//! Re-evaluations pin composed snapshots of spatially sharded relations
//! (see [`crate::store`]), so a standing kNN query over a sharded relation
//! prunes whole shards by MINDIST exactly like an ad-hoc one — maintenance
//! cost tracks the shards a subscription's guard actually overlaps.
//!
//! Deltas are **keyed by the rows' point ids**: a retained row whose points
//! merely moved is not re-reported. Accumulated deltas always reconstruct
//! the from-scratch result of the subscription's query at the versions the
//! maintainer evaluated; [`WorkerPool::wait_idle`](crate::exec::WorkerPool::wait_idle)
//! makes that deterministic (every publish observed, one delta per batch
//! that changed the result).

mod guard;
mod maintain;
mod registry;

pub(crate) use maintain::CqEngine;

use crate::plan::Row;

/// Identifies one standing query registered through
/// [`Database::subscribe`](crate::plan::Database::subscribe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub(crate) u64);

impl std::fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// One incremental update to a standing query's result, produced by a
/// maintenance re-evaluation and consumed through
/// [`Database::poll`](crate::plan::Database::poll).
///
/// Rows are keyed by their component point ids ([`Row::ids`]): `added`
/// holds rows whose id tuple entered the result (with their current
/// positions), `removed` rows whose id tuple left it. The very first delta
/// of a subscription carries the initial evaluation (`removed` empty), so
/// folding a subscription's deltas in order reconstructs its current
/// result from nothing.
#[derive(Debug, Clone)]
pub struct ResultDelta {
    /// Rows that entered the result.
    pub added: Vec<Row>,
    /// Rows that left the result.
    pub removed: Vec<Row>,
    /// The highest published version among the subscription's relations in
    /// the snapshot this delta was evaluated against.
    pub version: u64,
}

impl ResultDelta {
    /// Whether the delta changes nothing (never emitted by the maintainer;
    /// useful for consumers folding deltas).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// How the maintainer reacts to a published ingest batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenancePolicy {
    /// Probe the guard registry and re-evaluate only subscriptions whose
    /// guard region a write position intersects (skips are counted in
    /// [`Metrics::cq_skips`](twoknn_index::Metrics::cq_skips)).
    #[default]
    Guarded,
    /// Re-evaluate every subscription referencing the written relation on
    /// every publish — the naive baseline the `ablation_cq` bench measures
    /// the guard against.
    ReevalAll,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscription_ids_are_ordered_and_displayable() {
        let a = SubscriptionId(1);
        let b = SubscriptionId(2);
        assert!(a < b);
        assert_eq!(a.to_string(), "sub#1");
    }

    #[test]
    fn empty_delta_is_empty() {
        let d = ResultDelta {
            added: vec![],
            removed: vec![],
            version: 3,
        };
        assert!(d.is_empty());
    }
}
