//! The optimizer: mapping relation statistics to a physical strategy using
//! the paper's own guidance.
//!
//! * **Counting vs Block-Marking** (Section 3.3): "when the number of points
//!   in the outer relation is small, the Counting algorithm has better
//!   performance ... when the number of points in the outer relation is
//!   relatively high, i.e., high density, the Block-Marking algorithm has
//!   better performance because entire blocks will be excluded from the
//!   join."
//! * **Unchained join order** (Section 4.1.2): start with the clustered
//!   relation's join; with two clustered relations start with the one with
//!   smaller cluster coverage; with two uniform relations use the conceptual
//!   QEP (the preprocessing has no payoff).
//! * **Chained joins** (Section 4.2.1): the nested QEP3 with the neighborhood
//!   cache dominates; the join-intersection QEP only matches it for uniform
//!   data, so the cached nested join is always chosen.
//! * **Two kNN-selects** (Section 5.2): the 2-kNN-select algorithm is chosen
//!   whenever the two k values differ; with equal k the conceptual QEP does
//!   the same work, so either is fine.

use crate::plan::stats::RelationProfile;
use crate::plan::strategy::{
    ChainedStrategy, SelectInnerStrategy, SelectOuterStrategy, SelectStrategy, TwoSelectsStrategy,
    UnchainedStrategy,
};
use crate::selects2::TwoSelectsQuery;

/// Tunable thresholds of the optimizer. The paper gives qualitative guidance
/// only; the defaults here are calibrated on the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimizer {
    /// Outer relations with fewer points than this use the Counting algorithm
    /// for the select-inner-join query; larger ones use Block-Marking.
    pub counting_outer_limit: usize,
    /// Outer relations whose average occupied-block population is below this
    /// also use Counting (low density = little payoff from per-block work).
    pub counting_density_limit: f64,
    /// Coverage fraction above which a relation is treated as uniformly
    /// distributed for the unchained-join heuristics.
    pub uniform_coverage_threshold: f64,
}

impl Default for Optimizer {
    fn default() -> Self {
        Self {
            counting_outer_limit: 50_000,
            counting_density_limit: 8.0,
            uniform_coverage_threshold: 0.6,
        }
    }
}

impl Optimizer {
    /// Creates an optimizer with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chooses between Counting and Block-Marking for a kNN-select on the
    /// inner relation of a kNN-join, based on the *outer* relation's profile.
    pub fn choose_select_inner(&self, outer: &RelationProfile) -> SelectInnerStrategy {
        if outer.num_points < self.counting_outer_limit
            || outer.avg_points_per_occupied_block < self.counting_density_limit
        {
            SelectInnerStrategy::Counting
        } else {
            SelectInnerStrategy::BlockMarking
        }
    }

    /// The select-on-outer case: pushdown is always valid and always at least
    /// as cheap, so it is always chosen.
    pub fn choose_select_outer(&self, _outer: &RelationProfile) -> SelectOuterStrategy {
        SelectOuterStrategy::Pushdown
    }

    /// Chooses the unchained-join strategy given the profiles of the two
    /// outer relations `A` and `C` (Section 4.1.2).
    pub fn choose_unchained(&self, a: &RelationProfile, c: &RelationProfile) -> UnchainedStrategy {
        let a_uniform = a.looks_uniform(self.uniform_coverage_threshold);
        let c_uniform = c.looks_uniform(self.uniform_coverage_threshold);
        match (a_uniform, c_uniform) {
            (true, true) => UnchainedStrategy::Conceptual,
            (false, true) => UnchainedStrategy::BlockMarkingStartWithA,
            (true, false) => UnchainedStrategy::BlockMarkingStartWithC,
            (false, false) => {
                if a.coverage_fraction <= c.coverage_fraction {
                    UnchainedStrategy::BlockMarkingStartWithA
                } else {
                    UnchainedStrategy::BlockMarkingStartWithC
                }
            }
        }
    }

    /// Chooses the chained-join strategy. The cached nested join dominates or
    /// matches the alternatives on every workload in the paper, so it is the
    /// unconditional choice.
    pub fn choose_chained(&self, _b: &RelationProfile) -> ChainedStrategy {
        ChainedStrategy::NestedJoinCached
    }

    /// Chooses the two-selects strategy. The 2-kNN-select algorithm reduces
    /// work whenever `k1 != k2` and never does more work than the conceptual
    /// plan, so it is always chosen.
    pub fn choose_two_selects(&self, _query: &TwoSelectsQuery) -> TwoSelectsStrategy {
        TwoSelectsStrategy::TwoKnnSelect
    }

    /// Chooses the strategy of a single (optionally filtered) kNN-select.
    /// The masked kernel prunes blocks by MINDIST exactly like the plain
    /// kNN path, so it wins whenever the index has enough blocks for
    /// pruning to bite; only a relation too small to have block structure
    /// falls back to the scan (where the scan is cheaper than sorting the
    /// block order).
    pub fn choose_select(&self, relation: &RelationProfile) -> SelectStrategy {
        if relation.num_points < 256 {
            SelectStrategy::FilterThenScan
        } else {
            SelectStrategy::FilteredKernel
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_geometry::{Point, Rect};
    use twoknn_index::GridIndex;

    fn profile(points: Vec<Point>) -> RelationProfile {
        let g =
            GridIndex::build_with_bounds(points, Rect::new(0.0, 0.0, 100.0, 100.0), 10).unwrap();
        RelationProfile::compute(&g)
    }

    fn uniform(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                Point::new(i as u64, (h % 100) as f64, ((h / 100) % 100) as f64)
            })
            .collect()
    }

    fn clustered(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    3.0 + (i % 40) as f64 * 0.02,
                    3.0 + (i as u64 / 40) as f64 * 0.02,
                )
            })
            .collect()
    }

    #[test]
    fn small_or_sparse_outer_prefers_counting() {
        let opt = Optimizer::new();
        let small = profile(uniform(500));
        assert_eq!(
            opt.choose_select_inner(&small),
            SelectInnerStrategy::Counting
        );
    }

    #[test]
    fn large_dense_outer_prefers_block_marking() {
        let opt = Optimizer {
            counting_outer_limit: 1_000,
            counting_density_limit: 2.0,
            ..Optimizer::default()
        };
        let dense = profile(clustered(50_000));
        assert_eq!(
            opt.choose_select_inner(&dense),
            SelectInnerStrategy::BlockMarking
        );
    }

    #[test]
    fn unchained_heuristics_follow_the_paper() {
        let opt = Optimizer::new();
        let u = profile(uniform(5_000));
        let c = profile(clustered(5_000));
        assert_eq!(opt.choose_unchained(&u, &u), UnchainedStrategy::Conceptual);
        assert_eq!(
            opt.choose_unchained(&c, &u),
            UnchainedStrategy::BlockMarkingStartWithA
        );
        assert_eq!(
            opt.choose_unchained(&u, &c),
            UnchainedStrategy::BlockMarkingStartWithC
        );
        // Both clustered: the one with smaller coverage goes first.
        let tight = profile(clustered(2_000));
        let wide = profile(
            (0..2_000u64)
                .map(|i| Point::new(i, (i % 200) as f64 * 0.5, (i / 200) as f64 * 5.0))
                .collect(),
        );
        assert_eq!(
            opt.choose_unchained(&tight, &wide),
            UnchainedStrategy::BlockMarkingStartWithA
        );
    }

    #[test]
    fn chained_and_two_selects_defaults() {
        let opt = Optimizer::new();
        let p = profile(uniform(100));
        assert_eq!(opt.choose_chained(&p), ChainedStrategy::NestedJoinCached);
        let q = TwoSelectsQuery::new(
            5,
            Point::anonymous(0.0, 0.0),
            50,
            Point::anonymous(1.0, 1.0),
        );
        assert_eq!(opt.choose_two_selects(&q), TwoSelectsStrategy::TwoKnnSelect);
        assert_eq!(opt.choose_select_outer(&p), SelectOuterStrategy::Pushdown);
    }
}
