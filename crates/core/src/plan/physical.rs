//! The physical-operator layer: compiled, executable plans.
//!
//! The planning pipeline is
//!
//! ```text
//! QuerySpec ──(Optimizer)──► Strategy ──(compile)──► Box<dyn PhysicalPlan> ──(execute)──► QueryResult
//! ```
//!
//! [`compile`] resolves a [`QuerySpec`]'s relation names against a pinned
//! [`DbSnapshot`] of the catalog and pairs them with a [`Strategy`] into one
//! of the operator structs of this module — one per algorithm family of the
//! paper:
//!
//! | Operator | Algorithm family | Paper |
//! |---|---|---|
//! | [`CountingOp`] | Counting | Procedure 1 |
//! | [`BlockMarkingOp`] | Block-Marking | Procedures 2–3 |
//! | [`SelectInnerConceptualOp`] | conceptual join-then-intersect QEP | Figure 1 |
//! | [`OuterPushdownOp`] | select-on-outer (pushdown or select-after-join) | Figure 3 |
//! | [`UnchainedJoinsOp`] | two unchained joins | Section 4.1 |
//! | [`ChainedJoinsOp`] | two chained joins | Section 4.2 |
//! | [`TwoSelectsOp`] | two kNN-selects | Section 5 |
//!
//! Every operator implements [`PhysicalPlan`]: it knows its [`Strategy`], its
//! output [`RowSchema`], and how to [`PhysicalPlan::execute`] under a given
//! [`ExecutionMode`] — serially, partitioned over the shared persistent
//! worker pool (`Pooled`, the default), or over a freshly spawned scoped
//! team (`Parallel`). Operators hold their relations as [`Relation`]
//! (shared-ownership snapshot handles), so a compiled plan stays valid — and
//! keeps observing the exact version it was compiled against — no matter
//! what ingest or compaction publish afterwards. Adding a new algorithm
//! means adding an operator struct and a `compile` arm; the driver
//! ([`Database::execute`](crate::plan::Database::execute)) never changes.

use std::sync::Arc;

use twoknn_geometry::Point;
use twoknn_index::SpatialIndex;

use crate::error::QueryError;
use crate::exec::ExecutionMode;
use crate::joins2::{
    chained_join_intersection_with_mode, chained_nested_cached_with_mode, chained_nested_with_mode,
    chained_right_deep_with_mode, unchained_block_marking_with_mode,
    unchained_conceptual_with_mode, ChainedJoinQuery, UnchainedJoinQuery,
};
use crate::output::{Pair, QueryOutput, Triplet};
use crate::plan::executor::{QueryResult, QuerySpec};
use crate::plan::strategy::{
    ChainedStrategy, SelectInnerStrategy, SelectOuterStrategy, Strategy, TwoSelectsStrategy,
    UnchainedStrategy,
};
use crate::select_join::{
    block_marking_with_mode, conceptual_with_mode, counting_with_mode,
    select_on_outer_after_join_with_mode, select_on_outer_pushdown, BlockMarkingConfig,
    SelectInnerJoinQuery, SelectOuterJoinQuery,
};
use crate::selects2::{two_knn_select, two_selects_conceptual_with_mode, TwoSelectsQuery};
use crate::store::DbSnapshot;

/// A shared handle to one pinned, immutable version of an indexed relation.
///
/// Operators hold `Relation`s rather than borrows so compiled plans own
/// their inputs: the snapshot a plan was compiled against stays alive (and
/// frozen) for as long as the plan does, independent of concurrent catalog
/// mutation, ingest, or compaction.
pub type Relation = Arc<dyn SpatialIndex + Send + Sync>;

/// The row type a physical plan produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSchema {
    /// `(outer, inner)` pairs — select + join queries.
    Pairs,
    /// `(a, b, c)` triplets — two-join queries.
    Triplets,
    /// Single points — two-select queries.
    Points,
}

/// One output row of a physical plan, tagged by its type.
///
/// [`QueryResult::rows`] flattens any result into this shape so generic
/// drivers (servers, REPLs, test harnesses) can consume every query shape
/// through one type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Row {
    /// A pair row.
    Pair(Pair),
    /// A triplet row.
    Triplet(Triplet),
    /// A point row.
    Point(Point),
}

impl Row {
    /// The schema this row belongs to.
    pub fn schema(&self) -> RowSchema {
        match self {
            Row::Pair(_) => RowSchema::Pairs,
            Row::Triplet(_) => RowSchema::Triplets,
            Row::Point(_) => RowSchema::Points,
        }
    }

    /// The ids of the row's components, in relation order.
    pub fn ids(&self) -> Vec<u64> {
        match self {
            Row::Pair(p) => vec![p.left.id, p.right.id],
            Row::Triplet(t) => vec![t.a.id, t.b.id, t.c.id],
            Row::Point(p) => vec![p.id],
        }
    }
}

/// An executable physical plan: a specific algorithm bound to specific
/// relations, ready to run under any [`ExecutionMode`].
pub trait PhysicalPlan: Send + Sync {
    /// Short operator name, e.g. `"block-marking"`.
    fn name(&self) -> &'static str;

    /// The strategy this operator implements.
    fn strategy(&self) -> Strategy;

    /// The row type the operator produces.
    fn schema(&self) -> RowSchema;

    /// Runs the operator.
    fn execute(&self, mode: ExecutionMode) -> QueryResult;

    /// A one-line, EXPLAIN-style description of the plan.
    fn explain(&self) -> String {
        format!(
            "{} [{}] -> {:?}",
            self.name(),
            self.strategy(),
            self.schema()
        )
    }
}

/// Compiles a `(spec, strategy)` pair into an executable operator, resolving
/// relation names against a pinned [`DbSnapshot`].
///
/// The returned plan holds shared handles to the snapshot's relation
/// versions, so it is `'static`: it outlives the `DbSnapshot` it was
/// resolved from and keeps observing exactly those versions even while
/// ingest and compaction publish newer ones.
///
/// # Errors
///
/// [`QueryError::UnknownRelation`] for unresolved names, and
/// [`QueryError::UnsupportedPlanShape`] when the strategy family does not
/// match the query shape.
pub fn compile(
    snapshot: &DbSnapshot,
    spec: &QuerySpec,
    strategy: Strategy,
) -> Result<Box<dyn PhysicalPlan>, QueryError> {
    let pin = |name: &str| -> Result<Relation, QueryError> {
        Ok(Arc::clone(snapshot.snapshot(name)?) as Relation)
    };
    match (spec, strategy) {
        (
            QuerySpec::SelectInnerOfJoin {
                outer,
                inner,
                query,
            },
            Strategy::SelectInner(s),
        ) => {
            let outer = pin(outer)?;
            let inner = pin(inner)?;
            Ok(match s {
                SelectInnerStrategy::Counting => Box::new(CountingOp {
                    outer,
                    inner,
                    query: *query,
                }),
                SelectInnerStrategy::BlockMarking => Box::new(BlockMarkingOp {
                    outer,
                    inner,
                    query: *query,
                    config: BlockMarkingConfig::default(),
                }),
                SelectInnerStrategy::Conceptual => Box::new(SelectInnerConceptualOp {
                    outer,
                    inner,
                    query: *query,
                }),
            })
        }
        (
            QuerySpec::SelectOuterOfJoin {
                outer,
                inner,
                query,
            },
            Strategy::SelectOuter(s),
        ) => Ok(Box::new(OuterPushdownOp {
            outer: pin(outer)?,
            inner: pin(inner)?,
            query: *query,
            strategy: s,
        })),
        (QuerySpec::UnchainedJoins { a, b, c, query }, Strategy::Unchained(s)) => {
            Ok(Box::new(UnchainedJoinsOp {
                a: pin(a)?,
                b: pin(b)?,
                c: pin(c)?,
                query: *query,
                strategy: s,
            }))
        }
        (QuerySpec::ChainedJoins { a, b, c, query }, Strategy::Chained(s)) => {
            Ok(Box::new(ChainedJoinsOp {
                a: pin(a)?,
                b: pin(b)?,
                c: pin(c)?,
                query: *query,
                strategy: s,
            }))
        }
        (QuerySpec::TwoSelects { relation, query }, Strategy::TwoSelects(s)) => {
            Ok(Box::new(TwoSelectsOp {
                relation: pin(relation)?,
                query: *query,
                strategy: s,
            }))
        }
        (spec, strategy) => Err(QueryError::UnsupportedPlanShape {
            description: format!("strategy {strategy} does not match query {spec:?}"),
        }),
    }
}

/// The Counting algorithm (Procedure 1) bound to its relations.
pub struct CountingOp {
    /// The outer relation `E1`.
    pub outer: Relation,
    /// The inner relation `E2`.
    pub inner: Relation,
    /// Query parameters.
    pub query: SelectInnerJoinQuery,
}

impl PhysicalPlan for CountingOp {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn strategy(&self) -> Strategy {
        Strategy::SelectInner(SelectInnerStrategy::Counting)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Pairs
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        QueryResult::Pairs {
            output: counting_with_mode(&*self.outer, &*self.inner, &self.query, mode),
            strategy: self.strategy(),
        }
    }
}

/// The Block-Marking algorithm (Procedures 2–3) bound to its relations.
pub struct BlockMarkingOp {
    /// The outer relation `E1`.
    pub outer: Relation,
    /// The inner relation `E2`.
    pub inner: Relation,
    /// Query parameters.
    pub query: SelectInnerJoinQuery,
    /// Tuning knobs (contour pruning on/off).
    pub config: BlockMarkingConfig,
}

impl PhysicalPlan for BlockMarkingOp {
    fn name(&self) -> &'static str {
        "block-marking"
    }

    fn strategy(&self) -> Strategy {
        Strategy::SelectInner(SelectInnerStrategy::BlockMarking)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Pairs
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        QueryResult::Pairs {
            output: block_marking_with_mode(
                &*self.outer,
                &*self.inner,
                &self.query,
                &self.config,
                mode,
            ),
            strategy: self.strategy(),
        }
    }
}

/// The conceptually correct join-then-intersect QEP (Figure 1).
pub struct SelectInnerConceptualOp {
    /// The outer relation `E1`.
    pub outer: Relation,
    /// The inner relation `E2`.
    pub inner: Relation,
    /// Query parameters.
    pub query: SelectInnerJoinQuery,
}

impl PhysicalPlan for SelectInnerConceptualOp {
    fn name(&self) -> &'static str {
        "select-inner-conceptual"
    }

    fn strategy(&self) -> Strategy {
        Strategy::SelectInner(SelectInnerStrategy::Conceptual)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Pairs
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        QueryResult::Pairs {
            output: conceptual_with_mode(&*self.outer, &*self.inner, &self.query, mode),
            strategy: self.strategy(),
        }
    }
}

/// The select-on-outer operator (Figure 3): the valid pushdown, or the
/// reference select-after-join plan.
pub struct OuterPushdownOp {
    /// The outer relation `E1`.
    pub outer: Relation,
    /// The inner relation `E2`.
    pub inner: Relation,
    /// Query parameters.
    pub query: SelectOuterJoinQuery,
    /// Which of the two equivalent QEPs to run.
    pub strategy: SelectOuterStrategy,
}

impl PhysicalPlan for OuterPushdownOp {
    fn name(&self) -> &'static str {
        match self.strategy {
            SelectOuterStrategy::Pushdown => "outer-pushdown",
            SelectOuterStrategy::SelectAfterJoin => "outer-select-after-join",
        }
    }

    fn strategy(&self) -> Strategy {
        Strategy::SelectOuter(self.strategy)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Pairs
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        let output = match self.strategy {
            // The pushdown only ever joins the kσ selected points; it is
            // already the cheap plan and runs serially.
            SelectOuterStrategy::Pushdown => {
                select_on_outer_pushdown(&*self.outer, &*self.inner, &self.query)
            }
            SelectOuterStrategy::SelectAfterJoin => {
                select_on_outer_after_join_with_mode(&*self.outer, &*self.inner, &self.query, mode)
            }
        };
        QueryResult::Pairs {
            output,
            strategy: self.strategy(),
        }
    }
}

/// Two unchained kNN-joins `(A ⋈ B) ∩_B (C ⋈ B)` (Section 4.1).
pub struct UnchainedJoinsOp {
    /// Relation `A`.
    pub a: Relation,
    /// The shared inner relation `B`.
    pub b: Relation,
    /// Relation `C`.
    pub c: Relation,
    /// Query parameters.
    pub query: UnchainedJoinQuery,
    /// Which evaluation order / algorithm to run.
    pub strategy: UnchainedStrategy,
}

impl PhysicalPlan for UnchainedJoinsOp {
    fn name(&self) -> &'static str {
        match self.strategy {
            UnchainedStrategy::Conceptual => "unchained-conceptual",
            UnchainedStrategy::BlockMarkingStartWithA => "unchained-block-marking(A⋈B first)",
            UnchainedStrategy::BlockMarkingStartWithC => "unchained-block-marking(C⋈B first)",
        }
    }

    fn strategy(&self) -> Strategy {
        Strategy::Unchained(self.strategy)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Triplets
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        let output = match self.strategy {
            UnchainedStrategy::Conceptual => {
                unchained_conceptual_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
            UnchainedStrategy::BlockMarkingStartWithA => {
                unchained_block_marking_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
            UnchainedStrategy::BlockMarkingStartWithC => {
                // Start with (C ⋈ B): swap the roles of A and C, then swap the
                // components back in the emitted triplets.
                let swapped = UnchainedJoinQuery::new(self.query.k_cb, self.query.k_ab);
                let out =
                    unchained_block_marking_with_mode(&*self.c, &*self.b, &*self.a, &swapped, mode);
                QueryOutput::new(
                    out.rows
                        .into_iter()
                        .map(|t| Triplet::new(t.c, t.b, t.a))
                        .collect(),
                    out.metrics,
                )
            }
        };
        QueryResult::Triplets {
            output,
            strategy: self.strategy(),
        }
    }
}

/// Two chained kNN-joins `A → B → C` (Section 4.2).
pub struct ChainedJoinsOp {
    /// Relation `A`.
    pub a: Relation,
    /// The middle relation `B`.
    pub b: Relation,
    /// Relation `C`.
    pub c: Relation,
    /// Query parameters.
    pub query: ChainedJoinQuery,
    /// Which of the equivalent QEPs to run.
    pub strategy: ChainedStrategy,
}

impl PhysicalPlan for ChainedJoinsOp {
    fn name(&self) -> &'static str {
        match self.strategy {
            ChainedStrategy::RightDeep => "chained-right-deep",
            ChainedStrategy::JoinIntersection => "chained-join-intersection",
            ChainedStrategy::NestedJoin => "chained-nested",
            ChainedStrategy::NestedJoinCached => "chained-nested-cached",
        }
    }

    fn strategy(&self) -> Strategy {
        Strategy::Chained(self.strategy)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Triplets
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        let output = match self.strategy {
            ChainedStrategy::RightDeep => {
                chained_right_deep_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
            ChainedStrategy::JoinIntersection => {
                chained_join_intersection_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
            ChainedStrategy::NestedJoin => {
                chained_nested_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
            ChainedStrategy::NestedJoinCached => {
                chained_nested_cached_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
        };
        QueryResult::Triplets {
            output,
            strategy: self.strategy(),
        }
    }
}

/// Two kNN-selects over one relation (Section 5).
pub struct TwoSelectsOp {
    /// The relation both selects run against.
    pub relation: Relation,
    /// Query parameters.
    pub query: TwoSelectsQuery,
    /// Which of the two equivalent QEPs to run.
    pub strategy: TwoSelectsStrategy,
}

impl PhysicalPlan for TwoSelectsOp {
    fn name(&self) -> &'static str {
        match self.strategy {
            TwoSelectsStrategy::Conceptual => "two-selects-conceptual",
            TwoSelectsStrategy::TwoKnnSelect => "2-knn-select",
        }
    }

    fn strategy(&self) -> Strategy {
        Strategy::TwoSelects(self.strategy)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Points
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        let output = match self.strategy {
            // The conceptual QEP's two selects are independent: under a
            // parallel mode each runs as its own (pool) task.
            TwoSelectsStrategy::Conceptual => {
                two_selects_conceptual_with_mode(&*self.relation, &self.query, mode)
            }
            // The 2-kNN-select algorithm is inherently sequential (the
            // second locality is bounded by the first select's result);
            // batch-level parallelism covers the many-query case.
            TwoSelectsStrategy::TwoKnnSelect => two_knn_select(&*self.relation, &self.query),
        };
        QueryResult::Points {
            output,
            strategy: self.strategy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_index::GridIndex;

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x2545F4914F6CDD1D) ^ seed;
                Point::new(
                    i as u64,
                    (h % 499) as f64 * 0.2,
                    ((h / 499) % 499) as f64 * 0.2,
                )
            })
            .collect()
    }

    fn db() -> crate::plan::Database {
        let mut db = crate::plan::Database::new();
        db.register("A", GridIndex::build(scattered(120, 1), 8).unwrap());
        db.register("B", GridIndex::build(scattered(250, 2), 8).unwrap());
        db.register("C", GridIndex::build(scattered(140, 3), 8).unwrap());
        db
    }

    #[test]
    fn compile_produces_the_matching_operator() {
        let db = db();
        let spec = QuerySpec::SelectInnerOfJoin {
            outer: "A".into(),
            inner: "B".into(),
            query: SelectInnerJoinQuery::new(2, 3, Point::anonymous(30.0, 40.0)),
        };
        for (s, name) in [
            (SelectInnerStrategy::Counting, "counting"),
            (SelectInnerStrategy::BlockMarking, "block-marking"),
            (SelectInnerStrategy::Conceptual, "select-inner-conceptual"),
        ] {
            let plan = compile(&db.snapshot(), &spec, Strategy::SelectInner(s)).unwrap();
            assert_eq!(plan.name(), name);
            assert_eq!(plan.schema(), RowSchema::Pairs);
            assert_eq!(plan.strategy(), Strategy::SelectInner(s));
            assert!(plan.explain().contains(name));
        }
    }

    #[test]
    fn compile_rejects_mismatched_strategy_and_unknown_relation() {
        let db = db();
        let spec = QuerySpec::TwoSelects {
            relation: "A".into(),
            query: TwoSelectsQuery::new(
                2,
                Point::anonymous(0.0, 0.0),
                2,
                Point::anonymous(1.0, 1.0),
            ),
        };
        assert!(matches!(
            compile(
                &db.snapshot(),
                &spec,
                Strategy::Chained(ChainedStrategy::RightDeep)
            ),
            Err(QueryError::UnsupportedPlanShape { .. })
        ));
        let missing = QuerySpec::TwoSelects {
            relation: "Nope".into(),
            query: TwoSelectsQuery::new(
                2,
                Point::anonymous(0.0, 0.0),
                2,
                Point::anonymous(1.0, 1.0),
            ),
        };
        assert!(matches!(
            compile(
                &db.snapshot(),
                &missing,
                Strategy::TwoSelects(TwoSelectsStrategy::TwoKnnSelect)
            ),
            Err(QueryError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn executing_a_compiled_plan_matches_database_execute() {
        let db = db();
        let spec = QuerySpec::UnchainedJoins {
            a: "A".into(),
            b: "B".into(),
            c: "C".into(),
            query: UnchainedJoinQuery::new(2, 2),
        };
        let strategy = Strategy::Unchained(UnchainedStrategy::BlockMarkingStartWithC);
        let plan = compile(&db.snapshot(), &spec, strategy).unwrap();
        let direct = plan.execute(ExecutionMode::Serial);
        let via_db = db.execute_with(&spec, strategy).unwrap();
        assert_eq!(direct.num_rows(), via_db.num_rows());
        assert_eq!(direct.strategy(), strategy);
    }

    #[test]
    fn rows_are_typed_and_tagged() {
        let db = db();
        let spec = QuerySpec::TwoSelects {
            relation: "B".into(),
            query: TwoSelectsQuery::new(
                5,
                Point::anonymous(30.0, 30.0),
                50,
                Point::anonymous(35.0, 35.0),
            ),
        };
        let result = db.execute(&spec).unwrap();
        let rows = result.rows();
        assert_eq!(rows.len(), result.num_rows());
        for row in &rows {
            assert_eq!(row.schema(), RowSchema::Points);
            assert_eq!(row.ids().len(), 1);
        }
    }
}
