//! The physical-operator layer: compiled, executable plans.
//!
//! The planning pipeline is
//!
//! ```text
//! QuerySpec ──(Optimizer)──► Strategy ──(compile)──► Box<dyn PhysicalPlan> ──(execute)──► QueryResult
//! ```
//!
//! [`compile`] resolves a [`QuerySpec`]'s relation names against a pinned
//! [`DbSnapshot`] of the catalog and pairs them with a [`Strategy`] into one
//! of the operator structs of this module — one per algorithm family of the
//! paper:
//!
//! | Operator | Algorithm family | Paper |
//! |---|---|---|
//! | [`CountingOp`] | Counting | Procedure 1 |
//! | [`BlockMarkingOp`] | Block-Marking | Procedures 2–3 |
//! | [`SelectInnerConceptualOp`] | conceptual join-then-intersect QEP | Figure 1 |
//! | [`OuterPushdownOp`] | select-on-outer (pushdown or select-after-join) | Figure 3 |
//! | [`UnchainedJoinsOp`] | two unchained joins | Section 4.1 |
//! | [`ChainedJoinsOp`] | two chained joins | Section 4.2 |
//! | [`TwoSelectsOp`] | two kNN-selects | Section 5 |
//! | [`KnnSelectOp`] | single (optionally filtered) kNN-select | — |
//! | [`FilteredTwoSelectsOp`] | two filtered kNN-selects | — |
//! | [`ResidualFilterOp`] | post-kNN residual filter over any plan | — |
//!
//! A [`QuerySpec::Filtered`] spec compiles through [`compile`]'s filter
//! path: **pre**-kNN filters either flow into the operator's predicate
//! (single select: the masked kernel; two selects: the filtered
//! conceptual intersection) or materialize a filtered copy of the relation
//! that the wrapped shape's operator is compiled against (join outer
//! roles). Pre-filters on a join's *inner* role are rejected with
//! [`QueryError::InvalidTransformation`] — they change every neighborhood,
//! the same Figure 2 argument that forbids pushing a select below a join's
//! inner relation. **Post**-kNN filters wrap the compiled plan in a
//! [`ResidualFilterOp`] that prunes finished rows by component.
//!
//! Every operator implements [`PhysicalPlan`]: it knows its [`Strategy`], its
//! output [`RowSchema`], and how to [`PhysicalPlan::execute`] under a given
//! [`ExecutionMode`] — serially, partitioned over the shared persistent
//! worker pool (`Pooled`, the default), or over a freshly spawned scoped
//! team (`Parallel`). Operators hold their relations as [`Relation`]
//! (shared-ownership snapshot handles), so a compiled plan stays valid — and
//! keeps observing the exact version it was compiled against — no matter
//! what ingest or compaction publish afterwards. Adding a new algorithm
//! means adding an operator struct and a `compile` arm; the driver
//! ([`Database::execute`](crate::plan::Database::execute)) never changes.

use std::collections::BTreeMap;
use std::sync::Arc;

use twoknn_geometry::{Point, Predicate};
use twoknn_index::{brute_force_knn_filtered, GridIndex, Metrics, SpatialIndex};

use crate::error::QueryError;
use crate::exec::{run_partitioned, ExecutionMode};
use crate::joins2::{
    chained_join_intersection_with_mode, chained_nested_cached_with_mode, chained_nested_with_mode,
    chained_right_deep_with_mode, unchained_block_marking_with_mode,
    unchained_conceptual_with_mode, ChainedJoinQuery, UnchainedJoinQuery,
};
use crate::output::{Pair, QueryOutput, Triplet};
use crate::plan::executor::{QueryFilters, QueryResult, QuerySpec};
use crate::plan::strategy::{
    ChainedStrategy, SelectInnerStrategy, SelectOuterStrategy, SelectStrategy, Strategy,
    TwoSelectsStrategy, UnchainedStrategy,
};
use crate::select::{knn_select_filtered, knn_select_filtered_neighborhood, KnnSelectQuery};
use crate::select_join::{
    block_marking_with_mode, conceptual_with_mode, counting_with_mode,
    select_on_outer_after_join_with_mode, select_on_outer_pushdown, BlockMarkingConfig,
    SelectInnerJoinQuery, SelectOuterJoinQuery,
};
use crate::selects2::{
    intersect_output, two_knn_select, two_selects_conceptual_with_mode, TwoSelectsQuery,
};
use crate::store::DbSnapshot;

/// A shared handle to one pinned, immutable version of an indexed relation.
///
/// Operators hold `Relation`s rather than borrows so compiled plans own
/// their inputs: the snapshot a plan was compiled against stays alive (and
/// frozen) for as long as the plan does, independent of concurrent catalog
/// mutation, ingest, or compaction.
pub type Relation = Arc<dyn SpatialIndex + Send + Sync>;

/// The row type a physical plan produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSchema {
    /// `(outer, inner)` pairs — select + join queries.
    Pairs,
    /// `(a, b, c)` triplets — two-join queries.
    Triplets,
    /// Single points — two-select queries.
    Points,
}

/// One output row of a physical plan, tagged by its type.
///
/// [`QueryResult::rows`] flattens any result into this shape so generic
/// drivers (servers, REPLs, test harnesses) can consume every query shape
/// through one type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Row {
    /// A pair row.
    Pair(Pair),
    /// A triplet row.
    Triplet(Triplet),
    /// A point row.
    Point(Point),
}

impl Row {
    /// The schema this row belongs to.
    pub fn schema(&self) -> RowSchema {
        match self {
            Row::Pair(_) => RowSchema::Pairs,
            Row::Triplet(_) => RowSchema::Triplets,
            Row::Point(_) => RowSchema::Points,
        }
    }

    /// The ids of the row's components, in relation order.
    pub fn ids(&self) -> Vec<u64> {
        match self {
            Row::Pair(p) => vec![p.left.id, p.right.id],
            Row::Triplet(t) => vec![t.a.id, t.b.id, t.c.id],
            Row::Point(p) => vec![p.id],
        }
    }
}

/// An executable physical plan: a specific algorithm bound to specific
/// relations, ready to run under any [`ExecutionMode`].
pub trait PhysicalPlan: Send + Sync {
    /// Short operator name, e.g. `"block-marking"`.
    fn name(&self) -> &'static str;

    /// The strategy this operator implements.
    fn strategy(&self) -> Strategy;

    /// The row type the operator produces.
    fn schema(&self) -> RowSchema;

    /// Runs the operator.
    fn execute(&self, mode: ExecutionMode) -> QueryResult;

    /// Runs the operator with a per-operator trace: wall time, rows
    /// emitted, and the [`Metrics`] delta of the subtree. The default
    /// covers leaf operators (every operator except the residual filter);
    /// nesting operators override it to trace their children too. The
    /// root trace's `inclusive` equals `result.metrics()` exactly.
    fn execute_traced(&self, mode: ExecutionMode) -> (QueryResult, crate::obs::OpTrace) {
        let start = std::time::Instant::now();
        let result = self.execute(mode);
        let trace = crate::obs::OpTrace {
            name: self.name(),
            strategy: self.strategy(),
            rows: result.num_rows(),
            wall: start.elapsed(),
            inclusive: result.metrics(),
            children: Vec::new(),
        };
        (result, trace)
    }

    /// Operator-specific parameters for `EXPLAIN` output (`k=…`, roles).
    /// Empty by default.
    fn detail(&self) -> String {
        String::new()
    }

    /// Nested input operators, for plan-tree introspection. Leaf operators
    /// (the default) have none.
    fn children(&self) -> Vec<&dyn PhysicalPlan> {
        Vec::new()
    }

    /// A one-line, EXPLAIN-style description of the plan.
    fn explain(&self) -> String {
        format!(
            "{} [{}] -> {:?}",
            self.name(),
            self.strategy(),
            self.schema()
        )
    }
}

/// Compiles a `(spec, strategy)` pair into an executable operator, resolving
/// relation names against a pinned [`DbSnapshot`].
///
/// The returned plan holds shared handles to the snapshot's relation
/// versions, so it is `'static`: it outlives the `DbSnapshot` it was
/// resolved from and keeps observing exactly those versions even while
/// ingest and compaction publish newer ones.
///
/// # Errors
///
/// [`QueryError::UnknownRelation`] for unresolved names, and
/// [`QueryError::UnsupportedPlanShape`] when the strategy family does not
/// match the query shape.
pub fn compile(
    snapshot: &DbSnapshot,
    spec: &QuerySpec,
    strategy: Strategy,
) -> Result<Box<dyn PhysicalPlan>, QueryError> {
    match spec {
        QuerySpec::Filtered { spec, filters } => {
            compile_filtered(snapshot, spec, filters, strategy)
        }
        _ => compile_with_overrides(snapshot, spec, strategy, &BTreeMap::new()),
    }
}

/// The filter-free compile path, with an escape hatch: relation names in
/// `overrides` resolve to the supplied (typically pre-filtered) index
/// instead of the snapshot. [`compile_filtered`] uses this to push a valid
/// pre-kNN filter below a join's outer role without every operator having
/// to learn about predicates.
fn compile_with_overrides(
    snapshot: &DbSnapshot,
    spec: &QuerySpec,
    strategy: Strategy,
    overrides: &BTreeMap<String, Relation>,
) -> Result<Box<dyn PhysicalPlan>, QueryError> {
    let pin = |name: &str| -> Result<Relation, QueryError> {
        if let Some(filtered) = overrides.get(name) {
            return Ok(Arc::clone(filtered));
        }
        Ok(Arc::clone(snapshot.snapshot(name)?) as Relation)
    };
    match (spec, strategy) {
        (
            QuerySpec::SelectInnerOfJoin {
                outer,
                inner,
                query,
            },
            Strategy::SelectInner(s),
        ) => {
            let outer = pin(outer)?;
            let inner = pin(inner)?;
            Ok(match s {
                SelectInnerStrategy::Counting => Box::new(CountingOp {
                    outer,
                    inner,
                    query: *query,
                }),
                SelectInnerStrategy::BlockMarking => Box::new(BlockMarkingOp {
                    outer,
                    inner,
                    query: *query,
                    config: BlockMarkingConfig::default(),
                }),
                SelectInnerStrategy::Conceptual => Box::new(SelectInnerConceptualOp {
                    outer,
                    inner,
                    query: *query,
                }),
            })
        }
        (
            QuerySpec::SelectOuterOfJoin {
                outer,
                inner,
                query,
            },
            Strategy::SelectOuter(s),
        ) => Ok(Box::new(OuterPushdownOp {
            outer: pin(outer)?,
            inner: pin(inner)?,
            query: *query,
            strategy: s,
        })),
        (QuerySpec::UnchainedJoins { a, b, c, query }, Strategy::Unchained(s)) => {
            Ok(Box::new(UnchainedJoinsOp {
                a: pin(a)?,
                b: pin(b)?,
                c: pin(c)?,
                query: *query,
                strategy: s,
            }))
        }
        (QuerySpec::ChainedJoins { a, b, c, query }, Strategy::Chained(s)) => {
            Ok(Box::new(ChainedJoinsOp {
                a: pin(a)?,
                b: pin(b)?,
                c: pin(c)?,
                query: *query,
                strategy: s,
            }))
        }
        (QuerySpec::TwoSelects { relation, query }, Strategy::TwoSelects(s)) => {
            Ok(Box::new(TwoSelectsOp {
                relation: pin(relation)?,
                query: *query,
                strategy: s,
            }))
        }
        (QuerySpec::KnnSelect { relation, query }, Strategy::Select(s)) => {
            Ok(Box::new(KnnSelectOp {
                relation: pin(relation)?,
                query: query.clone(),
                predicate: Predicate::True,
                strategy: s,
            }))
        }
        (spec, strategy) => Err(QueryError::UnsupportedPlanShape {
            description: format!("strategy {strategy} does not match query {spec:?}"),
        }),
    }
}

/// Compiles a [`QuerySpec::Filtered`] query: validates filter placement,
/// threads pre-kNN filters into the wrapped shape, and wraps post-kNN
/// filters as a [`ResidualFilterOp`].
fn compile_filtered(
    snapshot: &DbSnapshot,
    inner: &QuerySpec,
    filters: &QueryFilters,
    strategy: Strategy,
) -> Result<Box<dyn PhysicalPlan>, QueryError> {
    if matches!(inner, QuerySpec::Filtered { .. }) {
        return Err(QueryError::UnsupportedPlanShape {
            description: "nested Filtered query specs are not supported; merge the filters \
                          into one wrapper"
                .into(),
        });
    }
    validate_filter_placement(inner, filters)?;
    let mismatch = || QueryError::UnsupportedPlanShape {
        description: format!("strategy {strategy} does not match query {inner:?}"),
    };
    let pre = |relation: &str| -> Predicate {
        filters
            .pre
            .get(relation)
            .cloned()
            .unwrap_or(Predicate::True)
    };
    let plan: Box<dyn PhysicalPlan> = match inner {
        // Single select: the pre-filter IS the masked kernel's predicate.
        QuerySpec::KnnSelect { relation, query } => {
            let Strategy::Select(s) = strategy else {
                return Err(mismatch());
            };
            Box::new(KnnSelectOp {
                relation: Arc::clone(snapshot.snapshot(relation)?) as Relation,
                query: query.clone(),
                predicate: pre(relation),
                strategy: s,
            })
        }
        // Two selects under a pre-filter: the bounded-locality 2-kNN-select
        // (Procedure 5) is not established under filtering, so both filtered
        // selects run in full through the masked kernel and intersect — the
        // conceptual QEP of Figure 16, filter-aware.
        QuerySpec::TwoSelects { relation, query } if !matches!(pre(relation), Predicate::True) => {
            let Strategy::TwoSelects(s) = strategy else {
                return Err(mismatch());
            };
            Box::new(FilteredTwoSelectsOp {
                relation: Arc::clone(snapshot.snapshot(relation)?) as Relation,
                query: *query,
                predicate: pre(relation),
                strategy: s,
            })
        }
        // Join shapes (and unfiltered two-selects): pre-filters sit on
        // outer roles only (the validator guarantees it), so each one
        // materializes a filtered copy of its relation and the wrapped
        // shape compiles unchanged against the override.
        _ => {
            let mut overrides = BTreeMap::new();
            for (name, predicate) in &filters.pre {
                if matches!(predicate, Predicate::True) {
                    continue;
                }
                let base = Arc::clone(snapshot.snapshot(name)?) as Relation;
                overrides.insert(name.clone(), materialize_filtered(&base, predicate)?);
            }
            compile_with_overrides(snapshot, inner, strategy, &overrides)?
        }
    };
    // Post-filters resolve to role indices against the row components: a
    // relation playing several roles is filtered in every one of them.
    let roles = inner.relations();
    let mut post: Vec<(usize, Predicate)> = Vec::new();
    for (name, predicate) in &filters.post {
        if matches!(predicate, Predicate::True) {
            continue;
        }
        for (idx, role) in roles.iter().enumerate() {
            if role == name {
                post.push((idx, predicate.clone()));
            }
        }
    }
    if post.is_empty() {
        Ok(plan)
    } else {
        Ok(Box::new(ResidualFilterOp {
            input: plan,
            filters: post,
        }))
    }
}

/// Checks that every filtered relation name exists in the wrapped shape and
/// that no **pre**-kNN filter lands on a role where the pushdown would
/// change the query's answer — the inner relation of any kNN-join
/// (Section 3, Figure 2: filtering the inner side changes every outer
/// point's neighborhood, so rows the unfiltered query never produced would
/// appear). Post-filters are valid on every role.
fn validate_filter_placement(inner: &QuerySpec, filters: &QueryFilters) -> Result<(), QueryError> {
    let roles = inner.relations();
    for name in filters.pre.keys().chain(filters.post.keys()) {
        if !roles.iter().any(|role| role == name) {
            return Err(QueryError::UnknownRelation { name: name.clone() });
        }
    }
    // Role names playing a join-inner part, per shape. A name listed here
    // refuses pre-filters even if it also plays an outer role (same
    // relation joined against itself): the inner occurrence taints it.
    let join_inner_roles: Vec<&str> = match inner {
        QuerySpec::SelectInnerOfJoin { inner, .. } | QuerySpec::SelectOuterOfJoin { inner, .. } => {
            vec![inner]
        }
        QuerySpec::UnchainedJoins { b, .. } => vec![b],
        QuerySpec::ChainedJoins { b, c, .. } => vec![b, c],
        QuerySpec::TwoSelects { .. } | QuerySpec::KnnSelect { .. } => vec![],
        QuerySpec::Filtered { .. } => unreachable!("nesting rejected before validation"),
    };
    for (name, predicate) in &filters.pre {
        if matches!(predicate, Predicate::True) {
            continue;
        }
        if join_inner_roles.iter().any(|role| role == name) {
            return Err(QueryError::InvalidTransformation {
                reason: format!(
                    "cannot apply a pre-kNN filter to `{name}`: it is the inner relation of \
                     a kNN-join, and filtering it changes every outer point's neighborhood \
                     (Section 3 of the paper). Apply the filter to the join's output instead \
                     (post placement)."
                ),
            });
        }
    }
    Ok(())
}

/// Materializes the subset of `base` matching `predicate` as a fresh
/// [`GridIndex`] over the **base relation's bounds** (so MINDIST geometry
/// stays comparable), sized for ~64 points per occupied block. An empty
/// match is fine — the downstream operators already handle relations with
/// fewer points than `k`.
fn materialize_filtered(base: &Relation, predicate: &Predicate) -> Result<Relation, QueryError> {
    let points: Vec<Point> = base
        .all_points()
        .into_iter()
        .filter(|p| predicate.matches_point(p))
        .collect();
    let cells = ((points.len() as f64 / 64.0).sqrt().ceil() as usize).max(1);
    let index = GridIndex::build_with_bounds(points, base.bounds(), cells).map_err(|err| {
        QueryError::UnsupportedPlanShape {
            description: format!("cannot materialize filtered relation: {err}"),
        }
    })?;
    Ok(Arc::new(index) as Relation)
}

/// Shared [`PhysicalPlan::detail`] rendering for the select-inner family.
fn select_inner_detail(query: &SelectInnerJoinQuery) -> String {
    format!(
        "k_join={} k_select={} focal=({}, {})",
        query.k_join, query.k_select, query.focal.x, query.focal.y
    )
}

/// Shared [`PhysicalPlan::detail`] rendering for the two-selects family.
fn two_selects_detail(query: &TwoSelectsQuery) -> String {
    format!(
        "k1={} f1=({}, {}) k2={} f2=({}, {})",
        query.k1, query.f1.x, query.f1.y, query.k2, query.f2.x, query.f2.y
    )
}

/// The Counting algorithm (Procedure 1) bound to its relations.
pub struct CountingOp {
    /// The outer relation `E1`.
    pub outer: Relation,
    /// The inner relation `E2`.
    pub inner: Relation,
    /// Query parameters.
    pub query: SelectInnerJoinQuery,
}

impl PhysicalPlan for CountingOp {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn strategy(&self) -> Strategy {
        Strategy::SelectInner(SelectInnerStrategy::Counting)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Pairs
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        QueryResult::Pairs {
            output: counting_with_mode(&*self.outer, &*self.inner, &self.query, mode),
            strategy: self.strategy(),
        }
    }

    fn detail(&self) -> String {
        select_inner_detail(&self.query)
    }
}

/// The Block-Marking algorithm (Procedures 2–3) bound to its relations.
pub struct BlockMarkingOp {
    /// The outer relation `E1`.
    pub outer: Relation,
    /// The inner relation `E2`.
    pub inner: Relation,
    /// Query parameters.
    pub query: SelectInnerJoinQuery,
    /// Tuning knobs (contour pruning on/off).
    pub config: BlockMarkingConfig,
}

impl PhysicalPlan for BlockMarkingOp {
    fn name(&self) -> &'static str {
        "block-marking"
    }

    fn strategy(&self) -> Strategy {
        Strategy::SelectInner(SelectInnerStrategy::BlockMarking)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Pairs
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        QueryResult::Pairs {
            output: block_marking_with_mode(
                &*self.outer,
                &*self.inner,
                &self.query,
                &self.config,
                mode,
            ),
            strategy: self.strategy(),
        }
    }

    fn detail(&self) -> String {
        select_inner_detail(&self.query)
    }
}

/// The conceptually correct join-then-intersect QEP (Figure 1).
pub struct SelectInnerConceptualOp {
    /// The outer relation `E1`.
    pub outer: Relation,
    /// The inner relation `E2`.
    pub inner: Relation,
    /// Query parameters.
    pub query: SelectInnerJoinQuery,
}

impl PhysicalPlan for SelectInnerConceptualOp {
    fn name(&self) -> &'static str {
        "select-inner-conceptual"
    }

    fn strategy(&self) -> Strategy {
        Strategy::SelectInner(SelectInnerStrategy::Conceptual)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Pairs
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        QueryResult::Pairs {
            output: conceptual_with_mode(&*self.outer, &*self.inner, &self.query, mode),
            strategy: self.strategy(),
        }
    }

    fn detail(&self) -> String {
        select_inner_detail(&self.query)
    }
}

/// The select-on-outer operator (Figure 3): the valid pushdown, or the
/// reference select-after-join plan.
pub struct OuterPushdownOp {
    /// The outer relation `E1`.
    pub outer: Relation,
    /// The inner relation `E2`.
    pub inner: Relation,
    /// Query parameters.
    pub query: SelectOuterJoinQuery,
    /// Which of the two equivalent QEPs to run.
    pub strategy: SelectOuterStrategy,
}

impl PhysicalPlan for OuterPushdownOp {
    fn name(&self) -> &'static str {
        match self.strategy {
            SelectOuterStrategy::Pushdown => "outer-pushdown",
            SelectOuterStrategy::SelectAfterJoin => "outer-select-after-join",
        }
    }

    fn strategy(&self) -> Strategy {
        Strategy::SelectOuter(self.strategy)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Pairs
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        let output = match self.strategy {
            // The pushdown only ever joins the kσ selected points; it is
            // already the cheap plan and runs serially.
            SelectOuterStrategy::Pushdown => {
                select_on_outer_pushdown(&*self.outer, &*self.inner, &self.query)
            }
            SelectOuterStrategy::SelectAfterJoin => {
                select_on_outer_after_join_with_mode(&*self.outer, &*self.inner, &self.query, mode)
            }
        };
        QueryResult::Pairs {
            output,
            strategy: self.strategy(),
        }
    }

    fn detail(&self) -> String {
        format!(
            "k_join={} k_select={} focal=({}, {})",
            self.query.k_join, self.query.k_select, self.query.focal.x, self.query.focal.y
        )
    }
}

/// Two unchained kNN-joins `(A ⋈ B) ∩_B (C ⋈ B)` (Section 4.1).
pub struct UnchainedJoinsOp {
    /// Relation `A`.
    pub a: Relation,
    /// The shared inner relation `B`.
    pub b: Relation,
    /// Relation `C`.
    pub c: Relation,
    /// Query parameters.
    pub query: UnchainedJoinQuery,
    /// Which evaluation order / algorithm to run.
    pub strategy: UnchainedStrategy,
}

impl PhysicalPlan for UnchainedJoinsOp {
    fn name(&self) -> &'static str {
        match self.strategy {
            UnchainedStrategy::Conceptual => "unchained-conceptual",
            UnchainedStrategy::BlockMarkingStartWithA => "unchained-block-marking(A⋈B first)",
            UnchainedStrategy::BlockMarkingStartWithC => "unchained-block-marking(C⋈B first)",
        }
    }

    fn strategy(&self) -> Strategy {
        Strategy::Unchained(self.strategy)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Triplets
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        let output = match self.strategy {
            UnchainedStrategy::Conceptual => {
                unchained_conceptual_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
            UnchainedStrategy::BlockMarkingStartWithA => {
                unchained_block_marking_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
            UnchainedStrategy::BlockMarkingStartWithC => {
                // Start with (C ⋈ B): swap the roles of A and C, then swap the
                // components back in the emitted triplets.
                let swapped = UnchainedJoinQuery::new(self.query.k_cb, self.query.k_ab);
                let out =
                    unchained_block_marking_with_mode(&*self.c, &*self.b, &*self.a, &swapped, mode);
                QueryOutput::new(
                    out.rows
                        .into_iter()
                        .map(|t| Triplet::new(t.c, t.b, t.a))
                        .collect(),
                    out.metrics,
                )
            }
        };
        QueryResult::Triplets {
            output,
            strategy: self.strategy(),
        }
    }

    fn detail(&self) -> String {
        format!("k_ab={} k_cb={}", self.query.k_ab, self.query.k_cb)
    }
}

/// Two chained kNN-joins `A → B → C` (Section 4.2).
pub struct ChainedJoinsOp {
    /// Relation `A`.
    pub a: Relation,
    /// The middle relation `B`.
    pub b: Relation,
    /// Relation `C`.
    pub c: Relation,
    /// Query parameters.
    pub query: ChainedJoinQuery,
    /// Which of the equivalent QEPs to run.
    pub strategy: ChainedStrategy,
}

impl PhysicalPlan for ChainedJoinsOp {
    fn name(&self) -> &'static str {
        match self.strategy {
            ChainedStrategy::RightDeep => "chained-right-deep",
            ChainedStrategy::JoinIntersection => "chained-join-intersection",
            ChainedStrategy::NestedJoin => "chained-nested",
            ChainedStrategy::NestedJoinCached => "chained-nested-cached",
        }
    }

    fn strategy(&self) -> Strategy {
        Strategy::Chained(self.strategy)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Triplets
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        let output = match self.strategy {
            ChainedStrategy::RightDeep => {
                chained_right_deep_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
            ChainedStrategy::JoinIntersection => {
                chained_join_intersection_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
            ChainedStrategy::NestedJoin => {
                chained_nested_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
            ChainedStrategy::NestedJoinCached => {
                chained_nested_cached_with_mode(&*self.a, &*self.b, &*self.c, &self.query, mode)
            }
        };
        QueryResult::Triplets {
            output,
            strategy: self.strategy(),
        }
    }

    fn detail(&self) -> String {
        format!("k_ab={} k_bc={}", self.query.k_ab, self.query.k_bc)
    }
}

/// Two kNN-selects over one relation (Section 5).
pub struct TwoSelectsOp {
    /// The relation both selects run against.
    pub relation: Relation,
    /// Query parameters.
    pub query: TwoSelectsQuery,
    /// Which of the two equivalent QEPs to run.
    pub strategy: TwoSelectsStrategy,
}

impl PhysicalPlan for TwoSelectsOp {
    fn name(&self) -> &'static str {
        match self.strategy {
            TwoSelectsStrategy::Conceptual => "two-selects-conceptual",
            TwoSelectsStrategy::TwoKnnSelect => "2-knn-select",
        }
    }

    fn strategy(&self) -> Strategy {
        Strategy::TwoSelects(self.strategy)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Points
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        let output = match self.strategy {
            // The conceptual QEP's two selects are independent: under a
            // parallel mode each runs as its own (pool) task.
            TwoSelectsStrategy::Conceptual => {
                two_selects_conceptual_with_mode(&*self.relation, &self.query, mode)
            }
            // The 2-kNN-select algorithm is inherently sequential (the
            // second locality is bounded by the first select's result);
            // batch-level parallelism covers the many-query case.
            TwoSelectsStrategy::TwoKnnSelect => two_knn_select(&*self.relation, &self.query),
        };
        QueryResult::Points {
            output,
            strategy: self.strategy(),
        }
    }

    fn detail(&self) -> String {
        two_selects_detail(&self.query)
    }
}

/// A single kNN-select `σ_{k,f}(E)`, optionally restricted to the points
/// matching a **pre-kNN** predicate: "the k nearest *matching* points".
pub struct KnnSelectOp {
    /// The relation the select runs against.
    pub relation: Relation,
    /// Query parameters.
    pub query: KnnSelectQuery,
    /// The pre-kNN filter; [`Predicate::True`] for the unfiltered select.
    pub predicate: Predicate,
    /// Masked kernel, or the scan-then-filter baseline.
    pub strategy: SelectStrategy,
}

impl PhysicalPlan for KnnSelectOp {
    fn name(&self) -> &'static str {
        match self.strategy {
            SelectStrategy::FilteredKernel => "knn-select",
            SelectStrategy::FilterThenScan => "knn-select-scan",
        }
    }

    fn strategy(&self) -> Strategy {
        Strategy::Select(self.strategy)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Points
    }

    fn execute(&self, _mode: ExecutionMode) -> QueryResult {
        // A single select is one neighborhood computation — inherently
        // sequential; batch-level parallelism covers the many-query case.
        let output = match self.strategy {
            SelectStrategy::FilteredKernel => knn_select_filtered(
                &*self.relation,
                &self.query.focal,
                self.query.k,
                &self.predicate,
            ),
            SelectStrategy::FilterThenScan => {
                // The baseline reads and ranks every point; its counters
                // reflect that, which is what `ablation_filter` compares.
                let mut metrics = Metrics::default();
                metrics.neighborhoods_computed += 1;
                let n = self.relation.num_points() as u64;
                metrics.points_scanned += n;
                metrics.distance_computations += n;
                let nbr = brute_force_knn_filtered(
                    &*self.relation,
                    &self.query.focal,
                    self.query.k,
                    &self.predicate,
                );
                let rows: Vec<Point> = nbr.points().copied().collect();
                metrics.tuples_emitted += rows.len() as u64;
                QueryOutput::new(rows, metrics)
            }
        };
        QueryResult::Points {
            output,
            strategy: self.strategy(),
        }
    }

    fn detail(&self) -> String {
        let mut detail = format!(
            "k={} focal=({}, {})",
            self.query.k, self.query.focal.x, self.query.focal.y
        );
        if !matches!(self.predicate, Predicate::True) {
            detail.push_str(" pre-filtered");
        }
        detail
    }
}

/// Two kNN-selects under one **pre-kNN** filter: both filtered selects run
/// in full through the masked kernel and their results intersect — the
/// conceptual QEP of Figure 16 made filter-aware. (Procedure 5's bounded
/// locality is not established under filtering, so it is never used here.)
pub struct FilteredTwoSelectsOp {
    /// The relation both selects run against.
    pub relation: Relation,
    /// Query parameters.
    pub query: TwoSelectsQuery,
    /// The pre-kNN filter both selects apply.
    pub predicate: Predicate,
    /// The strategy the optimizer picked for the wrapped shape (reported,
    /// not dispatched on — filtering forces the conceptual evaluation).
    pub strategy: TwoSelectsStrategy,
}

impl PhysicalPlan for FilteredTwoSelectsOp {
    fn name(&self) -> &'static str {
        "filtered-two-selects"
    }

    fn strategy(&self) -> Strategy {
        Strategy::TwoSelects(self.strategy)
    }

    fn schema(&self) -> RowSchema {
        RowSchema::Points
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        let mut metrics = Metrics::default();
        let predicates = [
            (self.query.k1, self.query.f1),
            (self.query.k2, self.query.f2),
        ];
        let mut neighborhoods = run_partitioned(
            &predicates,
            mode,
            &mut metrics,
            |(k, focal), out, metrics| {
                out.push(knn_select_filtered_neighborhood(
                    &*self.relation,
                    focal,
                    *k,
                    &self.predicate,
                    metrics,
                ));
            },
        );
        let nbr2 = neighborhoods.pop().expect("two predicates evaluated");
        let nbr1 = neighborhoods.pop().expect("two predicates evaluated");
        QueryResult::Points {
            output: intersect_output(&nbr1, &nbr2, metrics),
            strategy: self.strategy(),
        }
    }

    fn detail(&self) -> String {
        format!("{} pre-filtered", two_selects_detail(&self.query))
    }
}

/// The **post-kNN** residual filter: runs any wrapped plan, then keeps only
/// the rows whose filtered components match. Filters are `(role index,
/// predicate)` pairs resolved against the row components in relation-role
/// order (pair: `0 = outer`, `1 = inner`; triplet: `0 = a`, `1 = b`,
/// `2 = c`; point: `0`).
pub struct ResidualFilterOp {
    /// The plan producing the unfiltered rows.
    pub input: Box<dyn PhysicalPlan>,
    /// Component filters, by role index.
    pub filters: Vec<(usize, Predicate)>,
}

impl ResidualFilterOp {
    fn row_matches(&self, components: &[&Point]) -> bool {
        self.filters
            .iter()
            .all(|(idx, predicate)| predicate.matches_point(components[*idx]))
    }

    /// Prunes an input result's rows by the component filters, resetting
    /// `tuples_emitted` to the surviving row count — the shared step behind
    /// both [`PhysicalPlan::execute`] and [`PhysicalPlan::execute_traced`].
    fn apply(&self, input: QueryResult) -> QueryResult {
        match input {
            QueryResult::Pairs {
                mut output,
                strategy,
            } => {
                output
                    .rows
                    .retain(|p| self.row_matches(&[&p.left, &p.right]));
                output.metrics.tuples_emitted = output.rows.len() as u64;
                QueryResult::Pairs { output, strategy }
            }
            QueryResult::Triplets {
                mut output,
                strategy,
            } => {
                output
                    .rows
                    .retain(|t| self.row_matches(&[&t.a, &t.b, &t.c]));
                output.metrics.tuples_emitted = output.rows.len() as u64;
                QueryResult::Triplets { output, strategy }
            }
            QueryResult::Points {
                mut output,
                strategy,
            } => {
                output.rows.retain(|p| self.row_matches(&[p]));
                output.metrics.tuples_emitted = output.rows.len() as u64;
                QueryResult::Points { output, strategy }
            }
        }
    }
}

impl PhysicalPlan for ResidualFilterOp {
    fn name(&self) -> &'static str {
        "residual-filter"
    }

    fn strategy(&self) -> Strategy {
        self.input.strategy()
    }

    fn schema(&self) -> RowSchema {
        self.input.schema()
    }

    fn execute(&self, mode: ExecutionMode) -> QueryResult {
        self.apply(self.input.execute(mode))
    }

    fn execute_traced(&self, mode: ExecutionMode) -> (QueryResult, crate::obs::OpTrace) {
        let start = std::time::Instant::now();
        let (input, child) = self.input.execute_traced(mode);
        let result = self.apply(input);
        let trace = crate::obs::OpTrace {
            name: self.name(),
            strategy: self.strategy(),
            rows: result.num_rows(),
            wall: start.elapsed(),
            inclusive: result.metrics(),
            children: vec![child],
        };
        (result, trace)
    }

    fn detail(&self) -> String {
        format!("{} filtered roles", self.filters.len())
    }

    fn children(&self) -> Vec<&dyn PhysicalPlan> {
        vec![&*self.input]
    }

    fn explain(&self) -> String {
        format!(
            "residual-filter({} roles) <- {}",
            self.filters.len(),
            self.input.explain()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoknn_index::GridIndex;

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x2545F4914F6CDD1D) ^ seed;
                Point::new(
                    i as u64,
                    (h % 499) as f64 * 0.2,
                    ((h / 499) % 499) as f64 * 0.2,
                )
            })
            .collect()
    }

    fn db() -> crate::plan::Database {
        let mut db = crate::plan::Database::new();
        db.register("A", GridIndex::build(scattered(120, 1), 8).unwrap());
        db.register("B", GridIndex::build(scattered(250, 2), 8).unwrap());
        db.register("C", GridIndex::build(scattered(140, 3), 8).unwrap());
        db
    }

    #[test]
    fn compile_produces_the_matching_operator() {
        let db = db();
        let spec = QuerySpec::SelectInnerOfJoin {
            outer: "A".into(),
            inner: "B".into(),
            query: SelectInnerJoinQuery::new(2, 3, Point::anonymous(30.0, 40.0)),
        };
        for (s, name) in [
            (SelectInnerStrategy::Counting, "counting"),
            (SelectInnerStrategy::BlockMarking, "block-marking"),
            (SelectInnerStrategy::Conceptual, "select-inner-conceptual"),
        ] {
            let plan = compile(&db.snapshot(), &spec, Strategy::SelectInner(s)).unwrap();
            assert_eq!(plan.name(), name);
            assert_eq!(plan.schema(), RowSchema::Pairs);
            assert_eq!(plan.strategy(), Strategy::SelectInner(s));
            assert!(plan.explain().contains(name));
        }
    }

    #[test]
    fn compile_rejects_mismatched_strategy_and_unknown_relation() {
        let db = db();
        let spec = QuerySpec::TwoSelects {
            relation: "A".into(),
            query: TwoSelectsQuery::new(
                2,
                Point::anonymous(0.0, 0.0),
                2,
                Point::anonymous(1.0, 1.0),
            ),
        };
        assert!(matches!(
            compile(
                &db.snapshot(),
                &spec,
                Strategy::Chained(ChainedStrategy::RightDeep)
            ),
            Err(QueryError::UnsupportedPlanShape { .. })
        ));
        let missing = QuerySpec::TwoSelects {
            relation: "Nope".into(),
            query: TwoSelectsQuery::new(
                2,
                Point::anonymous(0.0, 0.0),
                2,
                Point::anonymous(1.0, 1.0),
            ),
        };
        assert!(matches!(
            compile(
                &db.snapshot(),
                &missing,
                Strategy::TwoSelects(TwoSelectsStrategy::TwoKnnSelect)
            ),
            Err(QueryError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn executing_a_compiled_plan_matches_database_execute() {
        let db = db();
        let spec = QuerySpec::UnchainedJoins {
            a: "A".into(),
            b: "B".into(),
            c: "C".into(),
            query: UnchainedJoinQuery::new(2, 2),
        };
        let strategy = Strategy::Unchained(UnchainedStrategy::BlockMarkingStartWithC);
        let plan = compile(&db.snapshot(), &spec, strategy).unwrap();
        let direct = plan.execute(ExecutionMode::Serial);
        let via_db = db.execute_with(&spec, strategy).unwrap();
        assert_eq!(direct.num_rows(), via_db.num_rows());
        assert_eq!(direct.strategy(), strategy);
    }

    #[test]
    fn knn_select_strategies_agree_and_match_brute_force() {
        let db = db();
        let spec = QuerySpec::KnnSelect {
            relation: "B".into(),
            query: KnnSelectQuery::new(7, Point::anonymous(40.0, 40.0)),
        };
        let snapshot = db.snapshot();
        let want = twoknn_index::brute_force_knn(
            &**snapshot.snapshot("B").unwrap(),
            &Point::anonymous(40.0, 40.0),
            7,
        )
        .ids();
        for s in [
            SelectStrategy::FilteredKernel,
            SelectStrategy::FilterThenScan,
        ] {
            let plan = compile(&snapshot, &spec, Strategy::Select(s)).unwrap();
            assert_eq!(plan.schema(), RowSchema::Points);
            let result = plan.execute(ExecutionMode::Serial);
            let got: Vec<u64> = result.rows().iter().flat_map(|r| r.ids()).collect();
            assert_eq!(got, want, "strategy {s:?}");
        }
    }

    #[test]
    fn pre_filter_flows_into_the_masked_select_kernel() {
        let db = db();
        let predicate = Predicate::IdRange { lo: 40, hi: 160 };
        let spec = QuerySpec::KnnSelect {
            relation: "B".into(),
            query: KnnSelectQuery::new(6, Point::anonymous(40.0, 40.0)),
        }
        .with_filters(QueryFilters::none().pre("B", predicate.clone()));
        let snapshot = db.snapshot();
        let want = brute_force_knn_filtered(
            &**snapshot.snapshot("B").unwrap(),
            &Point::anonymous(40.0, 40.0),
            6,
            &predicate,
        )
        .ids();
        let plan = compile(
            &snapshot,
            &spec,
            Strategy::Select(SelectStrategy::FilteredKernel),
        )
        .unwrap();
        assert_eq!(plan.name(), "knn-select");
        let got: Vec<u64> = plan
            .execute(ExecutionMode::Serial)
            .rows()
            .iter()
            .flat_map(|r| r.ids())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pre_filter_on_a_join_inner_is_rejected() {
        let db = db();
        let filters = QueryFilters::none().pre("B", Predicate::IdRange { lo: 0, hi: 50 });
        for inner in [
            QuerySpec::SelectInnerOfJoin {
                outer: "A".into(),
                inner: "B".into(),
                query: SelectInnerJoinQuery::new(2, 3, Point::anonymous(30.0, 40.0)),
            },
            QuerySpec::UnchainedJoins {
                a: "A".into(),
                b: "B".into(),
                c: "C".into(),
                query: UnchainedJoinQuery::new(2, 2),
            },
            QuerySpec::ChainedJoins {
                a: "A".into(),
                b: "B".into(),
                c: "C".into(),
                query: ChainedJoinQuery::new(2, 2),
            },
        ] {
            let strategy = db.plan(&inner).unwrap();
            let spec = inner.with_filters(filters.clone());
            let err = match compile(&db.snapshot(), &spec, strategy) {
                Err(err) => err,
                Ok(_) => panic!("expected an error for {spec:?}"),
            };
            assert!(
                matches!(err, QueryError::InvalidTransformation { .. }),
                "{spec:?}: {err}"
            );
            // The same filter in *post* placement is always accepted.
            let QuerySpec::Filtered { spec: inner, .. } = spec else {
                unreachable!()
            };
            let post = (*inner)
                .clone()
                .with_filters(QueryFilters::none().post("B", Predicate::IdRange { lo: 0, hi: 50 }));
            compile(&db.snapshot(), &post, strategy).unwrap();
        }
    }

    #[test]
    fn pre_filter_on_a_join_outer_equals_the_post_filtered_rows() {
        let db = db();
        let inner = QuerySpec::SelectInnerOfJoin {
            outer: "A".into(),
            inner: "B".into(),
            query: SelectInnerJoinQuery::new(2, 25, Point::anonymous(40.0, 40.0)),
        };
        let predicate = Predicate::InRect(twoknn_geometry::Rect::new(0.0, 0.0, 70.0, 70.0));
        // Filtering the *outer* side before the join only removes whole
        // rows (each outer point's neighborhood is independent), so the
        // pushdown must produce exactly the post-filtered rows.
        let pre = db
            .execute(
                &inner
                    .clone()
                    .with_filters(QueryFilters::none().pre("A", predicate.clone())),
            )
            .unwrap();
        let post = db
            .execute(&inner.with_filters(QueryFilters::none().post("A", predicate)))
            .unwrap();
        // Row order may differ (the materialized filtered index has its own
        // block layout), so compare as sorted id tuples.
        let ids = |r: &QueryResult| -> Vec<Vec<u64>> {
            let mut tuples: Vec<Vec<u64>> = r.rows().iter().map(|x| x.ids()).collect();
            tuples.sort_unstable();
            tuples
        };
        assert!(pre.num_rows() > 0, "filter should keep some rows");
        assert_eq!(ids(&pre), ids(&post));
    }

    #[test]
    fn residual_filter_prunes_rows_by_component() {
        let db = db();
        let inner = QuerySpec::TwoSelects {
            relation: "B".into(),
            query: TwoSelectsQuery::new(
                5,
                Point::anonymous(30.0, 30.0),
                50,
                Point::anonymous(35.0, 35.0),
            ),
        };
        let unfiltered = db.execute(&inner).unwrap();
        let keep: Vec<u64> = unfiltered
            .rows()
            .iter()
            .flat_map(|r| r.ids())
            .take(2)
            .collect();
        let filtered = db
            .execute(
                &inner.with_filters(QueryFilters::none().post("B", Predicate::id_in(keep.clone()))),
            )
            .unwrap();
        let got: Vec<u64> = filtered.rows().iter().flat_map(|r| r.ids()).collect();
        assert_eq!(got, keep);
        assert_eq!(filtered.metrics().tuples_emitted, keep.len() as u64);
    }

    #[test]
    fn bad_filter_shapes_are_rejected() {
        let db = db();
        let base = QuerySpec::KnnSelect {
            relation: "B".into(),
            query: KnnSelectQuery::new(3, Point::anonymous(0.0, 0.0)),
        };
        // Unknown relation name in the filter map.
        let spec = base
            .clone()
            .with_filters(QueryFilters::none().post("Nope", Predicate::False));
        assert!(matches!(
            db.execute(&spec),
            Err(QueryError::UnknownRelation { .. })
        ));
        // Nested Filtered wrappers.
        let nested = QuerySpec::Filtered {
            spec: Box::new(base.with_filters(QueryFilters::none().post("B", Predicate::False))),
            filters: QueryFilters::none().post("B", Predicate::True),
        };
        assert!(matches!(
            db.execute(&nested),
            Err(QueryError::UnsupportedPlanShape { .. })
        ));
    }

    #[test]
    fn rows_are_typed_and_tagged() {
        let db = db();
        let spec = QuerySpec::TwoSelects {
            relation: "B".into(),
            query: TwoSelectsQuery::new(
                5,
                Point::anonymous(30.0, 30.0),
                50,
                Point::anonymous(35.0, 35.0),
            ),
        };
        let result = db.execute(&spec).unwrap();
        let rows = result.rows();
        assert_eq!(rows.len(), result.num_rows());
        for row in &rows {
            assert_eq!(row.schema(), RowSchema::Points);
            assert_eq!(row.ids().len(), 1);
        }
    }
}
