//! A tiny catalog and executor for the supported two-predicate query shapes.
//!
//! [`Database`] holds named, indexed relations; [`QuerySpec`] names the
//! relations a query touches plus its parameters; [`Database::execute`] runs
//! the query either with an explicitly chosen [`Strategy`] or with the
//! strategy the [`Optimizer`] picks from the relations' statistics.

use std::collections::HashMap;

use twoknn_geometry::Point;
use twoknn_index::{Metrics, SpatialIndex};

use crate::error::QueryError;
use crate::joins2::{
    chained_join_intersection, chained_nested, chained_nested_cached, chained_right_deep,
    unchained_block_marking, unchained_conceptual, ChainedJoinQuery, UnchainedJoinQuery,
};
use crate::output::{Pair, QueryOutput, Triplet};
use crate::plan::optimizer::Optimizer;
use crate::plan::stats::RelationProfile;
use crate::plan::strategy::{
    ChainedStrategy, SelectInnerStrategy, SelectOuterStrategy, Strategy, TwoSelectsStrategy,
    UnchainedStrategy,
};
use crate::select_join::{
    block_marking, conceptual, counting, select_on_outer_after_join, select_on_outer_pushdown,
    SelectInnerJoinQuery, SelectOuterJoinQuery,
};
use crate::selects2::{two_knn_select, two_selects_conceptual, TwoSelectsQuery};

/// A named catalog of indexed relations.
#[derive(Default)]
pub struct Database {
    relations: HashMap<String, Box<dyn SpatialIndex + Send + Sync>>,
    optimizer: Optimizer,
}

/// A query over named relations in a [`Database`].
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// kNN-join with a kNN-select on the join's inner relation.
    SelectInnerOfJoin {
        /// Name of the outer relation (`E1`).
        outer: String,
        /// Name of the inner relation (`E2`).
        inner: String,
        /// Query parameters.
        query: SelectInnerJoinQuery,
    },
    /// kNN-join with a kNN-select on the join's outer relation.
    SelectOuterOfJoin {
        /// Name of the outer relation (`E1`).
        outer: String,
        /// Name of the inner relation (`E2`).
        inner: String,
        /// Query parameters.
        query: SelectOuterJoinQuery,
    },
    /// Two unchained kNN-joins `(A ⋈ B) ∩_B (C ⋈ B)`.
    UnchainedJoins {
        /// Name of relation `A`.
        a: String,
        /// Name of the shared inner relation `B`.
        b: String,
        /// Name of relation `C`.
        c: String,
        /// Query parameters.
        query: UnchainedJoinQuery,
    },
    /// Two chained kNN-joins `A → B → C`.
    ChainedJoins {
        /// Name of relation `A`.
        a: String,
        /// Name of relation `B`.
        b: String,
        /// Name of relation `C`.
        c: String,
        /// Query parameters.
        query: ChainedJoinQuery,
    },
    /// Two kNN-selects over one relation.
    TwoSelects {
        /// Name of the relation.
        relation: String,
        /// Query parameters.
        query: TwoSelectsQuery,
    },
}

/// The result of executing a [`QuerySpec`], tagged by its row type, together
/// with the strategy that produced it.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// Pair-valued results (select + join queries).
    Pairs {
        /// The output rows and metrics.
        output: QueryOutput<Pair>,
        /// The strategy that was executed.
        strategy: Strategy,
    },
    /// Triplet-valued results (two-join queries).
    Triplets {
        /// The output rows and metrics.
        output: QueryOutput<Triplet>,
        /// The strategy that was executed.
        strategy: Strategy,
    },
    /// Point-valued results (two-select queries).
    Points {
        /// The output rows and metrics.
        output: QueryOutput<Point>,
        /// The strategy that was executed.
        strategy: Strategy,
    },
}

impl QueryResult {
    /// Number of result rows regardless of row type.
    pub fn num_rows(&self) -> usize {
        match self {
            QueryResult::Pairs { output, .. } => output.len(),
            QueryResult::Triplets { output, .. } => output.len(),
            QueryResult::Points { output, .. } => output.len(),
        }
    }

    /// The work metrics of the execution.
    pub fn metrics(&self) -> Metrics {
        match self {
            QueryResult::Pairs { output, .. } => output.metrics,
            QueryResult::Triplets { output, .. } => output.metrics,
            QueryResult::Points { output, .. } => output.metrics,
        }
    }

    /// The strategy that was executed.
    pub fn strategy(&self) -> Strategy {
        match self {
            QueryResult::Pairs { strategy, .. }
            | QueryResult::Triplets { strategy, .. }
            | QueryResult::Points { strategy, .. } => *strategy,
        }
    }
}

impl Database {
    /// Creates an empty catalog with the default optimizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty catalog with a custom optimizer configuration.
    pub fn with_optimizer(optimizer: Optimizer) -> Self {
        Self {
            relations: HashMap::new(),
            optimizer,
        }
    }

    /// Registers (or replaces) a relation under a name.
    pub fn register<I>(&mut self, name: impl Into<String>, index: I)
    where
        I: SpatialIndex + Send + Sync + 'static,
    {
        self.relations.insert(name.into(), Box::new(index));
    }

    /// Names of the registered relations (unordered).
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Looks a relation up by name.
    pub fn relation(&self, name: &str) -> Result<&(dyn SpatialIndex + Send + Sync), QueryError> {
        self.relations
            .get(name)
            .map(|b| b.as_ref())
            .ok_or_else(|| QueryError::UnknownRelation {
                name: name.to_string(),
            })
    }

    /// Computes the statistics profile of a registered relation.
    pub fn profile(&self, name: &str) -> Result<RelationProfile, QueryError> {
        Ok(RelationProfile::compute(self.relation(name)?))
    }

    /// Executes a query, letting the optimizer pick the strategy.
    pub fn execute(&self, spec: &QuerySpec) -> Result<QueryResult, QueryError> {
        let strategy = self.plan(spec)?;
        self.execute_with(spec, strategy)
    }

    /// The strategy the optimizer would choose for a query.
    pub fn plan(&self, spec: &QuerySpec) -> Result<Strategy, QueryError> {
        Ok(match spec {
            QuerySpec::SelectInnerOfJoin { outer, .. } => {
                Strategy::SelectInner(self.optimizer.choose_select_inner(&self.profile(outer)?))
            }
            QuerySpec::SelectOuterOfJoin { outer, .. } => {
                Strategy::SelectOuter(self.optimizer.choose_select_outer(&self.profile(outer)?))
            }
            QuerySpec::UnchainedJoins { a, c, .. } => Strategy::Unchained(
                self.optimizer
                    .choose_unchained(&self.profile(a)?, &self.profile(c)?),
            ),
            QuerySpec::ChainedJoins { b, .. } => {
                Strategy::Chained(self.optimizer.choose_chained(&self.profile(b)?))
            }
            QuerySpec::TwoSelects { query, .. } => {
                Strategy::TwoSelects(self.optimizer.choose_two_selects(query))
            }
        })
    }

    /// Executes a query with an explicitly chosen strategy.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownRelation`] for missing relations and
    /// [`QueryError::UnsupportedPlanShape`] when the strategy does not match
    /// the query shape.
    pub fn execute_with(
        &self,
        spec: &QuerySpec,
        strategy: Strategy,
    ) -> Result<QueryResult, QueryError> {
        match (spec, strategy) {
            (
                QuerySpec::SelectInnerOfJoin {
                    outer,
                    inner,
                    query,
                },
                Strategy::SelectInner(s),
            ) => {
                let outer = self.relation(outer)?;
                let inner = self.relation(inner)?;
                let output = match s {
                    SelectInnerStrategy::Conceptual => conceptual(outer, inner, query),
                    SelectInnerStrategy::Counting => counting(outer, inner, query),
                    SelectInnerStrategy::BlockMarking => block_marking(outer, inner, query),
                };
                Ok(QueryResult::Pairs { output, strategy })
            }
            (
                QuerySpec::SelectOuterOfJoin {
                    outer,
                    inner,
                    query,
                },
                Strategy::SelectOuter(s),
            ) => {
                let outer = self.relation(outer)?;
                let inner = self.relation(inner)?;
                let output = match s {
                    SelectOuterStrategy::SelectAfterJoin => {
                        select_on_outer_after_join(outer, inner, query)
                    }
                    SelectOuterStrategy::Pushdown => select_on_outer_pushdown(outer, inner, query),
                };
                Ok(QueryResult::Pairs { output, strategy })
            }
            (QuerySpec::UnchainedJoins { a, b, c, query }, Strategy::Unchained(s)) => {
                let a = self.relation(a)?;
                let b = self.relation(b)?;
                let c = self.relation(c)?;
                let output = match s {
                    UnchainedStrategy::Conceptual => unchained_conceptual(a, b, c, query),
                    UnchainedStrategy::BlockMarkingStartWithA => {
                        unchained_block_marking(a, b, c, query)
                    }
                    UnchainedStrategy::BlockMarkingStartWithC => {
                        // Start with (C ⋈ B): swap the roles of A and C, then
                        // swap the components back in the emitted triplets.
                        let swapped = UnchainedJoinQuery::new(query.k_cb, query.k_ab);
                        let out = unchained_block_marking(c, b, a, &swapped);
                        QueryOutput::new(
                            out.rows
                                .into_iter()
                                .map(|t| Triplet::new(t.c, t.b, t.a))
                                .collect(),
                            out.metrics,
                        )
                    }
                };
                Ok(QueryResult::Triplets { output, strategy })
            }
            (QuerySpec::ChainedJoins { a, b, c, query }, Strategy::Chained(s)) => {
                let a = self.relation(a)?;
                let b = self.relation(b)?;
                let c = self.relation(c)?;
                let output = match s {
                    ChainedStrategy::RightDeep => chained_right_deep(a, b, c, query),
                    ChainedStrategy::JoinIntersection => chained_join_intersection(a, b, c, query),
                    ChainedStrategy::NestedJoin => chained_nested(a, b, c, query),
                    ChainedStrategy::NestedJoinCached => chained_nested_cached(a, b, c, query),
                };
                Ok(QueryResult::Triplets { output, strategy })
            }
            (QuerySpec::TwoSelects { relation, query }, Strategy::TwoSelects(s)) => {
                let relation = self.relation(relation)?;
                let output = match s {
                    TwoSelectsStrategy::Conceptual => two_selects_conceptual(relation, query),
                    TwoSelectsStrategy::TwoKnnSelect => two_knn_select(relation, query),
                };
                Ok(QueryResult::Points { output, strategy })
            }
            (spec, strategy) => Err(QueryError::UnsupportedPlanShape {
                description: format!("strategy {strategy} does not match query {spec:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::{pair_id_set, point_id_set, triplet_id_set};
    use twoknn_index::GridIndex;

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x2545F4914F6CDD1D) ^ seed;
                Point::new(i as u64, (h % 499) as f64 * 0.2, ((h / 499) % 499) as f64 * 0.2)
            })
            .collect()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.register("A", GridIndex::build(scattered(120, 1), 8).unwrap());
        db.register("B", GridIndex::build(scattered(250, 2), 8).unwrap());
        db.register("C", GridIndex::build(scattered(140, 3), 8).unwrap());
        db
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let db = db();
        let spec = QuerySpec::TwoSelects {
            relation: "Nope".into(),
            query: TwoSelectsQuery::new(1, Point::anonymous(0.0, 0.0), 1, Point::anonymous(1.0, 1.0)),
        };
        assert!(matches!(
            db.execute(&spec),
            Err(QueryError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn mismatched_strategy_is_rejected() {
        let db = db();
        let spec = QuerySpec::TwoSelects {
            relation: "A".into(),
            query: TwoSelectsQuery::new(2, Point::anonymous(0.0, 0.0), 2, Point::anonymous(1.0, 1.0)),
        };
        let err = db
            .execute_with(&spec, Strategy::Chained(ChainedStrategy::RightDeep))
            .unwrap_err();
        assert!(matches!(err, QueryError::UnsupportedPlanShape { .. }));
    }

    #[test]
    fn select_inner_strategies_agree_through_the_executor() {
        let db = db();
        let spec = QuerySpec::SelectInnerOfJoin {
            outer: "A".into(),
            inner: "B".into(),
            query: SelectInnerJoinQuery::new(2, 3, Point::anonymous(30.0, 40.0)),
        };
        let results: Vec<_> = [
            SelectInnerStrategy::Conceptual,
            SelectInnerStrategy::Counting,
            SelectInnerStrategy::BlockMarking,
        ]
        .into_iter()
        .map(|s| db.execute_with(&spec, Strategy::SelectInner(s)).unwrap())
        .collect();
        let sets: Vec<_> = results
            .iter()
            .map(|r| match r {
                QueryResult::Pairs { output, .. } => pair_id_set(&output.rows),
                _ => panic!("expected pairs"),
            })
            .collect();
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
        // The auto-planned execution agrees too.
        let auto = db.execute(&spec).unwrap();
        assert_eq!(auto.num_rows(), results[0].num_rows());
    }

    #[test]
    fn unchained_strategies_agree_through_the_executor() {
        let db = db();
        let spec = QuerySpec::UnchainedJoins {
            a: "A".into(),
            b: "B".into(),
            c: "C".into(),
            query: UnchainedJoinQuery::new(2, 2),
        };
        let sets: Vec<_> = [
            UnchainedStrategy::Conceptual,
            UnchainedStrategy::BlockMarkingStartWithA,
            UnchainedStrategy::BlockMarkingStartWithC,
        ]
        .into_iter()
        .map(|s| {
            match db.execute_with(&spec, Strategy::Unchained(s)).unwrap() {
                QueryResult::Triplets { output, .. } => triplet_id_set(&output.rows),
                _ => panic!("expected triplets"),
            }
        })
        .collect();
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[0], sets[2]);
    }

    #[test]
    fn chained_and_two_select_paths_work_end_to_end() {
        let db = db();
        let chained = QuerySpec::ChainedJoins {
            a: "A".into(),
            b: "B".into(),
            c: "C".into(),
            query: ChainedJoinQuery::new(2, 2),
        };
        let r1 = db.execute(&chained).unwrap();
        assert!(matches!(r1, QueryResult::Triplets { .. }));
        assert!(r1.num_rows() > 0);
        assert!(r1.metrics().neighborhoods_computed > 0);

        let selects = QuerySpec::TwoSelects {
            relation: "B".into(),
            query: TwoSelectsQuery::new(
                5,
                Point::anonymous(30.0, 30.0),
                50,
                Point::anonymous(35.0, 35.0),
            ),
        };
        let fast = db.execute(&selects).unwrap();
        let slow = db
            .execute_with(&selects, Strategy::TwoSelects(TwoSelectsStrategy::Conceptual))
            .unwrap();
        match (&fast, &slow) {
            (QueryResult::Points { output: f, .. }, QueryResult::Points { output: s, .. }) => {
                assert_eq!(point_id_set(&f.rows), point_id_set(&s.rows));
            }
            _ => panic!("expected point results"),
        }
    }

    #[test]
    fn planner_reports_strategies() {
        let db = db();
        let spec = QuerySpec::SelectOuterOfJoin {
            outer: "A".into(),
            inner: "B".into(),
            query: SelectOuterJoinQuery::new(2, 2, Point::anonymous(0.0, 0.0)),
        };
        assert_eq!(
            db.plan(&spec).unwrap(),
            Strategy::SelectOuter(SelectOuterStrategy::Pushdown)
        );
        let r = db.execute(&spec).unwrap();
        assert_eq!(r.strategy(), Strategy::SelectOuter(SelectOuterStrategy::Pushdown));
    }

    #[test]
    fn relation_names_and_profiles() {
        let db = db();
        let mut names = db.relation_names();
        names.sort_unstable();
        assert_eq!(names, vec!["A", "B", "C"]);
        let p = db.profile("A").unwrap();
        assert_eq!(p.num_points, 120);
        assert!(db.profile("missing").is_err());
    }
}
